"""JSON persistence for topologies, schedules, and gate programs.

A real CNC stores its computed configuration and reloads it across
restarts; research workflows want to schedule once and simulate many
times.  Everything round-trips through plain JSON-able dicts:

* :func:`topology_to_dict` / :func:`topology_from_dict`
* :func:`schedule_to_dict` / :func:`schedule_from_dict`
* :func:`gcl_to_dict` / :func:`gcl_from_dict`

``schedule_from_dict`` re-validates the loaded schedule, so a tampered
or stale file cannot smuggle an invalid configuration into a network.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.core.gcl import GateWindow, NetworkGcl, PortGcl
from repro.core.schedule import NetworkSchedule, validate
from repro.model.frame import FrameSlot
from repro.model.stream import EctStream, Stream
from repro.model.topology import Topology

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------
def topology_to_dict(topology: Topology) -> Dict:
    """JSON-able description of a topology (nodes + duplex links)."""
    seen = set()
    links = []
    for link in topology.links:
        pair = frozenset(link.key)
        if pair in seen:
            continue
        seen.add(pair)
        links.append({
            "a": link.src,
            "b": link.dst,
            "bandwidth_bps": link.bandwidth_bps,
            "propagation_ns": link.propagation_ns,
            "time_unit_ns": link.time_unit_ns,
        })
    return {
        "version": FORMAT_VERSION,
        "switches": [n.name for n in topology.switches],
        "devices": [n.name for n in topology.devices],
        "links": links,
    }


def topology_from_dict(data: Dict) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    _check_version(data)
    topology = Topology()
    for name in data["switches"]:
        topology.add_switch(name)
    for name in data["devices"]:
        topology.add_device(name)
    for link in data["links"]:
        topology.add_link(
            link["a"], link["b"],
            bandwidth_bps=link["bandwidth_bps"],
            propagation_ns=link["propagation_ns"],
            time_unit_ns=link["time_unit_ns"],
        )
    return topology


# ----------------------------------------------------------------------
# streams
# ----------------------------------------------------------------------
def _stream_to_dict(stream: Stream) -> Dict:
    return {
        "name": stream.name,
        "path": [stream.path[0].src] + [l.dst for l in stream.path],
        "e2e_ns": stream.e2e_ns,
        "priority": stream.priority,
        "length_bytes": stream.length_bytes,
        "period_ns": stream.period_ns,
        "type": stream.type,
        "share": stream.share,
        "occurrence_ns": stream.occurrence_ns,
        "parent": stream.parent,
    }


def _stream_from_dict(data: Dict, topology: Topology) -> Stream:
    nodes = data["path"]
    path = tuple(topology.link(a, b) for a, b in zip(nodes, nodes[1:]))
    return Stream(
        name=data["name"],
        path=path,
        e2e_ns=data["e2e_ns"],
        priority=data["priority"],
        length_bytes=data["length_bytes"],
        period_ns=data["period_ns"],
        type=data["type"],
        share=data["share"],
        occurrence_ns=data["occurrence_ns"],
        parent=data["parent"],
    )


def _ect_to_dict(ect: EctStream) -> Dict:
    return {
        "name": ect.name,
        "source": ect.source,
        "destination": ect.destination,
        "min_interevent_ns": ect.min_interevent_ns,
        "length_bytes": ect.length_bytes,
        "e2e_ns": ect.e2e_ns,
        "possibilities": ect.possibilities,
        "via": list(ect.via) if ect.via else None,
    }


def _ect_from_dict(data: Dict) -> EctStream:
    return EctStream(
        name=data["name"],
        source=data["source"],
        destination=data["destination"],
        min_interevent_ns=data["min_interevent_ns"],
        length_bytes=data["length_bytes"],
        e2e_ns=data["e2e_ns"],
        possibilities=data["possibilities"],
        via=tuple(data["via"]) if data.get("via") else None,
    )


# ----------------------------------------------------------------------
# schedule
# ----------------------------------------------------------------------
def schedule_to_dict(schedule: NetworkSchedule) -> Dict:
    """JSON-able description of a schedule (topology, streams, slots)."""
    slots = []
    for (stream, link_key), frames in sorted(schedule.slots.items()):
        slots.append({
            "stream": stream,
            "link": list(link_key),
            "frames": [
                {
                    "index": f.index,
                    "offset_ns": f.offset_ns,
                    "period_ns": f.period_ns,
                    "duration_ns": f.duration_ns,
                    "extra": f.extra,
                }
                for f in frames
            ],
        })
    return {
        "version": FORMAT_VERSION,
        "topology": topology_to_dict(schedule.topology),
        "streams": [_stream_to_dict(s) for s in schedule.streams],
        "ect_streams": [_ect_to_dict(e) for e in schedule.ect_streams],
        "slots": slots,
        "meta": _jsonable_meta(schedule.meta),
    }


def _jsonable_meta(meta: Dict) -> Dict:
    out = {}
    for key, value in meta.items():
        try:
            json.dumps(value)
        except TypeError:
            value = str(value)
        out[key] = value
    return out


def schedule_from_dict(data: Dict, revalidate: bool = True) -> NetworkSchedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output.

    Re-validates by default so a tampered or stale file cannot smuggle
    an invalid configuration into a network.
    """
    _check_version(data)
    topology = topology_from_dict(data["topology"])
    streams = [_stream_from_dict(s, topology) for s in data["streams"]]
    ects = [_ect_from_dict(e) for e in data["ect_streams"]]
    slots: Dict[Tuple[str, Tuple[str, str]], List[FrameSlot]] = {}
    for entry in data["slots"]:
        key = (entry["stream"], tuple(entry["link"]))
        slots[key] = [
            FrameSlot(
                stream=entry["stream"],
                link=key[1],
                index=f["index"],
                offset_ns=f["offset_ns"],
                period_ns=f["period_ns"],
                duration_ns=f["duration_ns"],
                extra=f["extra"],
            )
            for f in entry["frames"]
        ]
    schedule = NetworkSchedule(
        topology=topology,
        streams=streams,
        slots=slots,
        ect_streams=ects,
        meta=dict(data.get("meta", {})),
    )
    if revalidate:
        validate(schedule)
    return schedule


# ----------------------------------------------------------------------
# GCL
# ----------------------------------------------------------------------
def gcl_to_dict(gcl: NetworkGcl) -> Dict:
    """JSON-able description of all port gate programs."""
    ports = []
    for link_key, port in sorted(gcl.ports.items()):
        ports.append({
            "link": list(link_key),
            "windows": {
                str(queue): [
                    {"start_ns": w.start_ns, "end_ns": w.end_ns, "owner": w.owner}
                    for w in windows
                ]
                for queue, windows in sorted(port.windows.items())
            },
        })
    return {
        "version": FORMAT_VERSION,
        "mode": gcl.mode,
        "cycle_ns": gcl.cycle_ns,
        "ports": ports,
    }


def gcl_from_dict(data: Dict) -> NetworkGcl:
    """Rebuild gate programs from :func:`gcl_to_dict` output."""
    _check_version(data)
    ports: Dict[Tuple[str, str], PortGcl] = {}
    for entry in data["ports"]:
        link_key = tuple(entry["link"])
        port = PortGcl(link=link_key, cycle_ns=data["cycle_ns"])
        for queue, windows in entry["windows"].items():
            for w in windows:
                port.add_window(
                    int(queue),
                    GateWindow(w["start_ns"], w["end_ns"], owner=w["owner"]),
                )
        port.finalize()
        ports[link_key] = port
    return NetworkGcl(mode=data["mode"], cycle_ns=data["cycle_ns"], ports=ports)


# ----------------------------------------------------------------------
# admission decisions + service metrics
# ----------------------------------------------------------------------
def decision_to_dict(decision) -> Dict:
    """JSON-able record of one admission decision.

    The wire format ``repro serve``/``repro admit`` print, and what an
    operator's audit log stores per request.
    """
    return {
        "version": FORMAT_VERSION,
        "request_id": decision.request_id,
        "op": decision.op,
        "stream": decision.stream,
        "accepted": decision.accepted,
        "rung": decision.rung,
        "reason": decision.reason,
        "latency_ms": decision.latency_ms,
        "store_version": decision.store_version,
        "batch_id": decision.batch_id,
        "batch_size": decision.batch_size,
        "attempts": dict(decision.attempts),
    }


def decision_from_dict(data: Dict):
    """Rebuild a decision from :func:`decision_to_dict` output."""
    from repro.service.requests import Decision

    _check_version(data)
    return Decision(
        request_id=data["request_id"],
        op=data["op"],
        stream=data["stream"],
        accepted=data["accepted"],
        rung=data.get("rung"),
        reason=data.get("reason"),
        latency_ms=data.get("latency_ms", 0.0),
        store_version=data.get("store_version"),
        batch_id=data.get("batch_id", 0),
        batch_size=data.get("batch_size", 1),
        attempts=dict(data.get("attempts", {})),
    )


def metrics_to_dict(registry) -> Dict:
    """Versioned JSON-able export of a service metrics registry."""
    data = registry.to_dict()
    data["version"] = FORMAT_VERSION
    return data


# ----------------------------------------------------------------------
# trace spans (JSON-lines)
# ----------------------------------------------------------------------
def span_to_dict(span) -> Dict:
    """JSON-able record of one trace span (one JSONL line)."""
    return {
        "version": FORMAT_VERSION,
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start_ns": span.start_ns,
        "end_ns": span.end_ns,
        "attributes": dict(span.attributes),
    }


def span_from_dict(data: Dict):
    """Rebuild a span from :func:`span_to_dict` output."""
    from repro.obs.trace import Span

    _check_version(data)
    return Span(
        name=data["name"],
        trace_id=data["trace_id"],
        span_id=data["span_id"],
        parent_id=data.get("parent_id"),
        start_ns=data["start_ns"],
        end_ns=data.get("end_ns"),
        attributes=dict(data.get("attributes", {})),
    )


def save_trace(path: str, spans) -> None:
    """Persist spans as JSON-lines: one span per line, oldest first."""
    with open(path, "w") as handle:
        for span in spans:
            handle.write(json.dumps(span_to_dict(span)))
            handle.write("\n")


def load_trace(path: str) -> List:
    """Load a JSONL trace written by :func:`save_trace`.

    Blank lines are tolerated (trailing newline, hand-edited files); a
    malformed line raises :class:`ValueError` naming the line number.
    """
    spans = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(span_from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(f"trace line {lineno}: {exc}") from None
    return spans


def save_decision_log(path: str, decisions, registry=None) -> None:
    """Persist an admission run: one decision per entry, plus metrics."""
    payload = {
        "version": FORMAT_VERSION,
        "decisions": [decision_to_dict(d) for d in decisions],
    }
    if registry is not None:
        payload["metrics"] = metrics_to_dict(registry)
    with open(path, "w") as handle:
        json.dump(payload, handle)


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------
def save_deployment(path: str, schedule: NetworkSchedule, gcl: NetworkGcl) -> None:
    """Persist schedule + GCL to one JSON file."""
    with open(path, "w") as handle:
        json.dump(
            {"schedule": schedule_to_dict(schedule), "gcl": gcl_to_dict(gcl)},
            handle,
        )


def load_deployment(path: str) -> Tuple[NetworkSchedule, NetworkGcl]:
    """Load and re-validate a persisted deployment."""
    with open(path) as handle:
        data = json.load(handle)
    return schedule_from_dict(data["schedule"]), gcl_from_dict(data["gcl"])


def _check_version(data: Dict) -> None:
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {version!r}; this build reads "
            f"version {FORMAT_VERSION}"
        )
