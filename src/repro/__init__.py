"""E-TSN: event-triggered critical traffic scheduling for TSN.

Reproduction of Zhao et al., "E-TSN: Enabling Event-triggered Critical
Traffic in Time-Sensitive Networking for Industrial Applications"
(ICDCS 2022).

Quick start::

    from repro import (
        Topology, TctRequirement, EctStream,
        schedule_etsn, build_gcl, SimConfig, TsnSimulation,
    )

    topo = Topology()
    topo.add_switch("SW1")
    topo.add_device("D1"); topo.add_device("D2")
    topo.add_link("D1", "SW1"); topo.add_link("D2", "SW1")

    tct = TctRequirement("s1", "D1", "D2", period_ns=4_000_000,
                         length_bytes=400, share=True,
                         priority=4).resolve(topo)
    ect = EctStream("panic", "D1", "D2", min_interevent_ns=16_000_000,
                    length_bytes=1500, possibilities=8)

    schedule = schedule_etsn(topo, [tct], [ect])
    gcl = build_gcl(schedule, mode="etsn")
    sim = TsnSimulation(schedule, gcl, SimConfig(duration_ns=1_000_000_000))
    report = sim.run()
    print(report.recorder.stats("panic"))
"""

from repro.core import (
    InfeasibleError,
    NetworkGcl,
    NetworkSchedule,
    ScheduleError,
    build_gcl,
    schedule_avb,
    schedule_etsn,
    schedule_heuristic,
    schedule_period,
    schedule_smt,
    validate,
)
from repro.model import (
    EctStream,
    Link,
    Priorities,
    Stream,
    StreamError,
    StreamType,
    TctRequirement,
    Topology,
    TopologyError,
)
from repro.obs import NULL_TRACER, Span, Tracer, to_prometheus
from repro.serialization import (
    load_deployment,
    save_deployment,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.service import (
    AdmissionService,
    AdmitEct,
    AdmitTct,
    Decision,
    Remove,
    ScheduleStore,
    ServiceConfig,
)
from repro.sim import SimConfig, SimReport, SyncConfig, TsnSimulation

__version__ = "1.0.0"

__all__ = [
    "AdmissionService",
    "AdmitEct",
    "AdmitTct",
    "Decision",
    "EctStream",
    "InfeasibleError",
    "Link",
    "NULL_TRACER",
    "NetworkGcl",
    "NetworkSchedule",
    "Priorities",
    "Remove",
    "Span",
    "Tracer",
    "ScheduleError",
    "ScheduleStore",
    "ServiceConfig",
    "SimConfig",
    "SimReport",
    "Stream",
    "StreamError",
    "StreamType",
    "SyncConfig",
    "TctRequirement",
    "Topology",
    "TopologyError",
    "TsnSimulation",
    "build_gcl",
    "load_deployment",
    "save_deployment",
    "schedule_from_dict",
    "schedule_to_dict",
    "schedule_avb",
    "schedule_etsn",
    "schedule_heuristic",
    "schedule_period",
    "schedule_smt",
    "to_prometheus",
    "validate",
]
