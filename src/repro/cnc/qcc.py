"""The 802.1Qcc fully-centralized configuration model (paper Fig. 5).

* :class:`CUC` — Centralized User Configuration: collects stream
  requirements from end stations (TCT requirements and ECT descriptors)
  and hands them to the CNC.
* :class:`CNC` — Centralized Network Configuration: knows the physical
  topology, runs the E-TSN scheduler (or a baseline), and emits per-node
  configuration: Qbv gate control lists for switch egress ports and send
  offsets for talkers.

``PortGcl`` objects keep one window list per queue, which is convenient
for simulation; real Qbv hardware wants a flat list of *(interval,
gate-state-bitmask)* entries.  :func:`gcl_to_entries` performs that
conversion, so :meth:`Deployment.to_config_dict` is a faithful (if
simplified) stand-in for the YANG payload a NETCONF CNC would push.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core import build_gcl
from repro.core.frer import schedule_etsn_frer
from repro.core.gcl import NetworkGcl, PortGcl
from repro.core.schedule import NetworkSchedule
from repro.core.baselines import build_schedule
from repro.model.stream import EctStream, Stream, StreamError, TctRequirement
from repro.model.topology import Topology


class CUC:
    """Collects user-side stream requirements."""

    def __init__(self) -> None:
        self._tct: List[TctRequirement] = []
        self._ect: List[EctStream] = []
        self._redundant: List[EctStream] = []
        self._names = set()

    def register_tct(self, requirement: TctRequirement) -> None:
        self._check_name(requirement.name)
        self._tct.append(requirement)

    def register_ect(self, ect: EctStream, redundant: bool = False) -> None:
        """Register an event stream; ``redundant=True`` requests
        802.1CB-style replication over disjoint paths (the end station
        must be dual-homed)."""
        self._check_name(ect.name)
        if redundant:
            self._redundant.append(ect)
        else:
            self._ect.append(ect)

    def _check_name(self, name: str) -> None:
        if name in self._names:
            raise StreamError(f"duplicate stream registration: {name!r}")
        self._names.add(name)

    @property
    def tct_requirements(self) -> List[TctRequirement]:
        return list(self._tct)

    @property
    def ect_streams(self) -> List[EctStream]:
        return list(self._ect)

    @property
    def redundant_ect_streams(self) -> List[EctStream]:
        return list(self._redundant)


@dataclass(frozen=True)
class GclEntry:
    """One hardware GCL row: hold ``gate_states`` for ``interval_ns``."""

    interval_ns: int
    gate_states: int  # bit i set <=> queue i's gate open


@dataclass
class TalkerConfig:
    """Send offsets the CUC pushes to a TCT end station."""

    stream: str
    device: str
    period_ns: int
    offsets_ns: List[int]  # injection offset of each frame of the message


@dataclass
class Deployment:
    """Everything the CNC computed for one network."""

    schedule: NetworkSchedule
    gcl: NetworkGcl
    talkers: List[TalkerConfig]

    def to_config_dict(self) -> Dict:
        """JSON-able per-node configuration (YANG-payload stand-in)."""
        ports = {}
        for link_key, port_gcl in self.gcl.ports.items():
            entries = gcl_to_entries(port_gcl)
            ports[f"{link_key[0]}->{link_key[1]}"] = {
                "cycle_ns": port_gcl.cycle_ns,
                "entries": [
                    {"interval_ns": e.interval_ns, "gate_states": e.gate_states}
                    for e in entries
                ],
            }
        return {
            "mode": self.gcl.mode,
            "cycle_ns": self.gcl.cycle_ns,
            "ports": ports,
            "talkers": [
                {
                    "stream": t.stream,
                    "device": t.device,
                    "period_ns": t.period_ns,
                    "offsets_ns": t.offsets_ns,
                }
                for t in self.talkers
            ],
        }


class CNC:
    """Computes and packages the network configuration."""

    def __init__(
        self,
        topology: Topology,
        method: str = "etsn",
        backend: str = "heuristic",
        reservation_mode: str = "paper",
    ) -> None:
        topology.validate()
        self._topology = topology
        self._method = method
        self._backend = backend
        self._reservation_mode = reservation_mode

    def compute(self, cuc: CUC) -> Deployment:
        """Resolve requirements, schedule, and emit the deployment."""
        tct_streams = [req.resolve(self._topology) for req in cuc.tct_requirements]
        if cuc.redundant_ect_streams:
            if self._method != "etsn":
                raise StreamError(
                    "redundant ECT streams require the etsn method"
                )
            schedule = schedule_etsn_frer(
                self._topology, tct_streams, cuc.redundant_ect_streams,
                plain_ects=cuc.ect_streams, backend=self._backend,
                reservation_mode=self._reservation_mode,
            )
            mode = "etsn"
        else:
            schedule, mode = build_schedule(
                self._topology, tct_streams, cuc.ect_streams, self._method,
                self._backend, reservation_mode=self._reservation_mode,
            )
        return deployment_from_schedule(schedule, mode=mode)


def deployment_from_schedule(
    schedule: NetworkSchedule, mode: str = "etsn"
) -> Deployment:
    """Package one schedule as a pushable deployment (GCL + talkers).

    Shared by :meth:`CNC.compute` and the online
    :class:`~repro.service.admission.AdmissionService`, which emits a
    fresh deployment per accepted admission batch.
    """
    gcl = build_gcl(schedule, mode=mode, ect_proxies=schedule.meta.get("ect_proxies"))
    talkers = []
    proxies = set(schedule.meta.get("ect_proxies", {}) or {})
    for stream in schedule.tct_streams():
        if stream.name in proxies:
            continue
        first_link = stream.path[0]
        slots = schedule.slots[(stream.name, first_link.key)]
        base = stream.frames_per_period()
        talkers.append(
            TalkerConfig(
                stream=stream.name,
                device=stream.source,
                period_ns=stream.period_ns,
                offsets_ns=[s.offset_ns for s in slots[:base]],
            )
        )
    return Deployment(schedule=schedule, gcl=gcl, talkers=talkers)


def gcl_to_entries(port_gcl: PortGcl) -> List[GclEntry]:
    """Flatten per-queue windows into hardware (interval, bitmask) rows.

    The timeline is cut at every window boundary; each segment's bitmask
    has bit *q* set iff queue *q*'s gate is open throughout the segment.
    Consecutive segments with equal masks merge.
    """
    boundaries = {0, port_gcl.cycle_ns}
    for windows in port_gcl.windows.values():
        for window in windows:
            boundaries.add(window.start_ns)
            boundaries.add(window.end_ns)
    cuts = sorted(boundaries)
    entries: List[GclEntry] = []
    for start, end in zip(cuts, cuts[1:]):
        mask = 0
        for queue, windows in port_gcl.windows.items():
            for window in windows:
                if window.start_ns <= start and end <= window.end_ns:
                    mask |= 1 << queue
                    break
        if entries and entries[-1].gate_states == mask:
            entries[-1] = GclEntry(
                interval_ns=entries[-1].interval_ns + (end - start),
                gate_states=mask,
            )
        else:
            entries.append(GclEntry(interval_ns=end - start, gate_states=mask))
    return entries


def entries_total_ns(entries: Sequence[GclEntry]) -> int:
    """Sum of entry intervals — must equal the port cycle."""
    return sum(e.interval_ns for e in entries)
