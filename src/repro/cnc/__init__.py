"""802.1Qcc-style fully-centralized configuration (CUC + CNC)."""

from repro.cnc.qcc import (
    CNC,
    CUC,
    Deployment,
    GclEntry,
    TalkerConfig,
    deployment_from_schedule,
    entries_total_ns,
    gcl_to_entries,
)

__all__ = [
    "CNC",
    "CUC",
    "Deployment",
    "GclEntry",
    "TalkerConfig",
    "deployment_from_schedule",
    "entries_total_ns",
    "gcl_to_entries",
]
