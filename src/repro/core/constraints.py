"""SMT constraint generation — paper Sec. IV-B, Eqs. 1-7.

Turns a stream set (TCT plus probabilistic possibilities, frame counts
fixed by prudent reservation) into a QF_IDL formula over the frame offset
variables ``φ``.  All constants are nanoseconds; every atom is a
difference constraint, so the formula lands exactly in
:class:`repro.smt.DlSmtSolver`'s fragment.

One deliberate strengthening over the paper's Eq. 4: our end-to-end bound
counts the last frame's wire time and link propagation, so the *measured*
reception-based latency (paper Sec. VI-A3) is bounded, not merely the
last sending instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.reservation import ReservationPlan
from repro.model.frame import FrameVar, build_frame_vars
from repro.model.stream import Priorities, Stream, StreamType, may_overlap
from repro.model.topology import Topology
from repro.smt.solver import DlSmtSolver
from repro.smt.terms import Atom, diff_le, var_ge, var_le
from repro.smt.warmstart import WarmStartState


@dataclass
class ConstraintSystem:
    """The loaded solver plus the frame-variable bookkeeping."""

    solver: DlSmtSolver
    frames: Dict[Tuple[str, Tuple[str, str]], List[FrameVar]]
    num_overlap_clauses: int


def build_frames(
    streams: Sequence[Stream],
    plan: ReservationPlan,
    guard_margin_ns: int = 0,
) -> Dict[Tuple[str, Tuple[str, str]], List[FrameVar]]:
    """Materialize ``F_{s,<a,b>}`` for every stream/link pair."""
    frames: Dict[Tuple[str, Tuple[str, str]], List[FrameVar]] = {}
    for stream in streams:
        for link in stream.path:
            count = plan.frames_on(stream, link.key)
            frames[(stream.name, link.key)] = build_frame_vars(
                stream, link, count, guard_margin_ns,
                extra_durations_ns=plan.extra_durations_on(stream, link.key) or None,
            )
    return frames


def build_constraints(
    topology: Topology,
    streams: Sequence[Stream],
    plan: ReservationPlan,
    guard_margin_ns: int = 0,
    proof: bool = False,
    warm_start: Optional[WarmStartState] = None,
) -> ConstraintSystem:
    """Assemble the full Eq. 1-7 formula for ``streams``.

    ``proof=True`` builds the solver with certificate logging, so the
    eventual :class:`~repro.smt.solver.SmtResult` carries a
    machine-checkable proof (UNSAT) or model witness (SAT).

    ``warm_start`` injects formula-independent state from a previous
    solve after the formula is built (ignored under ``proof=True`` —
    injected lemmas are not input clauses and would corrupt the
    certificate).
    """
    for stream in streams:
        Priorities.check(stream)  # Eq. 6, by construction rather than search
    solver = DlSmtSolver(proof=proof)
    frames = build_frames(streams, plan, guard_margin_ns)
    streams_by_name = {s.name: s for s in streams}

    _add_time_constraints(solver, streams, frames)
    _add_sequencing_constraints(solver, streams, frames)
    _add_e2e_constraints(solver, streams, frames)
    num_overlap = _add_overlap_constraints(solver, streams_by_name, frames)
    _add_adjacent_link_constraints(solver, streams, frames)
    if warm_start is not None:
        solver.apply_warm_state(warm_start)
    return ConstraintSystem(solver=solver, frames=frames, num_overlap_clauses=num_overlap)


# ----------------------------------------------------------------------
def window_max_ns(stream: Stream, frame: FrameVar) -> int:
    """Latest allowed offset for a frame (Eq. 1, E-TSN-adjusted).

    Deterministic frames fit inside their own period, ``φ + L <= T``.
    A probabilistic possibility with a late occurrence time may spill
    into the next cycle (paper Fig. 6: the ``ps_24``/``ps_25`` slot after
    ``f_3``): its window is ``φ + L <= ot + T``.  The overlap encoding
    below and the GCL builder both treat offsets modulo the period, so a
    spilled slot is well-defined.
    """
    limit = stream.period_ns - frame.duration_ns
    if stream.type == StreamType.PROB:
        limit += stream.occurrence_ns
    return limit


def _add_time_constraints(solver, streams, frames) -> None:
    """Eq. 1 (non-negative, fits in window) and Eq. 2 (occurrence time)."""
    for stream in streams:
        for link in stream.path:
            for frame in frames[(stream.name, link.key)]:
                solver.require(var_ge(frame.var_name, 0))
                solver.require(var_le(frame.var_name, window_max_ns(stream, frame)))
        if stream.type == StreamType.PROB:
            first = frames[(stream.name, stream.path[0].key)][0]
            solver.require(var_ge(first.var_name, stream.occurrence_ns))


def _add_sequencing_constraints(solver, streams, frames) -> None:
    """Eq. 3: frames of one stream leave each link in order."""
    for stream in streams:
        for link in stream.path:
            frame_list = frames[(stream.name, link.key)]
            for a, b in zip(frame_list, frame_list[1:]):
                # a.φ + a.L <= b.φ
                solver.require(diff_le(a.var_name, b.var_name, -a.duration_ns))


def _add_e2e_constraints(solver, streams, frames) -> None:
    """Eq. 4, reception-based (includes last wire time + propagation)."""
    for stream in streams:
        first_link = stream.path[0]
        last_link = stream.path[-1]
        first = frames[(stream.name, first_link.key)][0]
        last = frames[(stream.name, last_link.key)][-1]
        tail_ns = last.duration_ns + last_link.propagation_ns
        if stream.type == StreamType.DET:
            # last.φ - first.φ <= e2e - tail
            solver.require(
                diff_le(last.var_name, first.var_name, stream.e2e_ns - tail_ns)
            )
        else:
            # last.φ <= ot + e2e - tail
            solver.require(
                var_le(last.var_name, stream.occurrence_ns + stream.e2e_ns - tail_ns)
            )


def _add_overlap_constraints(solver, streams_by_name, frames) -> int:
    """Eq. 5: pairwise non-overlap across all periodic repetitions.

    Skipped for pairs the E-TSN paradigm allows to overlap (possibilities
    of one ECT stream; possibility x sharing TCT).

    Encoding: the repetitions of frame ``fk`` (period ``Ti``) and ``fl``
    (period ``Tj``) realize every alignment ``Δ = (φl - φk) + D`` with
    ``D`` ranging over all multiples of ``g = gcd(Ti, Tj)``.  They
    overlap iff some alignment lands in ``(-Ll, Lk)``.  With the Eq. 1
    windows bounding ``φ``, only finitely many ``D`` can produce such an
    alignment; one two-literal clause per candidate ``D`` forbids it::

        (φk - φl <= D - Lk)  or  (φl - φk <= -Ll - D)

    This replaces the textbook double loop over hyperperiod repetitions
    and — unlike it — stays sound for the widened probabilistic windows.
    """
    import math

    by_link: Dict[Tuple[str, str], List[Tuple[str, List[FrameVar]]]] = {}
    for (stream_name, link_key), frame_list in frames.items():
        by_link.setdefault(link_key, []).append((stream_name, frame_list))
    num_clauses = 0
    for link_key, entries in by_link.items():
        for i in range(len(entries)):
            name_i, frames_i = entries[i]
            stream_i = streams_by_name[name_i]
            for j in range(i + 1, len(entries)):
                name_j, frames_j = entries[j]
                stream_j = streams_by_name[name_j]
                if may_overlap(stream_i, stream_j):
                    continue
                g = math.gcd(stream_i.period_ns, stream_j.period_ns)
                for fk in frames_i:
                    wm_k = window_max_ns(stream_i, fk)
                    for fl in frames_j:
                        wm_l = window_max_ns(stream_j, fl)
                        # Δ0 = φl - φk lies in [-wm_k, wm_l]; overlap needs
                        # Δ0 + D in (-Ll, Lk), so D in the open interval
                        # (-Ll - wm_l, Lk + wm_k).
                        low = -fl.duration_ns - wm_l
                        high = fk.duration_ns + wm_k
                        m = low // g + 1
                        while m * g < high:
                            d = m * g
                            solver.add_clause([
                                Atom(fk.var_name, fl.var_name,
                                     d - fk.duration_ns),
                                Atom(fl.var_name, fk.var_name,
                                     -fl.duration_ns - d),
                            ])
                            num_clauses += 1
                            m += 1
    return num_clauses


def _add_adjacent_link_constraints(solver, streams, frames) -> None:
    """Eq. 7: downstream slot j after upstream slot j+o is fully received."""
    for stream in streams:
        for up, down in zip(stream.path, stream.path[1:]):
            up_frames = frames[(stream.name, up.key)]
            down_frames = frames[(stream.name, down.key)]
            o = max(len(up_frames) - len(down_frames), 0)
            for j, down_frame in enumerate(down_frames):
                # A downstream link can carry *more* slots than upstream
                # when only it is shared with ECT; surplus downstream
                # slots pair with the last upstream frame.
                up_frame = up_frames[min(j + o, len(up_frames) - 1)]
                # down.φ >= up.φ + up.L + prop
                solver.require(
                    diff_le(
                        up_frame.var_name,
                        down_frame.var_name,
                        -(up_frame.duration_ns + up.propagation_ns),
                    )
                )
