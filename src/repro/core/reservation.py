"""Prudent reservation — technique 3 of E-TSN (paper Sec. III-D, Alg. 1).

When a TCT stream shares its time-slots with ECT, an event can displace
TCT frames; extra slots must absorb the displacement or the TCT deadline
breaks.  Reserving extras along the *whole path* wastes bandwidth, so
reservation works per link, for every (sharing TCT stream, ECT stream)
pair that crosses it.

Two accounting modes are provided:

``paper`` (default, for fidelity to the paper)
    Alg. 1 exactly as printed:

        n = s_e.frames * ceil(tct_wire_time_on_link / s_e.T)

    extra frames, each sized like a TCT frame.  This implicitly assumes
    a TCT slot is at least as long as an ECT frame.  When TCT frames are
    *shorter* than the ECT message, one ECT transmission can straddle —
    and invalidate — several TCT windows, and the printed formula
    under-reserves (observable as TCT deadline misses in simulation).

``robust``
    A generalization that is sound for any frame-size ratio.  Per
    possible event (at most ``floor(T_t / T_e) + 1`` events can touch
    the one-period span the message's windows occupy, because events
    are at least ``T_e`` apart), reserve **one extra window** of length

        block + 2 * L_t_max      with   block = f_e * L_e

    ``block`` is the event's full transmission time on the link and the
    two ``L_t_max`` pads cover boundary straddling.  Whatever part of
    the window the event itself consumes, at least the displaced TCT
    frames' worth of capacity survives, and owner-FIFO windows let the
    stream drain several frames back-to-back through one window.

Because of the per-link extras, adjacent links of one stream carry
different frame counts; the *adjacent-link offset* (paper Fig. 8, Eq. 7)
pairs downstream frame ``j`` with upstream frame ``j + o`` where ``o`` is
the count difference, so a downstream slot always follows the latest
upstream slot that may carry the same frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.model.stream import Stream, StreamType

RESERVATION_MODES = ("paper", "robust")


@dataclass(frozen=True)
class ReservationPlan:
    """Per-stream, per-link frame counts after prudent reservation.

    counts
        ``(stream name, link key) -> total frames`` including extras.
    extras
        Same keys, only the number of *extra* frames (0 for non-shared).
    extra_durations
        Same keys; explicit wire-time of each extra frame in order.  In
        ``paper`` mode extras inherit the largest message-frame size, so
        the lists here are empty; in ``robust`` mode each extra is an
        event-sized window.
    """

    counts: Dict[Tuple[str, Tuple[str, str]], int]
    extras: Dict[Tuple[str, Tuple[str, str]], int]
    extra_durations: Dict[Tuple[str, Tuple[str, str]], List[int]] = field(
        default_factory=dict
    )
    mode: str = "paper"

    def frames_on(self, stream: Stream, link_key: Tuple[str, str]) -> int:
        return self.counts[(stream.name, link_key)]

    def extra_on(self, stream: Stream, link_key: Tuple[str, str]) -> int:
        return self.extras[(stream.name, link_key)]

    def extra_durations_on(
        self, stream: Stream, link_key: Tuple[str, str]
    ) -> List[int]:
        return self.extra_durations.get((stream.name, link_key), [])

    def adjacent_offset(
        self, stream: Stream, upstream: Tuple[str, str], downstream: Tuple[str, str]
    ) -> int:
        """``o = max(|F_up| - |F_down|, 0)`` from paper Eq. 7."""
        up = self.counts[(stream.name, upstream)]
        down = self.counts[(stream.name, downstream)]
        return max(up - down, 0)


def prudent_reservation(
    streams: Sequence[Stream], mode: str = "paper"
) -> ReservationPlan:
    """Run prudent reservation over a mixed stream set.

    ``streams`` holds TCT streams (``Det``) and the probabilistic streams
    already derived from ECT (``Prob``).  Only TCT streams with
    ``share=True`` receive extras; probabilistic and non-shared TCT
    streams keep their natural frame counts on every link.

    Extras are computed against *ECT streams*, i.e. the distinct parents
    of the probabilistic streams, not against each possibility — all
    possibilities of one parent describe the same single event source.
    """
    if mode not in RESERVATION_MODES:
        raise ValueError(f"unknown reservation mode {mode!r}")
    ect_by_link: Dict[Tuple[str, str], List[Stream]] = {}
    seen_parent_on_link = set()
    for stream in streams:
        if stream.type != StreamType.PROB:
            continue
        for link in stream.path:
            marker = (stream.parent, link.key)
            if marker in seen_parent_on_link:
                continue
            seen_parent_on_link.add(marker)
            ect_by_link.setdefault(link.key, []).append(stream)

    counts: Dict[Tuple[str, Tuple[str, str]], int] = {}
    extras: Dict[Tuple[str, Tuple[str, str]], int] = {}
    durations: Dict[Tuple[str, Tuple[str, str]], List[int]] = {}
    for stream in streams:
        base = stream.frames_per_period()
        for link in stream.path:
            extra = 0
            extra_sizes: List[int] = []
            if stream.type == StreamType.DET and stream.share:
                for ect in ect_by_link.get(link.key, ()):
                    if mode == "paper":
                        # n = s_e.l * ceil(s_t wire time / s_e.T)
                        tct_wire_ns = stream.transmission_ns(link)
                        events = -(-tct_wire_ns // ect.period_ns)
                        extra += ect.frames_per_period() * events
                    else:
                        events = stream.period_ns // ect.period_ns + 1
                        block_ns = ect.transmission_ns(link)
                        pad_ns = 2 * max(
                            link.transmission_ns(w)
                            for w in stream.wire_bytes_per_frame()
                        )
                        extra += events
                        extra_sizes.extend([block_ns + pad_ns] * events)
            counts[(stream.name, link.key)] = base + extra
            extras[(stream.name, link.key)] = extra
            if extra_sizes:
                durations[(stream.name, link.key)] = extra_sizes
    return ReservationPlan(
        counts=counts, extras=extras, extra_durations=durations, mode=mode
    )


def total_extra_slots(plan: ReservationPlan) -> int:
    """Total extra frames reserved network-wide (resource-cost metric)."""
    return sum(plan.extras.values())


def total_extra_time_ns(plan: ReservationPlan, streams: Sequence[Stream]) -> int:
    """Total reserved extra wire-time per hyperperiod-independent period
    instance, summed over streams and links (resource-cost metric)."""
    by_name = {s.name: s for s in streams}
    total = 0
    for (name, link_key), count in plan.extras.items():
        if count == 0:
            continue
        stream = by_name[name]
        link = next(l for l in stream.path if l.key == link_key)
        sizes = plan.extra_durations.get((name, link_key))
        if sizes:
            total += sum(sizes)
        else:
            largest = max(
                link.transmission_ns(w) for w in stream.wire_bytes_per_frame()
            )
            total += count * largest
    return total
