"""E-TSN core: the paper's scheduling contribution.

Probabilistic streams (Sec. III-B), prudent reservation (Sec. III-D,
Alg. 1), the Eq. 1-7 constraint system (Sec. IV), two scheduler backends
(SMT and incremental backtracking), GCL synthesis (Qbv), and the PERIOD
and AVB baselines of the evaluation.
"""

from repro.core.baselines import schedule_avb, schedule_etsn, schedule_period
from repro.core.frer import frer_guarantee_ns, plan_frer, schedule_etsn_frer
from repro.core.gcl import GateWindow, NetworkGcl, PortGcl, build_gcl
from repro.core.gcl_audit import GclAuditError, audit_gcl
from repro.core.heuristic import schedule_heuristic
from repro.core.incremental import add_ect_stream, add_tct_stream, remove_stream
from repro.core.probabilistic import expand_ect, possibility_for_occurrence, quantization_delay_ns
from repro.core.reservation import ReservationPlan, prudent_reservation, total_extra_slots
from repro.core.schedule import (
    CertifiedInfeasibleError,
    InfeasibleError,
    NetworkSchedule,
    ScheduleError,
    validate,
)
from repro.core.smt_scheduler import schedule_smt

__all__ = [
    "CertifiedInfeasibleError",
    "GateWindow",
    "add_ect_stream",
    "add_tct_stream",
    "remove_stream",
    "InfeasibleError",
    "NetworkGcl",
    "NetworkSchedule",
    "PortGcl",
    "ReservationPlan",
    "ScheduleError",
    "audit_gcl",
    "build_gcl",
    "frer_guarantee_ns",
    "plan_frer",
    "schedule_etsn_frer",
    "GclAuditError",
    "expand_ect",
    "possibility_for_occurrence",
    "prudent_reservation",
    "quantization_delay_ns",
    "schedule_avb",
    "schedule_etsn",
    "schedule_heuristic",
    "schedule_period",
    "schedule_smt",
    "total_extra_slots",
    "validate",
]
