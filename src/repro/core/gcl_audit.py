"""GCL audit: independent verification of gate programs against a schedule.

:func:`repro.core.schedule.validate` checks the *slot table*;
this module checks the *gate programs* synthesized from it, closing the
loop before a configuration reaches switches:

1. every deterministic slot occurrence is covered by a window of the
   stream's queue, owned by that stream (or by its ECT name for PERIOD
   proxies);
2. the EP queue honors the mode's policy: closed inside non-shared TCT
   windows (all modes); in ``etsn-strict`` it covers every probabilistic
   slot; in ``period`` it opens only inside proxy windows;
3. the best-effort gate never opens inside any TCT window;
4. windows never exceed the cycle and (per queue) never overlap —
   re-checked here even though construction enforces it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.gcl import NetworkGcl, _cyclic_occurrences
from repro.core.schedule import NetworkSchedule
from repro.model.stream import Priorities, StreamType


class GclAuditError(AssertionError):
    """A gate program contradicts the schedule it was built from."""


def audit_gcl(
    schedule: NetworkSchedule,
    gcl: NetworkGcl,
    ect_proxies: Optional[Dict[str, str]] = None,
) -> None:
    """Raise :class:`GclAuditError` on the first inconsistency."""
    proxies = ect_proxies or schedule.meta.get("ect_proxies", {}) or {}
    streams = {s.name: s for s in schedule.streams}
    cycle = gcl.cycle_ns

    _audit_structure(gcl)
    for (name, link_key), slots in schedule.slots.items():
        stream = streams[name]
        if stream.type == StreamType.PROB:
            if gcl.mode == "etsn-strict":
                _require_covered(gcl, link_key, slots, Priorities.EP, None, cycle)
            continue
        if name in proxies:
            _require_covered(gcl, link_key, slots, Priorities.EP, proxies[name], cycle)
            continue
        _require_covered(gcl, link_key, slots, stream.priority, name, cycle)
        if not stream.share:
            _require_ep_closed(gcl, link_key, slots, cycle)
        _require_be_closed(gcl, link_key, slots, cycle)


def _audit_structure(gcl: NetworkGcl) -> None:
    for link_key, port in gcl.ports.items():
        for queue, windows in port.windows.items():
            ordered = sorted(windows, key=lambda w: w.start_ns)
            for window in ordered:
                if window.end_ns > port.cycle_ns:
                    raise GclAuditError(
                        f"{link_key} q{queue}: window past the cycle end"
                    )
            for a, b in zip(ordered, ordered[1:]):
                if a.end_ns > b.start_ns:
                    raise GclAuditError(
                        f"{link_key} q{queue}: overlapping windows "
                        f"[{a.start_ns},{a.end_ns}) / [{b.start_ns},{b.end_ns})"
                    )


def _pieces(slots, cycle):
    for slot in slots:
        yield from (
            (slot, start, end)
            for start, end in _cyclic_occurrences(
                slot.offset_ns, slot.duration_ns, slot.period_ns, cycle
            )
        )


def _require_covered(gcl, link_key, slots, queue, owner, cycle) -> None:
    port = gcl.port(link_key)
    for slot, start, end in _pieces(slots, cycle):
        for probe in (start, (start + end) // 2, end - 1):
            is_open, window_owner, _ = port.state_at(queue, probe)
            if not is_open:
                raise GclAuditError(
                    f"{slot.stream}[{slot.index}] on {link_key}: queue "
                    f"{queue} gate closed at {probe} inside its slot"
                )
            if owner is not None and window_owner not in (owner, None):
                raise GclAuditError(
                    f"{slot.stream}[{slot.index}] on {link_key}: window at "
                    f"{probe} owned by {window_owner!r}, expected {owner!r}"
                )


def _require_ep_closed(gcl, link_key, slots, cycle) -> None:
    port = gcl.port(link_key)
    for slot, start, end in _pieces(slots, cycle):
        for probe in (start, (start + end) // 2, end - 1):
            is_open, _, _ = port.state_at(Priorities.EP, probe)
            if is_open:
                raise GclAuditError(
                    f"EP gate open at {probe} inside non-shared slot of "
                    f"{slot.stream} on {link_key}"
                )


def _require_be_closed(gcl, link_key, slots, cycle) -> None:
    port = gcl.port(link_key)
    for slot, start, end in _pieces(slots, cycle):
        for probe in (start, (start + end) // 2, end - 1):
            is_open, _, _ = port.state_at(Priorities.BE, probe)
            if is_open:
                raise GclAuditError(
                    f"BE gate open at {probe} inside TCT slot of "
                    f"{slot.stream} on {link_key}"
                )
