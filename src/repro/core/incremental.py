"""Online (incremental) scheduling — the paper's future-work direction.

Sec. VII-C motivates *online* scheduling: links fail, applications come
and go, and recomputing the whole network schedule on every change is too
slow.  This module adds streams to an existing :class:`NetworkSchedule`
without moving any already-granted slot:

* :func:`add_tct_stream` — admit one new TCT stream; existing slots are
  frozen, the new stream is placed earliest-fit around them (the
  incremental step of Steiner's backtracking approach [18]).
* :func:`add_ect_stream` — admit one new ECT stream.  Its probabilistic
  possibilities are placed around the frozen schedule.  TCT streams that
  share their slots with the new ECT need fresh prudent-reservation
  extras, and appending extras on one link shifts the adjacent-link
  pairing (paper Fig. 8) — so exactly those streams are *re-placed*;
  every other stream's slots are frozen.
* :func:`remove_stream` — retire a stream and release its slots (and,
  for an ECT stream, the extras it induced, recomputed for the remaining
  set).

Every operation returns a **new** schedule object and re-validates it;
admission failure raises :class:`InfeasibleError` and leaves the input
schedule untouched (admission control semantics).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.constraints import build_frames
from repro.core.heuristic import _Occupancy, _place_stream, _PlacementFailure
from repro.core.probabilistic import expand_ect
from repro.core.reservation import prudent_reservation
from repro.core.schedule import InfeasibleError, NetworkSchedule, validate
from repro.model.frame import FrameSlot
from repro.model.stream import EctStream, Priorities, Stream, StreamType


def _occupancy_of(schedule: NetworkSchedule) -> _Occupancy:
    streams_by_name = {s.name: s for s in schedule.streams}
    occupancy = _Occupancy(streams_by_name)
    for slots in schedule.slots.values():
        for slot in slots:
            occupancy.add(slot)
    return occupancy


def _clone(schedule: NetworkSchedule) -> NetworkSchedule:
    return NetworkSchedule(
        topology=schedule.topology,
        streams=list(schedule.streams),
        slots={key: list(slots) for key, slots in schedule.slots.items()},
        ect_streams=list(schedule.ect_streams),
        meta=dict(schedule.meta),
    )


def _register(occupancy: _Occupancy, new_streams: Sequence[Stream]) -> None:
    for stream in new_streams:
        occupancy._streams[stream.name] = stream  # noqa: SLF001 - same package


def affected_sharing_streams(
    schedule: NetworkSchedule, ect: EctStream
) -> List[Stream]:
    """The sharing TCT streams whose reservations a new ECT reshapes.

    Exactly the deterministic ``share=True`` streams crossing any link
    of the ECT's route: prudent reservation (Alg. 1) adds extras per
    (sharing TCT x ECT) pair per shared link, so these — and only
    these — need re-placement when ``ect`` is admitted.
    """
    ect_links = {link.key for link in ect.route(schedule.topology)}
    return [
        s for s in schedule.streams
        if s.type == StreamType.DET and s.share
        and any(link.key in ect_links for link in s.path)
    ]


def add_tct_stream(
    schedule: NetworkSchedule,
    stream: Stream,
    guard_margin_ns: int = 0,
    validate_result: bool = True,
) -> NetworkSchedule:
    """Admit one TCT stream into a frozen schedule.

    The new stream must not share slots with ECT (``share=False``); use
    :func:`add_shared_tct_stream` for sharing streams, whose own
    reservations depend on the existing ECT set.
    """
    if stream.type != StreamType.DET:
        raise ValueError("add_tct_stream takes a deterministic stream")
    if stream.share and schedule.ect_streams:
        raise InfeasibleError(
            f"{stream.name}: admitting a *sharing* TCT stream online would "
            f"re-shape existing ECT reservations; re-run the offline "
            f"scheduler for that"
        )
    Priorities.check(stream)
    if any(s.name == stream.name for s in schedule.streams):
        raise ValueError(f"stream {stream.name!r} already scheduled")

    plan = prudent_reservation([stream])
    frames = build_frames([stream], plan, guard_margin_ns)
    occupancy = _occupancy_of(schedule)
    _register(occupancy, [stream])
    try:
        placed = _place_stream(stream, frames, occupancy)
    except _PlacementFailure as exc:
        raise InfeasibleError(f"cannot admit {stream.name}: {exc}") from exc

    result = _clone(schedule)
    result.streams.append(stream)
    for slot in placed:
        result.slots.setdefault((slot.stream, slot.link), []).append(slot)
    for key in [(stream.name, link.key) for link in stream.path]:
        result.slots[key].sort(key=lambda s: s.index)
    result.meta["incremental_additions"] = (
        schedule.meta.get("incremental_additions", 0) + 1
    )
    if validate_result:
        validate(result)
    return result


def add_shared_tct_stream(
    schedule: NetworkSchedule,
    stream: Stream,
    guard_margin_ns: int = 0,
    reservation_mode: str = "paper",
    validate_result: bool = True,
) -> NetworkSchedule:
    """Admit one *sharing* TCT stream into a frozen schedule.

    Prudent reservation (Alg. 1) computes a stream's extras from that
    stream's own ``share`` flag and the ECT possibilities on its links —
    never from the other TCT streams.  A new sharing stream therefore
    adds only *its own* extra slots; every existing stream's slot list
    (extras included) is unchanged.  That makes online admission sound:
    freeze everything, compute the candidate's reservation against the
    full population, and place its base+extra frames earliest-fit.

    The blanket refusal in :func:`add_tct_stream` predates this
    analysis and is kept there so the ladder's full re-solve rung still
    exercises the offline path when the fast path is disabled.
    """
    if stream.type != StreamType.DET:
        raise ValueError("add_shared_tct_stream takes a deterministic stream")
    if not stream.share:
        return add_tct_stream(
            schedule, stream, guard_margin_ns, validate_result
        )
    Priorities.check(stream)
    if any(s.name == stream.name for s in schedule.streams):
        raise ValueError(f"stream {stream.name!r} already scheduled")

    # the candidate's extras depend on the ECT possibilities sharing its
    # links, so the plan must see the whole population — but only the
    # candidate's rows of the plan are used
    plan = prudent_reservation(
        list(schedule.streams) + [stream], mode=reservation_mode
    )
    frames = build_frames([stream], plan, guard_margin_ns)
    occupancy = _occupancy_of(schedule)
    _register(occupancy, [stream])
    try:
        placed = _place_stream(stream, frames, occupancy)
    except _PlacementFailure as exc:
        raise InfeasibleError(f"cannot admit {stream.name}: {exc}") from exc

    result = _clone(schedule)
    result.streams.append(stream)
    for slot in placed:
        result.slots.setdefault((slot.stream, slot.link), []).append(slot)
    for key in [(stream.name, link.key) for link in stream.path]:
        result.slots[key].sort(key=lambda s: s.index)
    result.meta["incremental_additions"] = (
        schedule.meta.get("incremental_additions", 0) + 1
    )
    if validate_result:
        validate(result)
    return result


def add_ect_stream(
    schedule: NetworkSchedule,
    ect: EctStream,
    guard_margin_ns: int = 0,
    reservation_mode: str = "paper",
    validate_result: bool = True,
) -> NetworkSchedule:
    """Admit one ECT stream into a mostly-frozen schedule.

    Slots of streams unrelated to the new ECT never move.  Sharing TCT
    streams crossed by the new ECT need more reservation, and extras on
    one link shift the Eq. 7 pairing, so those streams are re-placed
    from scratch around everything else.
    """
    if any(e.name == ect.name for e in schedule.ect_streams):
        raise ValueError(f"ECT stream {ect.name!r} already scheduled")
    possibilities = expand_ect(ect, schedule.topology)

    old_streams = list(schedule.streams)
    new_streams = old_streams + possibilities
    plan_after = prudent_reservation(new_streams, mode=reservation_mode)

    affected = affected_sharing_streams(schedule, ect)
    affected_names = {s.name for s in affected}

    result = _clone(schedule)
    result.streams.extend(possibilities)
    result.ect_streams.append(ect)
    # drop the affected streams' slots; they are re-placed below
    result.slots = {
        key: slots for key, slots in result.slots.items()
        if key[0] not in affected_names
    }
    occupancy = _occupancy_of(result)
    _register(occupancy, possibilities)

    try:
        frames = build_frames(
            affected + possibilities, plan_after, guard_margin_ns
        )
        # re-place the sharing streams first (tighter), then the
        # possibilities (they may overlap the sharing streams anyway)
        for stream in affected + possibilities:
            placed = _place_stream(stream, frames, occupancy)
            for slot in placed:
                occupancy.add(slot)
                result.slots.setdefault((slot.stream, slot.link), []).append(slot)
            for link in stream.path:
                result.slots[(stream.name, link.key)].sort(key=lambda s: s.index)
    except _PlacementFailure as exc:
        raise InfeasibleError(f"cannot admit {ect.name}: {exc}") from exc

    result.meta["incremental_additions"] = (
        schedule.meta.get("incremental_additions", 0) + 1
    )
    if validate_result:
        validate(result)
    return result


def remove_stream(
    schedule: NetworkSchedule, name: str, validate_result: bool = True
) -> NetworkSchedule:
    """Retire a TCT stream or an ECT stream (with all its possibilities).

    Removing an ECT stream leaves the other streams' extra reservations
    in place (they are still valid, just more generous than needed); a
    periodic offline re-run reclaims them.
    """
    result = _clone(schedule)
    ect = next((e for e in result.ect_streams if e.name == name), None)
    if ect is not None:
        result.ect_streams = [e for e in result.ect_streams if e.name != name]
        victims = {s.name for s in result.streams
                   if s.type == StreamType.PROB and s.parent == name}
    else:
        if not any(s.name == name for s in result.streams):
            raise KeyError(f"no stream named {name!r}")
        victims = {name}
    result.streams = [s for s in result.streams if s.name not in victims]
    result.slots = {
        key: slots for key, slots in result.slots.items() if key[0] not in victims
    }
    if validate_result:
        validate(result)
    return result
