"""Probabilistic streams — technique 1 of E-TSN (paper Sec. III-B).

An ECT stream with minimum inter-event time ``T`` may start transmitting
at any instant.  To make it schedulable, E-TSN derives ``N`` periodic
*probabilistic streams* ``ps_1 .. ps_N``: possibility ``i`` starts at
``ot_i = (i-1) * T / N`` and repeats every ``T``.  An event arriving
between ``ot_{i-1}`` and ``ot_i`` is delayed at most ``T/N`` to ride
``ps_i``'s slots, so each possibility's latency budget shrinks by the
quantization step: ``ps.e2e = s.e2e - T/N``.

If a schedule satisfies every possibility, it satisfies the ECT stream no
matter when the event fires; possibilities of the same parent may share
(overlap) time-slots because at most one of them materializes.
"""

from __future__ import annotations

from typing import List

from repro.model.stream import EctStream, Priorities, Stream, StreamError, StreamType
from repro.model.topology import Topology
from repro.model.units import is_multiple


def expand_ect(ect: EctStream, topology: Topology) -> List[Stream]:
    """Derive the ``N`` probabilistic streams of one ECT stream.

    The minimum inter-event time must split evenly into ``N`` macrotick-
    aligned occurrence offsets, and the latency budget left after the
    quantization delay must remain positive — otherwise ``N`` is too small
    (too coarse) or too large (no budget left) for this stream.
    """
    n = ect.possibilities
    if ect.min_interevent_ns % n != 0:
        raise StreamError(
            f"{ect.name}: possibilities N={n} must divide the minimum "
            f"inter-event time {ect.min_interevent_ns} ns evenly"
        )
    step_ns = ect.min_interevent_ns // n
    macrotick = topology.macrotick_ns()
    if not is_multiple(step_ns, macrotick):
        raise StreamError(
            f"{ect.name}: occurrence step {step_ns} ns is not a multiple of "
            f"the network macrotick {macrotick} ns; choose a different N"
        )
    budget_ns = ect.effective_e2e_ns - step_ns
    if budget_ns <= 0:
        raise StreamError(
            f"{ect.name}: e2e budget {ect.effective_e2e_ns} ns does not "
            f"survive the {step_ns} ns quantization delay; increase N"
        )
    path = ect.route(topology)
    possibilities = []
    for i in range(n):
        possibilities.append(
            Stream(
                name=f"{ect.name}#ps{i + 1}",
                path=path,
                e2e_ns=budget_ns,
                priority=Priorities.EP,
                length_bytes=ect.length_bytes,
                period_ns=ect.min_interevent_ns,
                type=StreamType.PROB,
                share=False,
                occurrence_ns=i * step_ns,
                parent=ect.name,
            )
        )
    return possibilities


def quantization_delay_ns(ect: EctStream) -> int:
    """Worst extra wait an event suffers before its possibility starts.

    This is the ``T/N`` bound of paper Sec. III-B — the design knob traded
    against schedule size when choosing ``N``.
    """
    return ect.min_interevent_ns // ect.possibilities


def possibility_for_occurrence(ect: EctStream, occurrence_ns: int) -> int:
    """Index (0-based) of the possibility that carries an event at ``t``.

    An event at ``t`` rides the first possibility whose occurrence offset
    is at or after ``t mod T``; events exactly on an offset ride it with
    zero delay.
    """
    if occurrence_ns < 0:
        raise ValueError(f"negative occurrence time {occurrence_ns}")
    step_ns = quantization_delay_ns(ect)
    phase = occurrence_ns % ect.min_interevent_ns
    index = -(-phase // step_ns)  # ceil
    return index % ect.possibilities
