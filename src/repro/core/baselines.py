"""Scheduling front-ends: E-TSN and the paper's two baselines.

``schedule_etsn``
    The paper's method: probabilistic streams + prioritized slot sharing
    + prudent reservation, via either backend.

``schedule_period``
    The **PERIOD** baseline (Sec. VI-A2): treat each ECT stream as a TCT
    stream and give it dedicated time-slots.  To "use as many time-slots
    as E-TSN", the proxy's period is ``min_interevent / N`` (one slot per
    probabilistic possibility); the ``slot_multiplier`` reproduces the
    PERIOD_double/quad/octa variants of paper Fig. 12.

``schedule_avb``
    The **AVB** baseline: TCT is scheduled normally and ECT is *not*
    scheduled at all — at run time it travels as an 802.1Qav class in
    whatever time-slots are unallocated, above best-effort priority.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.core.heuristic import schedule_heuristic
from repro.core.schedule import NetworkSchedule
from repro.core.smt_scheduler import schedule_smt
from repro.model.stream import EctStream, Priorities, Stream, StreamError, StreamType
from repro.model.topology import Topology

BACKENDS = ("heuristic", "smt")


def _backend(name: str):
    if name == "heuristic":
        return schedule_heuristic
    if name == "smt":
        return schedule_smt
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")


def schedule_etsn(
    topology: Topology,
    tct_streams: Sequence[Stream],
    ect_streams: Sequence[EctStream] = (),
    backend: str = "heuristic",
    guard_margin_ns: int = 0,
    reservation_mode: str = "paper",
    proof: bool = False,
    warm_start=None,
    warm_state_sink=None,
) -> NetworkSchedule:
    """Joint E-TSN schedule (paper Sec. III/IV).

    ``reservation_mode='robust'`` switches prudent reservation to the
    sound generalization (see :mod:`repro.core.reservation`).

    ``proof=True`` (SMT backend only) turns on certificate logging and
    independent verification — see :func:`repro.core.schedule_smt`.

    ``warm_start`` / ``warm_state_sink`` (SMT backend only) reuse
    formula-independent solver state across consecutive solves — see
    :func:`repro.core.schedule_smt`; both are ignored by the heuristic
    backend, which has no solver state to carry.
    """
    kwargs = dict(
        guard_margin_ns=guard_margin_ns, reservation_mode=reservation_mode
    )
    if proof:
        if backend != "smt":
            raise ValueError(
                f"proof certificates require backend='smt', got {backend!r}"
            )
        kwargs["proof"] = True
    if backend == "smt":
        if warm_start is not None:
            kwargs["warm_start"] = warm_start
        if warm_state_sink is not None:
            kwargs["warm_state_sink"] = warm_state_sink
    return _backend(backend)(topology, tct_streams, ect_streams, **kwargs)


def schedule_period(
    topology: Topology,
    tct_streams: Sequence[Stream],
    ect_streams: Sequence[EctStream],
    slot_multiplier: int = 1,
    backend: str = "heuristic",
    guard_margin_ns: int = 0,
) -> NetworkSchedule:
    """PERIOD baseline: dedicated periodic slots for each ECT stream.

    The proxy streams are plain TCT from the scheduler's point of view;
    at GCL time their windows move to the EP queue (keyed by
    ``meta['ect_proxies']``), and at run time the stochastic events wait
    in the EP queue for the next dedicated window.
    """
    if slot_multiplier < 1:
        raise ValueError(f"slot multiplier must be >= 1, got {slot_multiplier}")
    proxies: Dict[str, str] = {}
    # PERIOD has no slot sharing; sharing flags are E-TSN's mechanism.
    all_streams: List[Stream] = _renumber_nonshared(
        s.with_share(False) if s.share else s for s in tct_streams
    )
    for ect in ect_streams:
        slots_per_interval = ect.possibilities * slot_multiplier
        if ect.min_interevent_ns % slots_per_interval != 0:
            raise StreamError(
                f"{ect.name}: {slots_per_interval} dedicated slots do not "
                f"divide the minimum inter-event time evenly"
            )
        proxy_period = ect.min_interevent_ns // slots_per_interval
        proxy = Stream(
            name=f"{ect.name}#period",
            path=ect.route(topology),
            e2e_ns=proxy_period,
            priority=Priorities.NSH_PH,
            length_bytes=ect.length_bytes,
            period_ns=proxy_period,
            type=StreamType.DET,
            share=False,
        )
        proxies[proxy.name] = ect.name
        all_streams.append(proxy)
    schedule = _backend(backend)(
        topology, all_streams, (), guard_margin_ns=guard_margin_ns
    )
    schedule.ect_streams = list(ect_streams)
    schedule.meta["ect_proxies"] = proxies
    schedule.meta["method"] = f"period_x{slot_multiplier}"
    return schedule


def schedule_avb(
    topology: Topology,
    tct_streams: Sequence[Stream],
    ect_streams: Sequence[EctStream],
    backend: str = "heuristic",
    guard_margin_ns: int = 0,
) -> NetworkSchedule:
    """AVB baseline: schedule TCT only; ECT rides unallocated time."""
    plain = _renumber_nonshared(s.with_share(False) if s.share else s
                                for s in tct_streams)
    schedule = _backend(backend)(
        topology, plain, (), guard_margin_ns=guard_margin_ns
    )
    schedule.ect_streams = list(ect_streams)
    schedule.meta["method"] = "avb"
    return schedule


def build_schedule(
    topology: Topology,
    tct_streams: Sequence[Stream],
    ect_streams: Sequence[EctStream],
    method: str,
    backend: str = "heuristic",
    guard_margin_ns: int = 0,
    reservation_mode: str = "paper",
) -> Tuple[NetworkSchedule, str]:
    """Schedule for one method; returns (schedule, GCL mode)."""
    if method == "etsn":
        return schedule_etsn(topology, tct_streams, ect_streams, backend=backend,
                             guard_margin_ns=guard_margin_ns,
                             reservation_mode=reservation_mode), "etsn"
    if method == "etsn-strict":
        return (
            schedule_etsn(topology, tct_streams, ect_streams, backend=backend,
                          guard_margin_ns=guard_margin_ns,
                          reservation_mode=reservation_mode),
            "etsn-strict",
        )
    if method == "avb":
        return schedule_avb(topology, tct_streams, ect_streams, backend=backend,
                            guard_margin_ns=guard_margin_ns), "avb"
    if method.startswith("period"):
        multiplier = 1
        if "_x" in method:
            multiplier = int(method.split("_x", 1)[1])
        return (
            schedule_period(
                topology, tct_streams, ect_streams,
                slot_multiplier=multiplier, backend=backend,
                guard_margin_ns=guard_margin_ns,
            ),
            "period",
        )
    raise ValueError(
        f"unknown method {method!r}; expected one of "
        f"('etsn', 'etsn-strict', 'period[_xN]', 'avb')"
    )


def _renumber_nonshared(streams) -> List[Stream]:
    """Move priorities of formerly-shared streams into the NSH band.

    The baselines have no sharing, so every TCT stream must satisfy the
    non-shared branch of Eq. 6.
    """
    result = []
    for stream in streams:
        if not stream.share and not Priorities.is_nonshared_tct(stream.priority):
            stream = replace(stream, priority=Priorities.NSH_PH)
        result.append(stream)
    return result
