"""Gate Control List synthesis (802.1Qbv) from a network schedule.

Turns the slot table of a :class:`repro.core.schedule.NetworkSchedule`
into per-egress-port GCLs the simulator (or a Qbv switch) executes.  A
GCL here is, per queue, a sorted list of open windows over one cycle
(the hyperperiod).  Windows carry an *owner* stream: a window owned by
stream ``s`` transmits only ``s``'s frames from its queue — the flow-
isolation discipline classic Qbv synthesis needs anyway so FIFO order
inside a queue cannot hand one stream's window to another stream.

Four synthesis modes mirror the paper's compared methods:

``etsn``
    TCT windows as scheduled.  The ECT queue (EP) opens everywhere
    except inside non-shared TCT windows — prioritized slot sharing: an
    event transmits immediately in shared slots and idle time, and
    prudent reservation's extra windows absorb the displaced TCT frames.
``etsn-strict``
    EP opens only inside the *scheduled* ECT slots (probabilistic slots
    plus shared TCT windows).  This is the literal reservation the
    worst-case analysis proves; ``etsn`` is its run-time superset.
``period``
    The PERIOD baseline: EP opens only in the dedicated windows of the
    ECT-as-TCT proxy streams.
``avb``
    The AVB baseline (802.1Qav): EP opens only in time left unallocated
    by every TCT window, subject to the credit-based shaper at run time.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.schedule import NetworkSchedule
from repro.model.stream import Priorities, StreamType

GCL_MODES = ("etsn", "etsn-strict", "period", "avb")


@dataclass(frozen=True)
class GateWindow:
    """One open interval ``[start, end)`` of a queue's gate, in-cycle."""

    start_ns: int
    end_ns: int
    owner: Optional[str] = None  #: stream allowed to use it; None = any

    def __post_init__(self) -> None:
        if not 0 <= self.start_ns < self.end_ns:
            raise ValueError(f"bad gate window [{self.start_ns},{self.end_ns})")

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class PortGcl:
    """The gate program of one egress port."""

    link: Tuple[str, str]
    cycle_ns: int
    windows: Dict[int, List[GateWindow]] = field(default_factory=dict)
    _starts: Dict[int, List[int]] = field(default_factory=dict, repr=False)

    def add_window(self, queue: int, window: GateWindow) -> None:
        if not 0 <= queue <= 7:
            raise ValueError(f"queue must be 0..7, got {queue}")
        if window.end_ns > self.cycle_ns:
            raise ValueError(
                f"window [{window.start_ns},{window.end_ns}) exceeds cycle "
                f"{self.cycle_ns}"
            )
        self.windows.setdefault(queue, []).append(window)
        self._starts.pop(queue, None)

    def finalize(self) -> None:
        """Sort, coalesce, and index the windows; call after building.

        Adjacent windows with the same owner merge: a hardware gate that
        stays open across two equal GCL entries is one open interval, so
        a frame may span the internal boundary (no phantom guard band).
        """
        for queue, wins in self.windows.items():
            wins.sort(key=lambda w: w.start_ns)
            for a, b in zip(wins, wins[1:]):
                if a.end_ns > b.start_ns:
                    raise ValueError(
                        f"queue {queue} on {self.link}: windows "
                        f"[{a.start_ns},{a.end_ns}) and "
                        f"[{b.start_ns},{b.end_ns}) overlap"
                    )
            merged: List[GateWindow] = []
            for window in wins:
                if (merged
                        and merged[-1].end_ns == window.start_ns
                        and merged[-1].owner == window.owner):
                    merged[-1] = GateWindow(
                        merged[-1].start_ns, window.end_ns, owner=window.owner
                    )
                else:
                    merged.append(window)
            self.windows[queue] = merged
            self._starts[queue] = [w.start_ns for w in merged]

    # ------------------------------------------------------------------
    # runtime queries (local-clock nanoseconds)
    # ------------------------------------------------------------------
    def state_at(self, queue: int, local_ns: int) -> Tuple[bool, Optional[str], int]:
        """Gate state of ``queue`` at a local time.

        Returns ``(open, owner, boundary_local_ns)`` where the boundary is
        the absolute local time the state next changes (window end if
        open, next window start if closed; never in the past).
        """
        wins = self.windows.get(queue)
        if not wins:
            return (False, None, local_ns + self.cycle_ns)
        starts = self._starts.get(queue)
        if starts is None or len(starts) != len(wins):
            self.finalize()
            starts = self._starts[queue]
        tau = local_ns % self.cycle_ns
        base = local_ns - tau
        idx = bisect_right(starts, tau) - 1
        if idx >= 0 and tau < wins[idx].end_ns:
            window = wins[idx]
            return (True, window.owner, base + window.end_ns)
        nxt = idx + 1
        if nxt < len(wins):
            return (False, None, base + wins[nxt].start_ns)
        return (False, None, base + self.cycle_ns + wins[0].start_ns)

    def is_always_closed(self, queue: int) -> bool:
        return not self.windows.get(queue)


@dataclass
class NetworkGcl:
    """All port GCLs of one network, plus synthesis metadata."""

    mode: str
    cycle_ns: int
    ports: Dict[Tuple[str, str], PortGcl]

    def port(self, link_key: Tuple[str, str]) -> PortGcl:
        return self.ports[link_key]


# ----------------------------------------------------------------------
# interval helpers
# ----------------------------------------------------------------------
def merge_intervals(intervals: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Union of half-open intervals."""
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def complement_intervals(
    intervals: Sequence[Tuple[int, int]], cycle_ns: int
) -> List[Tuple[int, int]]:
    """Gaps of a merged interval set within ``[0, cycle)``."""
    gaps: List[Tuple[int, int]] = []
    cursor = 0
    for start, end in merge_intervals(intervals):
        if start > cursor:
            gaps.append((cursor, start))
        cursor = max(cursor, end)
    if cursor < cycle_ns:
        gaps.append((cursor, cycle_ns))
    return gaps


def _cyclic_occurrences(
    offset_ns: int, duration_ns: int, period_ns: int, cycle_ns: int
) -> List[Tuple[int, int]]:
    """In-cycle intervals of a periodic slot, split at the cycle edge."""
    if cycle_ns % period_ns != 0:
        raise ValueError(
            f"slot period {period_ns} does not divide GCL cycle {cycle_ns}"
        )
    result: List[Tuple[int, int]] = []
    for k in range(cycle_ns // period_ns):
        start = (offset_ns + k * period_ns) % cycle_ns
        end = start + duration_ns
        if end <= cycle_ns:
            result.append((start, end))
        else:
            result.append((start, cycle_ns))
            result.append((0, end - cycle_ns))
    return result


# ----------------------------------------------------------------------
# synthesis
# ----------------------------------------------------------------------
def build_gcl(
    schedule: NetworkSchedule,
    mode: str = "etsn",
    ect_proxies: Optional[Dict[str, str]] = None,
) -> NetworkGcl:
    """Synthesize all port GCLs from a schedule.

    ect_proxies
        PERIOD baseline only: maps the name of each ECT-as-TCT proxy
        stream to its real ECT stream name; the proxy's windows move to
        the EP queue under the real name.
    """
    if mode not in GCL_MODES:
        raise ValueError(f"unknown GCL mode {mode!r}; expected one of {GCL_MODES}")
    proxies = ect_proxies or {}
    cycle = schedule.hyperperiod_ns
    streams = {s.name: s for s in schedule.streams}

    ports: Dict[Tuple[str, str], PortGcl] = {}
    tct_busy: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
    nonshared_busy: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
    ect_windows: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}

    def port_for(link_key: Tuple[str, str]) -> PortGcl:
        if link_key not in ports:
            ports[link_key] = PortGcl(link=link_key, cycle_ns=cycle)
        return ports[link_key]

    for (stream_name, link_key), slots in schedule.slots.items():
        stream = streams[stream_name]
        port = port_for(link_key)
        for slot in slots:
            pieces = _cyclic_occurrences(
                slot.offset_ns, slot.duration_ns, slot.period_ns, cycle
            )
            if stream.type == StreamType.PROB:
                # Probabilistic slots become EP reservations only in the
                # strict mode; in plain etsn the EP complement covers them.
                if mode == "etsn-strict":
                    ect_windows.setdefault(link_key, []).extend(pieces)
                continue
            if stream_name in proxies:
                for start, end in pieces:
                    port.add_window(
                        Priorities.EP,
                        GateWindow(start, end, owner=proxies[stream_name]),
                    )
                tct_busy.setdefault(link_key, []).extend(pieces)
                continue
            for start, end in pieces:
                port.add_window(
                    stream.priority, GateWindow(start, end, owner=stream_name)
                )
            tct_busy.setdefault(link_key, []).extend(pieces)
            if not stream.share:
                nonshared_busy.setdefault(link_key, []).extend(pieces)
            elif mode == "etsn-strict":
                # Shared TCT windows double as EP windows (slot sharing).
                ect_windows.setdefault(link_key, []).extend(pieces)

    # Ports on the paths of ECT streams but without any scheduled DET
    # stream still need EP/BE programs.
    for ect in schedule.ect_streams:
        for link in ect.route(schedule.topology):
            port_for(link.key)

    for link_key, port in ports.items():
        busy = tct_busy.get(link_key, [])
        if mode == "etsn":
            ep_open = complement_intervals(nonshared_busy.get(link_key, []), cycle)
        elif mode == "etsn-strict":
            ep_open = merge_intervals(ect_windows.get(link_key, []))
        elif mode == "avb":
            ep_open = complement_intervals(busy, cycle)
        else:  # period: EP windows were added per proxy slot above
            ep_open = []
        for start, end in ep_open:
            port.add_window(Priorities.EP, GateWindow(start, end, owner=None))
        for start, end in complement_intervals(busy, cycle):
            port.add_window(Priorities.BE, GateWindow(start, end, owner=None))
        port.finalize()

    return NetworkGcl(mode=mode, cycle_ns=cycle, ports=ports)
