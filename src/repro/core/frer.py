"""802.1CB-style seamless redundancy for ECT (FRER).

The paper's introduction motivates ECT with safety commands whose loss is
unacceptable, and its related work points at Frame Replication and
Elimination for Reliability [802.1CB] for "extra reliability".  This
module composes that standard with E-TSN:

* :func:`plan_frer` splits one ECT stream into *member* streams pinned to
  link-disjoint paths (the talker must be dual-homed for true
  end-to-end disjointness);
* :func:`schedule_etsn_frer` schedules every member like an ordinary ECT
  stream (each gets its own probabilistic possibilities and prudent
  reservations along its path) and records the member→logical mapping in
  the schedule;
* at run time the simulator fires the *same* events into every member
  and the listener-side recorder eliminates duplicate copies per frame
  (its R-TAG sequence-recovery function), so a single link or path
  failure loses nothing and the measured latency is that of the fastest
  surviving copy.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.core.baselines import schedule_etsn
from repro.core.schedule import NetworkSchedule
from repro.model.routing import disjoint_paths
from repro.model.stream import EctStream, Stream, StreamError
from repro.model.topology import Topology


def plan_frer(
    topology: Topology, ect: EctStream, num_paths: int = 2
) -> List[EctStream]:
    """Split ``ect`` into members over link-disjoint paths.

    Raises :class:`StreamError` when the topology cannot supply
    ``num_paths`` disjoint routes (e.g. a single-homed talker).
    """
    if num_paths < 2:
        raise ValueError("redundancy needs at least two paths")
    paths = disjoint_paths(topology, ect.source, ect.destination, num_paths)
    if len(paths) < num_paths:
        raise StreamError(
            f"{ect.name}: only {len(paths)} disjoint path(s) from "
            f"{ect.source!r} to {ect.destination!r}; redundancy needs "
            f"{num_paths} (is the talker dual-homed?)"
        )
    members = []
    for index, path in enumerate(paths, start=1):
        via = (path[0].src,) + tuple(link.dst for link in path)
        members.append(dataclasses.replace(
            ect, name=f"{ect.name}@{index}", via=via,
        ))
    return members


def schedule_etsn_frer(
    topology: Topology,
    tct_streams: Sequence[Stream],
    redundant_ects: Sequence[EctStream],
    plain_ects: Sequence[EctStream] = (),
    num_paths: int = 2,
    **scheduler_kwargs,
) -> NetworkSchedule:
    """Joint E-TSN schedule with FRER members for ``redundant_ects``.

    The returned schedule carries ``meta['frer_members']`` mapping each
    member stream name to its logical ECT name; the simulator uses it to
    replay identical events into every member, and per-stream statistics
    appear under the logical name.
    """
    members: List[EctStream] = []
    mapping: Dict[str, str] = {}
    for ect in redundant_ects:
        for member in plan_frer(topology, ect, num_paths):
            members.append(member)
            mapping[member.name] = ect.name
    schedule = schedule_etsn(
        topology, tct_streams, list(plain_ects) + members, **scheduler_kwargs
    )
    schedule.meta["frer_members"] = mapping
    return schedule


def frer_guarantee_ns(schedule: NetworkSchedule, logical_name: str) -> int:
    """Formal bound for a redundant stream: all members individually
    guarantee delivery, so the logical bound is the *best* member bound
    when all paths are healthy and the worst member bound under any
    single-path failure."""
    mapping = schedule.meta.get("frer_members", {})
    members = [m for m, logical in mapping.items() if logical == logical_name]
    if not members:
        raise KeyError(f"no FRER members for {logical_name!r}")
    return max(schedule.ect_guarantee_ns(member) for member in members)
