"""Schedule result model and the independent constraint validator.

Every scheduler backend in this library — the SMT scheduler, the
incremental-backtracking heuristic, and the PERIOD/AVB baselines —
produces a :class:`NetworkSchedule`.  :func:`validate` re-checks the
semantics of paper Eqs. 1-7 directly on the slot table, so a bug in any
backend is caught before a schedule reaches GCL synthesis or simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.model.frame import FrameSlot
from repro.model.stream import EctStream, Stream, StreamType, may_overlap
from repro.model.topology import Topology
from repro.model.units import format_ns, hyperperiod


class ScheduleError(ValueError):
    """Raised when a schedule violates the E-TSN constraint semantics."""


class InfeasibleError(RuntimeError):
    """Raised when a scheduler backend cannot satisfy the requirements."""


class CertifiedInfeasibleError(InfeasibleError):
    """Infeasibility whose UNSAT proof passed independent checking.

    Raised instead of the plain :class:`InfeasibleError` when the SMT
    backend ran with proof logging: the attached certificate was
    replayed by :mod:`repro.check.proof` before this exception left the
    scheduler, so the rejection is machine-checked, not just asserted.
    """

    def __init__(self, message: str, certificate=None, proof_steps: int = 0):
        super().__init__(message)
        self.certificate = certificate
        self.proof_steps = proof_steps


@dataclass
class NetworkSchedule:
    """A complete joint schedule for one TSN network.

    slots
        ``(stream name, link key) -> ordered frame slots`` with concrete
        offsets; extras from prudent reservation included.
    streams
        All scheduled streams (TCT and probabilistic possibilities).
    ect_streams
        The original ECT specifications, kept for the simulator's event
        sources and for GCL synthesis.
    """

    topology: Topology
    streams: List[Stream]
    slots: Dict[Tuple[str, Tuple[str, str]], List[FrameSlot]]
    ect_streams: List[EctStream] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def stream(self, name: str) -> Stream:
        for s in self.streams:
            if s.name == name:
                return s
        raise KeyError(f"no stream named {name!r} in this schedule")

    def stream_slots(self, stream_name: str, link_key: Tuple[str, str]) -> List[FrameSlot]:
        return self.slots[(stream_name, link_key)]

    def link_slots(self, link_key: Tuple[str, str]) -> List[FrameSlot]:
        """All slots on one directed link, sorted by offset."""
        result: List[FrameSlot] = []
        for (_, key), frames in self.slots.items():
            if key == link_key:
                result.extend(frames)
        return sorted(result, key=lambda f: (f.offset_ns, f.stream, f.index))

    @property
    def hyperperiod_ns(self) -> int:
        """LCM of all scheduled periods (the GCL cycle).

        A schedule with no time-triggered slots at all (e.g. the AVB
        baseline with only event traffic) falls back to the ECT streams'
        minimum inter-event times so GCL synthesis still has a cycle.
        """
        if self.streams:
            return hyperperiod(s.period_ns for s in self.streams)
        if self.ect_streams:
            return hyperperiod(e.min_interevent_ns for e in self.ect_streams)
        raise ValueError("schedule is empty: no streams and no ECT")

    def tct_streams(self) -> List[Stream]:
        return [s for s in self.streams if s.type == StreamType.DET]

    def probabilistic_streams(self) -> List[Stream]:
        return [s for s in self.streams if s.type == StreamType.PROB]

    def scheduled_latency_ns(self, stream_name: str) -> int:
        """Worst-case end-to-end latency implied by the slot table.

        For TCT: last-frame reception minus first-frame sending.  For a
        probabilistic stream: last-frame reception minus the occurrence
        time (paper Eq. 4's two branches).
        """
        stream = self.stream(stream_name)
        first_link = stream.path[0]
        last_link = stream.path[-1]
        first = self.slots[(stream_name, first_link.key)][0]
        last_frames = self.slots[(stream_name, last_link.key)]
        last = last_frames[-1]
        finish = last.end_ns + last_link.propagation_ns
        if stream.type == StreamType.PROB:
            return finish - stream.occurrence_ns
        return finish - first.offset_ns

    def ect_guarantee_ns(self, ect_name: str) -> int:
        """Formal worst-case delivery bound for one ECT stream's events.

        Two terms:

        1. quantization delay — an event at time ``t`` is carried by the
           next possibility, at most ``T/N`` later (paper Sec. III-B);
        2. the worst possibility's scheduled slot chain (Eqs. 2/4/7).

        Non-preemption blocking — a term the paper's formalization
        omits — is absorbed at scheduling time: every probabilistic slot
        is padded by one MTU wire time (see
        :func:`repro.model.frame.build_frame_vars`), because a reserved
        EP slot may *overlap* a shared TCT slot (the superposition
        design) whose frame is already mid-transmission when the event's
        frame arrives.  Without the pad, one blocked hop cascades into
        missing the next hop's reserved window — up to a full
        quantization step of extra delay.

        The bound holds for any occurrence time and is realized by the
        ``etsn-strict`` GCL (best-effort frames are also covered: they
        are at most one MTU).  The default ``etsn`` GCL is empirically
        far faster at run time.
        """
        possibilities = [
            s for s in self.streams
            if s.type == StreamType.PROB and s.parent == ect_name
        ]
        if not possibilities:
            raise KeyError(f"no probabilistic streams for ECT {ect_name!r}")
        step_ns = possibilities[0].period_ns // len(possibilities)
        worst = max(
            self.scheduled_latency_ns(ps.name) for ps in possibilities
        )
        return step_ns + worst

    def describe(self) -> str:
        """Per-link text table of the schedule (paper Fig. 4/6 style)."""
        lines = [
            f"NetworkSchedule: {len(self.streams)} streams, "
            f"hyperperiod {format_ns(self.hyperperiod_ns)}"
        ]
        by_link: Dict[Tuple[str, str], List[FrameSlot]] = {}
        for (_, key), frames in self.slots.items():
            by_link.setdefault(key, []).extend(frames)
        for key in sorted(by_link):
            lines.append(f"  link <{key[0]},{key[1]}>")
            for slot in sorted(by_link[key], key=lambda f: (f.offset_ns, f.stream)):
                tag = " extra" if slot.extra else ""
                lines.append(
                    f"    [{format_ns(slot.offset_ns):>10} +{format_ns(slot.duration_ns)}] "
                    f"{slot.stream}[{slot.index}] /T={format_ns(slot.period_ns)}{tag}"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# periodic-interval arithmetic
# ----------------------------------------------------------------------
def periodic_overlap(
    offset_a: int, len_a: int, period_a: int,
    offset_b: int, len_b: int, period_b: int,
) -> bool:
    """Do ``[offset_a + x*period_a, +len_a)`` and the b-pattern intersect?

    Classic CRT argument: the achievable differences ``offset_b - offset_a
    + y*period_b - x*period_a`` form the residue class of
    ``offset_b - offset_a`` modulo ``g = gcd(period_a, period_b)``; the
    patterns overlap iff some member of that class lies in
    ``(-len_b, len_a)``.
    """
    g = math.gcd(period_a, period_b)
    r = (offset_b - offset_a) % g
    return r < len_a or r > g - len_b


def earliest_gap_shift(
    offset_a: int, len_a: int, period_a: int,
    offset_b: int, len_b: int, period_b: int,
) -> int:
    """Smallest ``delta >= 0`` so that shifting pattern *a* later by
    ``delta`` removes the overlap with pattern *b*.

    Returns 0 when there is no overlap.  Raises :class:`ScheduleError`
    when no shift can ever separate them (``len_a + len_b > gcd``).
    """
    g = math.gcd(period_a, period_b)
    if len_a + len_b > g:
        raise ScheduleError(
            f"patterns of lengths {len_a}+{len_b} can never avoid each other "
            f"under gcd period {g}"
        )
    r = (offset_b - offset_a) % g
    if len_a <= r <= g - len_b:
        return 0
    # Shifting a later by delta turns r into (r - delta) mod g; aim for
    # the start of the free band, r' = g - len_b.
    return (r + len_b) % g


# ----------------------------------------------------------------------
# validation of Eqs. 1-7
# ----------------------------------------------------------------------
def validate(schedule: NetworkSchedule) -> None:
    """Re-check every constraint class on a finished schedule.

    Raises :class:`ScheduleError` with a precise message on the first
    violation.  This validator is intentionally independent of all solver
    code paths: it recomputes the semantics from the slot table alone.
    """
    _validate_completeness(schedule)
    _validate_time_constraints(schedule)
    _validate_sequencing(schedule)
    _validate_e2e(schedule)
    _validate_overlap(schedule)
    _validate_adjacent_links(schedule)
    _validate_alignment(schedule)


def validate_delta(schedule: NetworkSchedule, changed_names) -> None:
    """Validate only the constraints that involve the changed streams.

    Sound shortcut for incremental edits: when ``schedule`` was derived
    from a fully validated schedule by adding/re-placing exactly the
    streams in ``changed_names`` (all other slots untouched), every
    constraint class is either per-stream (windows, sequencing, e2e,
    adjacency, alignment, completeness — unaffected streams still hold
    by assumption) or pairwise on a link (overlap — pairs of unchanged
    streams still hold by assumption).  Checking the changed streams
    per-stream plus changed-vs-all overlap therefore decides exactly
    what :func:`validate` would, at a cost proportional to the edit
    instead of the whole schedule.
    """
    changed = set(changed_names)
    streams = [s for s in schedule.streams if s.name in changed]
    missing = changed - {s.name for s in streams}
    if missing:
        raise ScheduleError(
            f"validate_delta: changed streams {sorted(missing)} are not "
            f"in the schedule"
        )
    _validate_completeness(schedule, streams)
    _validate_time_constraints(schedule, streams)
    _validate_sequencing(schedule, streams)
    _validate_e2e(schedule, streams)
    _validate_overlap_delta(schedule, changed)
    _validate_adjacent_links(schedule, streams)
    _validate_alignment(schedule, streams)


def _validate_overlap_delta(schedule: NetworkSchedule, changed) -> None:
    """Eq. 5 restricted to pairs with at least one changed stream."""
    streams = {s.name: s for s in schedule.streams}
    links_of_changed = set()
    for name in changed:
        for link in streams[name].path:
            links_of_changed.add(link.key)
    for key in links_of_changed:
        frames = schedule.link_slots(key)
        for i in range(len(frames)):
            for j in range(i + 1, len(frames)):
                a, b = frames[i], frames[j]
                if a.stream not in changed and b.stream not in changed:
                    continue
                sa, sb = streams[a.stream], streams[b.stream]
                if sa.name == sb.name:
                    continue  # covered by sequencing + window checks
                if may_overlap(sa, sb):
                    continue
                if periodic_overlap(
                    a.offset_ns, a.duration_ns, a.period_ns,
                    b.offset_ns, b.duration_ns, b.period_ns,
                ):
                    raise ScheduleError(
                        f"link <{key[0]},{key[1]}>: {a.stream}[{a.index}] and "
                        f"{b.stream}[{b.index}] overlap but are not allowed to"
                    )


def _validate_completeness(schedule: NetworkSchedule, streams=None) -> None:
    for stream in schedule.streams if streams is None else streams:
        for link in stream.path:
            key = (stream.name, link.key)
            if key not in schedule.slots or not schedule.slots[key]:
                raise ScheduleError(f"{stream.name}: no slots on link {link}")
            base = stream.frames_per_period()
            if len(schedule.slots[key]) < base:
                raise ScheduleError(
                    f"{stream.name} on {link}: {len(schedule.slots[key])} slots "
                    f"but the message needs {base} frames"
                )


def _validate_time_constraints(schedule: NetworkSchedule, streams=None) -> None:
    """Paper Eq. 1 (window) and Eq. 2 (occurrence time)."""
    for stream in schedule.streams if streams is None else streams:
        # A probabilistic possibility with a late occurrence time may
        # spill into the next cycle (paper Fig. 6); its window widens to
        # ot + T.  The slot still repeats every T, modulo the cycle.
        slack = stream.occurrence_ns if stream.type == StreamType.PROB else 0
        for link in stream.path:
            for slot in schedule.slots[(stream.name, link.key)]:
                if slot.offset_ns < 0:
                    raise ScheduleError(f"{slot.stream}[{slot.index}]: negative offset")
                if slot.end_ns > slot.period_ns + slack:
                    raise ScheduleError(
                        f"{slot.stream}[{slot.index}] on {link}: slot "
                        f"[{slot.offset_ns},{slot.end_ns}) leaves window "
                        f"{slot.period_ns + slack}"
                    )
        if stream.type == StreamType.PROB:
            first = schedule.slots[(stream.name, stream.path[0].key)][0]
            if first.offset_ns < stream.occurrence_ns:
                raise ScheduleError(
                    f"{stream.name}: first slot at {first.offset_ns} precedes "
                    f"occurrence time {stream.occurrence_ns} (Eq. 2)"
                )


def _validate_sequencing(schedule: NetworkSchedule, streams=None) -> None:
    """Paper Eq. 3: frames of one stream leave a link in order."""
    for stream in schedule.streams if streams is None else streams:
        for link in stream.path:
            frames = schedule.slots[(stream.name, link.key)]
            for a, b in zip(frames, frames[1:]):
                if a.end_ns > b.offset_ns:
                    raise ScheduleError(
                        f"{stream.name} on {link}: frame {a.index} ends at "
                        f"{a.end_ns} after frame {b.index} starts at {b.offset_ns}"
                    )


def _validate_e2e(schedule: NetworkSchedule, streams=None) -> None:
    """Paper Eq. 4, tightened to count the last frame's wire time and
    propagation (reception-based latency, matching Sec. VI-A3)."""
    for stream in schedule.streams if streams is None else streams:
        latency = schedule.scheduled_latency_ns(stream.name)
        if latency > stream.e2e_ns:
            raise ScheduleError(
                f"{stream.name}: scheduled worst-case latency "
                f"{format_ns(latency)} exceeds budget {format_ns(stream.e2e_ns)}"
            )


def _validate_overlap(schedule: NetworkSchedule) -> None:
    """Paper Eq. 5 with the two E-TSN overlap exemptions."""
    streams = {s.name: s for s in schedule.streams}
    by_link: Dict[Tuple[str, str], List[FrameSlot]] = {}
    for (_, key), frames in schedule.slots.items():
        by_link.setdefault(key, []).extend(frames)
    for key, frames in by_link.items():
        for i in range(len(frames)):
            for j in range(i + 1, len(frames)):
                a, b = frames[i], frames[j]
                sa, sb = streams[a.stream], streams[b.stream]
                if sa.name == sb.name:
                    continue  # covered by sequencing + window checks
                if may_overlap(sa, sb):
                    continue
                if periodic_overlap(
                    a.offset_ns, a.duration_ns, a.period_ns,
                    b.offset_ns, b.duration_ns, b.period_ns,
                ):
                    raise ScheduleError(
                        f"link <{key[0]},{key[1]}>: {a.stream}[{a.index}] and "
                        f"{b.stream}[{b.index}] overlap but are not allowed to"
                    )


def _validate_adjacent_links(schedule: NetworkSchedule, streams=None) -> None:
    """Paper Eq. 7 with the prudent-reservation offset ``o``."""
    for stream in schedule.streams if streams is None else streams:
        for up, down in zip(stream.path, stream.path[1:]):
            up_frames = schedule.slots[(stream.name, up.key)]
            down_frames = schedule.slots[(stream.name, down.key)]
            o = max(len(up_frames) - len(down_frames), 0)
            for j, down_frame in enumerate(down_frames):
                # Surplus downstream slots (downstream-only sharing) pair
                # with the last upstream frame.
                partner = min(j + o, len(up_frames) - 1)
                up_frame = up_frames[partner]
                earliest = up_frame.end_ns + up.propagation_ns
                if down_frame.offset_ns < earliest:
                    raise ScheduleError(
                        f"{stream.name}: frame {j} on {down} starts at "
                        f"{down_frame.offset_ns} before upstream frame "
                        f"{partner} is fully received at {earliest} (Eq. 7)"
                    )


def _validate_alignment(schedule: NetworkSchedule, streams=None) -> None:
    """Every slot boundary must be drivable by its link's gate."""
    for stream in schedule.streams if streams is None else streams:
        for link in stream.path:
            for slot in schedule.slots[(stream.name, link.key)]:
                if slot.offset_ns % link.time_unit_ns != 0:
                    raise ScheduleError(
                        f"{slot.stream}[{slot.index}] on {link}: offset "
                        f"{slot.offset_ns} not aligned to tu {link.time_unit_ns}"
                    )
