"""Incremental earliest-fit scheduler with restart-based backtracking.

The SMT backend is the faithful formalization, but its Eq. 5 clause count
grows with (streams x frames x hyperperiod repetitions)^2, which is heavy
for the 40-stream simulation topology.  The paper notes (Sec. VII-C) that
incremental backtracking in the style of Steiner [18] applies directly to
its formulation; this module is that scheduler.

The semantics are identical to the SMT formulation — both backends feed
the same independent validator — only the search differs:

* streams are placed one at a time, tightest first;
* each frame takes the earliest offset that respects the window (Eq. 1),
  occurrence time (Eq. 2), same-link ordering (Eq. 3), adjacency (Eq. 7),
  and non-overlap against everything already placed (Eq. 5, with the
  E-TSN exemptions);
* an end-to-end violation (Eq. 4) pushes the stream's release later and
  retries; a placement failure promotes the stream to the front of the
  order and restarts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.constraints import build_frames, window_max_ns
from repro.core.probabilistic import expand_ect
from repro.core.reservation import prudent_reservation
from repro.core.schedule import (
    InfeasibleError,
    NetworkSchedule,
    ScheduleError,
    earliest_gap_shift,
    validate,
)
from repro.model.frame import FrameSlot, FrameVar
from repro.model.stream import EctStream, Priorities, Stream, StreamType, may_overlap
from repro.model.topology import Topology
from repro.model.units import ceil_to_multiple


class _PlacementFailure(Exception):
    """A stream cannot be placed against the current occupancy."""

    def __init__(self, stream: str, detail: str) -> None:
        super().__init__(f"{stream}: {detail}")
        self.stream = stream


class _Occupancy:
    """Placed slots per link, for conflict queries during the search."""

    def __init__(self, streams_by_name: Dict[str, Stream]) -> None:
        self._streams = streams_by_name
        self._by_link: Dict[Tuple[str, str], List[FrameSlot]] = {}
        # may_overlap() is pure in the stream pair; the fit loop asks the
        # same pairs thousands of times, so memoize by name pair
        self._exempt: Dict[Tuple[str, str], bool] = {}

    def add(self, slot: FrameSlot) -> None:
        self._by_link.setdefault(slot.link, []).append(slot)

    def remove_stream(self, stream_name: str) -> None:
        for slots in self._by_link.values():
            slots[:] = [s for s in slots if s.stream != stream_name]

    def earliest_fit(
        self, stream: Stream, frame: FrameVar, lower_bound_ns: int, tu_ns: int
    ) -> int:
        """Earliest conflict-free offset >= lower bound, or raise."""
        window_max = window_max_ns(stream, frame)
        phi = ceil_to_multiple(max(lower_bound_ns, 0), tu_ns)
        if phi > window_max:
            raise _PlacementFailure(
                stream.name,
                f"frame {frame.index} lower bound {lower_bound_ns} beyond "
                f"window max {window_max} on {frame.link}",
            )
        others = self._by_link.get(frame.link, ())
        # Each pass either accepts phi or pushes it strictly later; the
        # bound is generous because clearing one pattern can re-enter
        # another's forbidden residue a few times before escaping.
        guard = max(1024, 32 * (len(others) + 2))
        exempt = self._exempt
        for _ in range(guard):
            shifted = False
            for slot in others:
                pair = (stream.name, slot.stream)
                exempted = exempt.get(pair)
                if exempted is None:
                    exempted = may_overlap(stream, self._streams[slot.stream])
                    exempt[pair] = exempted
                if exempted:
                    continue
                try:
                    shift = earliest_gap_shift(
                        phi, frame.duration_ns, frame.period_ns,
                        slot.offset_ns, slot.duration_ns, slot.period_ns,
                    )
                except ScheduleError as exc:
                    raise _PlacementFailure(stream.name, str(exc)) from exc
                if shift:
                    phi += shift
                    if phi > window_max:
                        raise _PlacementFailure(
                            stream.name,
                            f"frame {frame.index} pushed past window max "
                            f"{window_max} on {frame.link}",
                        )
                    shifted = True
                    break
            if not shifted:
                return phi
        raise _PlacementFailure(
            stream.name, f"no fixpoint for frame {frame.index} on {frame.link}"
        )


def _try_place(
    stream: Stream,
    frames: Dict[Tuple[str, Tuple[str, str]], List[FrameVar]],
    occupancy: _Occupancy,
    release_ns: int,
) -> List[FrameSlot]:
    """Place all frames of one stream, earliest-fit, first frame >= release."""
    placed: List[FrameSlot] = []
    prev_slots: Optional[List[FrameSlot]] = None
    prev_link = None
    for link in stream.path:
        frame_vars = frames[(stream.name, link.key)]
        link_slots: List[FrameSlot] = []
        sequencing_lb = 0
        for j, fv in enumerate(frame_vars):
            lb = sequencing_lb
            if prev_slots is None:
                if j == 0:
                    lb = max(lb, release_ns)
            else:
                o = max(len(prev_slots) - len(frame_vars), 0)
                partner = prev_slots[min(j + o, len(prev_slots) - 1)]
                lb = max(lb, partner.end_ns + prev_link.propagation_ns)
            phi = occupancy.earliest_fit(stream, fv, lb, link.time_unit_ns)
            slot = fv.scheduled(phi)
            link_slots.append(slot)
            sequencing_lb = slot.end_ns
        placed.extend(link_slots)
        prev_slots = link_slots
        prev_link = link
    return placed


def _place_stream(
    stream: Stream,
    frames: Dict[Tuple[str, Tuple[str, str]], List[FrameVar]],
    occupancy: _Occupancy,
) -> List[FrameSlot]:
    """Place one stream, iterating the release time until Eq. 4 holds."""
    last_link = stream.path[-1]
    if stream.type == StreamType.PROB:
        release = stream.occurrence_ns
    else:
        release = 0
    tu = stream.path[0].time_unit_ns
    while True:
        slots = _try_place(stream, frames, occupancy, release)
        last = [s for s in slots if s.link == last_link.key][-1]
        finish = last.end_ns + last_link.propagation_ns
        start_ref = (
            stream.occurrence_ns
            if stream.type == StreamType.PROB
            else [s for s in slots if s.link == stream.path[0].key][0].offset_ns
        )
        if finish - start_ref <= stream.e2e_ns:
            return slots
        if stream.type == StreamType.PROB:
            raise _PlacementFailure(
                stream.name,
                f"latency {finish - start_ref} exceeds budget {stream.e2e_ns} "
                f"and the occurrence time is fixed",
            )
        # Delaying the release shrinks (finish - first.φ); iterate.
        release = max(finish - stream.e2e_ns, release + tu)


def _placement_order(streams: Sequence[Stream]) -> List[Stream]:
    """Tightest-first: short periods, then small latency budgets.

    Probabilistic possibilities go last — the overlap exemptions make
    them cheap to fit around an existing TCT schedule — ordered by parent
    and occurrence time so superposition slots coalesce naturally.
    """
    tct = [s for s in streams if s.type == StreamType.DET]
    prob = [s for s in streams if s.type == StreamType.PROB]
    tct.sort(key=lambda s: (s.period_ns, s.e2e_ns, s.name))
    prob.sort(key=lambda s: (s.parent or "", s.occurrence_ns, s.name))
    return tct + prob


def schedule_heuristic(
    topology: Topology,
    tct_streams: Sequence[Stream],
    ect_streams: Sequence[EctStream] = (),
    validate_result: bool = True,
    max_restarts: Optional[int] = None,
    guard_margin_ns: int = 0,
    reservation_mode: str = "paper",
) -> NetworkSchedule:
    """Compute a joint E-TSN schedule with the incremental backend.

    Raises :class:`InfeasibleError` after the restart budget is spent.
    """
    streams: List[Stream] = list(tct_streams)
    ects = list(ect_streams)
    for ect in ects:
        streams.extend(expand_ect(ect, topology))
    for stream in streams:
        Priorities.check(stream)

    plan = prudent_reservation(streams, mode=reservation_mode)
    frames = build_frames(streams, plan, guard_margin_ns)
    streams_by_name = {s.name: s for s in streams}
    order = _placement_order(streams)
    if max_restarts is None:
        max_restarts = 2 * len(streams) + 4

    last_failure = ""
    for _ in range(max_restarts + 1):
        occupancy = _Occupancy(streams_by_name)
        slots: Dict[Tuple[str, Tuple[str, str]], List[FrameSlot]] = {}
        failed: Optional[str] = None
        for stream in order:
            try:
                placed = _place_stream(stream, frames, occupancy)
            except _PlacementFailure as exc:
                failed = stream.name
                last_failure = str(exc)
                break
            for slot in placed:
                occupancy.add(slot)
                slots.setdefault((slot.stream, slot.link), []).append(slot)
        if failed is None:
            for frame_list in slots.values():
                frame_list.sort(key=lambda s: s.index)
            schedule = NetworkSchedule(
                topology=topology,
                streams=streams,
                slots=slots,
                ect_streams=ects,
                meta={
                    "backend": "heuristic",
                    "extra_slots": sum(plan.extras.values()),
                },
            )
            if validate_result:
                validate(schedule)
            return schedule
        # Promote the failed stream to the front and retry, unless it
        # already led the order (then more restarts cannot help).
        if order[0].name == failed:
            break
        order.sort(key=lambda s: s.name != failed)
    raise InfeasibleError(
        f"heuristic scheduler: could not place all {len(streams)} streams "
        f"after {max_restarts} restarts (last failure: {last_failure})"
    )
