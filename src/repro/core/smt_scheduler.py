"""The SMT-backed joint scheduler — the paper's primary formalization.

Pipeline (paper Fig. 5, inside the CNC):

1. expand every ECT stream into probabilistic possibilities
   (:mod:`repro.core.probabilistic`),
2. run prudent reservation to fix per-link frame counts
   (:mod:`repro.core.reservation`),
3. generate the Eq. 1-7 formula (:mod:`repro.core.constraints`),
4. solve with the DPLL(T) difference-logic solver (:mod:`repro.smt`),
5. extract the slot table and re-validate it independently
   (:mod:`repro.core.schedule`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.check.proof import verify_certificate
from repro.core.constraints import build_constraints
from repro.core.probabilistic import expand_ect
from repro.core.reservation import prudent_reservation
from repro.core.schedule import (
    CertifiedInfeasibleError,
    InfeasibleError,
    NetworkSchedule,
    validate,
)
from repro.model.frame import FrameSlot
from repro.model.stream import EctStream, Stream
from repro.model.topology import Topology
from repro.smt.warmstart import WarmStartState


def schedule_smt(
    topology: Topology,
    tct_streams: Sequence[Stream],
    ect_streams: Sequence[EctStream] = (),
    validate_result: bool = True,
    guard_margin_ns: int = 0,
    reservation_mode: str = "paper",
    proof: bool = False,
    warm_start: Optional[WarmStartState] = None,
    warm_state_sink: Optional[Callable[[WarmStartState], None]] = None,
) -> NetworkSchedule:
    """Compute a joint E-TSN schedule with the SMT backend.

    Raises :class:`InfeasibleError` when the constraint system is
    unsatisfiable (the stream set cannot be scheduled on this network).

    ``proof=True`` makes every verdict machine-checked: the solver logs
    a certificate, and before this function returns (or raises) the
    independent checker in :mod:`repro.check` replays it — an UNSAT
    proof by reverse unit propagation with negative-cycle witnesses, a
    SAT model by evaluating every input constraint.  Infeasibility then
    surfaces as :class:`CertifiedInfeasibleError`, and the schedule's
    ``meta["certificate"]`` records the verification.  A certificate
    that fails to check raises
    :class:`~repro.check.proof.CertificateError` — that is a solver
    bug, not an admission verdict.

    ``warm_start`` seeds the solver with formula-independent state from
    a previous solve on the same snapshot (theory lemmas, branching
    heuristics, potentials; no-op under ``proof=True``);
    ``warm_state_sink`` receives this solve's exported state — on SAT
    *and* UNSAT — so the caller can cache it for the next solve.
    """
    streams: List[Stream] = list(tct_streams)
    ects = list(ect_streams)
    for ect in ects:
        streams.extend(expand_ect(ect, topology))

    plan = prudent_reservation(streams, mode=reservation_mode)
    system = build_constraints(
        topology, streams, plan, guard_margin_ns, proof=proof,
        warm_start=warm_start,
    )
    result = system.solver.check()
    if warm_state_sink is not None:
        warm_state_sink(system.solver.export_warm_state())
    if not result.sat:
        message = (
            f"SMT scheduler: no schedule exists for {len(streams)} streams "
            f"({result.stats['clauses']} clauses, "
            f"{result.stats['conflicts']} conflicts explored)"
        )
        if proof:
            steps = verify_certificate(result.certificate)
            raise CertifiedInfeasibleError(
                f"{message} [UNSAT proof checked: {steps} steps]",
                certificate=result.certificate,
                proof_steps=steps,
            )
        raise InfeasibleError(message)

    model = result.model
    slots: Dict[Tuple[str, Tuple[str, str]], List[FrameSlot]] = {}
    for key, frame_vars in system.frames.items():
        slots[key] = [fv.scheduled(model[fv.var_name]) for fv in frame_vars]

    meta = {
        "backend": "smt",
        "solver_stats": result.stats,
        "extra_slots": sum(plan.extras.values()),
    }
    if proof:
        checked = verify_certificate(result.certificate)
        meta["certificate"] = {
            "status": "sat",
            "verified": True,
            "clauses_checked": checked,
        }
    schedule = NetworkSchedule(
        topology=topology,
        streams=streams,
        slots=slots,
        ect_streams=ects,
        meta=meta,
    )
    if validate_result:
        validate(schedule)
    return schedule
