"""Online admission-control runtime around the E-TSN CNC.

The paper names *online scheduling* as the key step toward deployable
E-TSN (Sec. VII-C); this package is that step as a subsystem: a
versioned :class:`ScheduleStore` for non-blocking readers, an
:class:`AdmissionService` that batches admit/remove requests and climbs
a solver fallback ladder, structured :class:`Decision` verdicts, and an
embedded :class:`MetricsRegistry` exportable as JSON.
"""

from repro.service.admission import (
    RUNG_FASTPATH,
    RUNG_FULL,
    RUNG_HEURISTIC,
    RUNG_INCREMENTAL,
    AdmissionService,
    RungConfig,
    RungTimeout,
    ServiceConfig,
    empty_schedule,
)
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.requests import (
    AdmissionRequest,
    AdmitEct,
    AdmitTct,
    Decision,
    Remove,
    request_from_dict,
    request_to_dict,
)
from repro.service.shape import canonical_shape, shape_digest
from repro.service.store import ScheduleStore, StaleVersionError, StoreSnapshot

__all__ = [
    "AdmissionRequest",
    "AdmissionService",
    "AdmitEct",
    "AdmitTct",
    "Counter",
    "Decision",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RUNG_FASTPATH",
    "RUNG_FULL",
    "RUNG_HEURISTIC",
    "RUNG_INCREMENTAL",
    "Remove",
    "RungConfig",
    "RungTimeout",
    "ScheduleStore",
    "ServiceConfig",
    "StaleVersionError",
    "StoreSnapshot",
    "canonical_shape",
    "empty_schedule",
    "request_from_dict",
    "request_to_dict",
    "shape_digest",
]
