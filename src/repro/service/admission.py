"""The online admission-control runtime (paper Sec. VII-C, made a service).

:class:`AdmissionService` turns the single-operation primitives of
:mod:`repro.core.incremental` into a sustained request-serving runtime:

* requests (admit TCT / admit ECT / remove) are **batched** when their
  stream sets are disjoint, so one validation pass amortizes over the
  whole batch;
* every solve climbs a **fallback ladder** — incremental earliest-fit
  around the frozen schedule first, then a full :func:`schedule_etsn`
  re-solve, then a restart-boosted :func:`schedule_heuristic` — each
  rung with its own wall-clock timeout and bounded retry/backoff;
* an infeasible request is a **structured rejection**
  (:class:`~repro.service.requests.Decision`), never an exception
  escaping the service;
* accepted batches publish a new snapshot to the
  :class:`~repro.service.store.ScheduleStore` (readers keep their old
  version) and optionally emit an 802.1Qcc
  :class:`~repro.cnc.qcc.Deployment`;
* counters and latency histograms for every step live in an embedded
  :class:`~repro.service.metrics.MetricsRegistry`;
* with a :class:`~repro.obs.trace.Tracer` attached, every batch opens a
  span, every request inside it gets a child span stamped with its
  outcome, and every ladder rung attempt records a ``admission.rung``
  span wrapping the actual ``solve`` — the request → rung → solve
  chain ``repro trace summarize`` aggregates.  SMT solves additionally
  fold their :class:`~repro.smt.sat.SolverStats` into ``solver.*``
  counters.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.check.proof import CertificateError
from repro.check.sanitizer import make_lock
from repro.cnc.qcc import Deployment, deployment_from_schedule
from repro.core.baselines import schedule_etsn
from repro.core.heuristic import schedule_heuristic
from repro.core.incremental import add_ect_stream, add_tct_stream, remove_stream
from repro.core.schedule import (
    CertifiedInfeasibleError,
    InfeasibleError,
    NetworkSchedule,
    ScheduleError,
    validate,
)
from repro.model.stream import EctStream, Stream, StreamError, StreamType
from repro.obs.events import NULL_EVENT_LOG, EventLog
from repro.obs.trace import NULL_TRACER, Tracer
from repro.service import fastpath as fastpath_module
from repro.service.fastpath import RUNG_FASTPATH, FastPathResult
from repro.service.metrics import MetricsRegistry
from repro.service.requests import (
    AdmissionRequest,
    AdmitEct,
    AdmitTct,
    Decision,
    Remove,
)
from repro.service.store import ScheduleStore, StaleVersionError
from repro.smt.warmstart import WarmStartCache

#: Ladder rung names, in climb order (``RUNG_FASTPATH`` sits below the
#: ladder and is re-exported from :mod:`repro.service.fastpath`).
RUNG_INCREMENTAL = "incremental"
RUNG_FULL = "full"
RUNG_HEURISTIC = "heuristic"

#: How often a batch may rebase onto a fresh snapshot after losing the
#: publish CAS race to another writer sharing the store, before it is
#: rejected with reason ``"cas_exhausted"``.
MAX_REBASE_ATTEMPTS = 8

#: Rejection reason after the rebase budget is spent.
REASON_CAS_EXHAUSTED = "cas_exhausted"


class RungTimeout(RuntimeError):
    """One ladder rung exceeded its wall-clock budget."""


@dataclass(frozen=True)
class RungConfig:
    """Budget of one ladder rung.

    ``retries`` re-runs apply to timeouts and unexpected solver errors;
    a deterministic :class:`InfeasibleError` is final for the rung, so
    it climbs immediately.
    """

    name: str
    timeout_s: Optional[float] = 30.0
    retries: int = 0
    backoff_s: float = 0.05


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one admission service instance."""

    #: backend for the full re-solve rung ("heuristic" or "smt").
    backend: str = "heuristic"
    reservation_mode: str = "paper"
    guard_margin_ns: int = 0
    #: restart budget of the last-resort heuristic rung (the default
    #: budget is ``2 * streams + 4``; this floor keeps the last rung
    #: strictly more persistent than the full re-solve's default).
    heuristic_min_restarts: int = 128
    #: largest number of requests validated as one batch.
    max_batch: int = 8
    #: build an 802.1Qcc Deployment (GCL + talker offsets) per accepted
    #: batch; off by default to keep the admission hot path lean.
    emit_deployments: bool = False
    gcl_mode: str = "etsn"
    #: run the full-rung SMT solve with proof logging and have the
    #: independent checker (:mod:`repro.check`) verify every verdict:
    #: UNSAT proofs replay before a rejection is final, SAT models are
    #: evaluated against the original constraints before a schedule
    #: publishes.  Requires ``backend='smt'``.
    certify: bool = False
    #: decide the common case analytically before any solver rung runs
    #: (:mod:`repro.service.fastpath`): conclusive accepts and rejects
    #: in microseconds, anything else falls through to the ladder.
    #: Forced off under ``certify`` — certified verdicts must come from
    #: the proof-logging solver.
    fastpath: bool = True
    #: race the ladder rungs concurrently instead of climbing in series;
    #: first conclusive result wins, losers are abandoned through the
    #: orphaned-solver plumbing.  Per-rung ``retries`` are not honoured
    #: while racing (a raced rung gets exactly one attempt).  Forced off
    #: under ``certify``.
    portfolio: bool = False
    #: reuse formula-independent DPLL(T) state (theory lemmas, branching
    #: heuristics, potentials) across consecutive full-rung SMT solves
    #: on one snapshot; invalidated on every publish.  No-op for the
    #: heuristic backend and under ``certify``.
    warm_start: bool = True
    rungs: Tuple[RungConfig, ...] = (
        RungConfig(RUNG_INCREMENTAL),
        RungConfig(RUNG_FULL),
        RungConfig(RUNG_HEURISTIC),
    )


@dataclass
class _Batch:
    """One ladder attempt over a compatible request group."""

    requests: List[AdmissionRequest]
    batch_id: int


class AdmissionService:
    """Serves admit/remove requests against a :class:`ScheduleStore`."""

    def __init__(
        self,
        store: ScheduleStore,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
        sleep: Callable[[float], None] = time.sleep,
        on_deploy: Optional[Callable[[Deployment], None]] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self._store = store
        self._config = config or ServiceConfig()
        if self._config.certify and self._config.backend != "smt":
            raise ValueError(
                "ServiceConfig.certify requires backend='smt' "
                f"(got {self._config.backend!r})"
            )
        self._metrics = metrics if metrics is not None else store.metrics
        self._clock = clock
        self._sleep = sleep
        self._on_deploy = on_deploy
        # Disabled tracing is the no-op singleton, not None: the spans
        # below cost one call each either way, no branching on hot paths.
        self._tracer = tracer if tracer is not None else NULL_TRACER
        # Same contract for the structured event journal.
        self._events = events if events is not None else NULL_EVENT_LOG
        self._queue: Deque[AdmissionRequest] = deque()
        self._request_spans: Dict[int, object] = {}
        self._write_lock = make_lock("AdmissionService._write_lock")
        # Guards only the enqueue/drain staging queue; never held while
        # solving, and always released before _write_lock is taken.
        self._queue_lock = make_lock("AdmissionService._queue_lock")
        self._request_counter = 0
        self._batch_counter = 0
        self._last_deployment: Optional[Deployment] = None
        self._fastpath_on = (
            self._config.fastpath and not self._config.certify
        )
        self._warm_cache: Optional[WarmStartCache] = (
            WarmStartCache()
            if (self._config.backend == "smt"
                and self._config.warm_start
                and not self._config.certify)
            else None
        )

    # -- public surface ------------------------------------------------
    @property
    def store(self) -> ScheduleStore:
        return self._store

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    @property
    def events(self) -> EventLog:
        return self._events

    @property
    def last_deployment(self) -> Optional[Deployment]:
        return self._last_deployment

    def metrics_json(self, indent: Optional[int] = None) -> str:
        return self._metrics.to_json(indent=indent)

    def submit(self, request: AdmissionRequest) -> Decision:
        """Decide one request immediately."""
        return self.submit_many([request])[0]

    def submit_many(
        self, requests: Sequence[AdmissionRequest]
    ) -> List[Decision]:
        """Decide a request stream, batching compatible neighbours.

        Consecutive requests whose stream names are disjoint are solved
        and validated as one batch (bounded by ``max_batch``); a batch
        that fails every rung is splintered and re-tried one request at
        a time, so an infeasible newcomer cannot drag its batch-mates
        down with it.
        """
        decisions: List[Decision] = []
        with self._write_lock:
            for batch in self._coalesce(requests):
                decisions.extend(self._process_batch(batch))
        if self._tracer.enabled:
            # silent span loss was invisible before: surface the ring's
            # eviction count so `repro metrics` shows the blind spot
            self._metrics.gauge("tracer.spans_dropped").set(
                self._tracer.dropped
            )
        if self._events.enabled:
            self._metrics.gauge("events.dropped").set(self._events.dropped)
        return decisions

    def solve_against(
        self,
        schedule: NetworkSchedule,
        requests: Sequence[AdmissionRequest],
    ) -> Tuple[Optional[Tuple[str, NetworkSchedule]], Dict[str, str]]:
        """Screen and solve ``requests`` against an arbitrary base
        schedule *without publishing* anything.

        This is the prepare half of a two-phase cross-shard publish
        (:mod:`repro.cluster.twophase`): the coordinator pins a store
        snapshot, solves against the pin here, and publishes later via
        CAS.  Returns ``((rung, new schedule), attempts)`` on success or
        ``(None, attempts)`` where ``attempts`` carries per-rung (or
        screening) failure reasons.  Touches no service state beyond
        metrics/tracing, so it is safe to call concurrently with
        :meth:`submit_many`.
        """
        viable: List[AdmissionRequest] = []
        attempts: Dict[str, str] = {}
        for request in requests:
            problem = self._screen(request, schedule, viable)
            if problem is not None:
                attempts["screen"] = f"{request.stream_name}: {problem}"
                return None, attempts
            viable.append(request)
        if not viable:
            attempts["screen"] = "no requests to solve"
            return None, attempts
        return self._climb_ladder(schedule, viable)

    def enqueue(self, request: AdmissionRequest) -> None:
        """Queue a request for the next :meth:`drain`."""
        with self._queue_lock:
            self._queue.append(request)
            # the gauge update stays under the lock so concurrent
            # enqueues cannot publish depths out of order
            self._metrics.gauge("queue.depth").set(len(self._queue))

    def drain(self) -> List[Decision]:
        """Decide everything queued so far, in arrival order."""
        with self._queue_lock:
            pending = list(self._queue)
            self._queue.clear()
        self._metrics.gauge("queue.depth").set(0)
        return self.submit_many(pending) if pending else []

    # -- batching ------------------------------------------------------
    def _coalesce(
        self, requests: Sequence[AdmissionRequest]
    ) -> List[_Batch]:
        batches: List[_Batch] = []
        current: List[AdmissionRequest] = []
        names: set = set()
        for request in requests:
            clash = request.stream_name in names
            if current and (clash or len(current) >= self._config.max_batch):
                batches.append(self._new_batch(current))
                current, names = [], set()
            current.append(request)
            names.add(request.stream_name)
        if current:
            batches.append(self._new_batch(current))
        return batches

    def _new_batch(self, requests: List[AdmissionRequest]) -> _Batch:
        # reached only from submit_many, under _write_lock
        self._batch_counter += 1  # repro: lint-ok[lock-discipline]
        return _Batch(requests=list(requests), batch_id=self._batch_counter)

    # -- batch processing ----------------------------------------------
    def _process_batch(self, batch: _Batch) -> List[Decision]:
        with self._tracer.span(
            "admission.batch",
            batch_id=batch.batch_id,
            size=len(batch.requests),
        ) as batch_span:
            spans: Dict[int, object] = {}
            if self._tracer.enabled:
                for request in batch.requests:
                    spans[id(request)] = self._tracer.start_span(
                        "admission.request", parent=batch_span,
                        op=request.op, stream=request.stream_name,
                    )
            outer = self._request_spans
            # reached only from submit_many, under _write_lock
            self._request_spans = spans  # repro: lint-ok[lock-discipline]
            try:
                return self._process_batch_traced(batch)
            finally:
                self._request_spans = outer  # repro: lint-ok[lock-discipline]
                # Requests decided by a splintered or rebased sub-batch
                # got their outcome on the sub-batch's span; close the
                # superseded batch-level span without one.
                for span in spans.values():
                    self._tracer.finish(span)

    def _process_batch_traced(self, batch: _Batch) -> List[Decision]:
        """Decide a batch, rebasing onto fresh snapshots a bounded
        number of times when the publish CAS loses to another writer.

        The write lock makes a conflict unreachable from this service
        instance, but the store may be shared between services; bounding
        the loop keeps a pathologically contended store from recursing
        without limit — the batch is rejected with
        :data:`REASON_CAS_EXHAUSTED` instead.
        """
        for attempt in range(MAX_REBASE_ATTEMPTS):
            decisions = self._attempt_batch(batch)
            if decisions is not None:
                return decisions
            self._metrics.counter("batches.rebased").inc()
            if self._events.enabled:
                self._events.emit(
                    "admission.cas_retry", attempt=attempt + 1,
                    batch_id=batch.batch_id,
                    requests=[r.stream_name for r in batch.requests],
                )
        self._metrics.counter("batches.rebase_exhausted").inc()
        if self._events.enabled:
            self._events.emit(
                "admission.cas_exhausted", attempts=MAX_REBASE_ATTEMPTS,
                batch_id=batch.batch_id,
                requests=[r.stream_name for r in batch.requests],
            )
        return [
            self._decide(
                request, batch, accepted=False,
                reason=REASON_CAS_EXHAUSTED,
            )
            for request in batch.requests
        ]

    def _attempt_batch(self, batch: _Batch) -> Optional[List[Decision]]:
        """One snapshot -> solve -> publish attempt; ``None`` on a lost
        CAS race (the caller rebases)."""
        started = self._clock()
        self._metrics.counter("batches.total").inc()
        self._metrics.histogram("batch.size").observe(len(batch.requests))

        snapshot = self._store.snapshot()
        viable: List[AdmissionRequest] = []
        rejected: Dict[int, Decision] = {}
        for position, request in enumerate(batch.requests):
            problem = self._screen(request, snapshot.schedule, viable)
            if problem is None:
                viable.append(request)
            else:
                rejected[position] = self._decide(
                    request, batch, accepted=False, reason=problem,
                    latency_ms=0.0,
                )

        outcome: Optional[Tuple[str, NetworkSchedule]] = None
        attempts: Dict[str, str] = {}
        if viable:
            outcome, attempts = self._climb_ladder(snapshot.schedule, viable)

        if viable and outcome is None and len(viable) > 1:
            # Amortization failed for the group: decide each request on
            # its own so feasible batch-mates are not dragged down.
            self._metrics.counter("batches.splintered").inc()
            decisions_by_request = {}
            for request in viable:
                decisions_by_request[id(request)] = self._process_batch(
                    self._new_batch([request])
                )[0]
            ordered: List[Decision] = []
            for position, request in enumerate(batch.requests):
                if position in rejected:
                    ordered.append(rejected[position])
                else:
                    ordered.append(decisions_by_request[id(request)])
            return ordered

        latency_ms = (self._clock() - started) * 1e3
        version: Optional[int] = None
        rung: Optional[str] = None
        if outcome is not None:
            rung, schedule = outcome
            try:
                version = self._store.publish(
                    schedule, expected_version=snapshot.version
                ).version
            except StaleVersionError:
                # Lost the CAS race to a writer sharing the store:
                # signal the bounded rebase loop to retry on a fresh
                # snapshot.
                return None
            if self._warm_cache is not None:
                # the published snapshot obsoletes every cached solver
                # state — the next full solve starts from the new base
                dropped = self._warm_cache.invalidate()
                if dropped:
                    self._metrics.counter(
                        "warmstart.invalidations"
                    ).inc(dropped)
            self._emit_deployment(schedule)

        ordered = []
        for position, request in enumerate(batch.requests):
            if position in rejected:
                ordered.append(rejected[position])
            elif outcome is not None:
                ordered.append(self._decide(
                    request, batch, accepted=True, rung=rung,
                    latency_ms=latency_ms, store_version=version,
                    batch_size=len(viable), attempts=attempts,
                ))
            else:
                ordered.append(self._decide(
                    request, batch, accepted=False,
                    reason=self._rejection_reason(attempts),
                    latency_ms=latency_ms, batch_size=len(viable),
                    attempts=attempts,
                ))
        return ordered

    def _decide(
        self,
        request: AdmissionRequest,
        batch: _Batch,
        accepted: bool,
        rung: Optional[str] = None,
        reason: Optional[str] = None,
        latency_ms: float = 0.0,
        store_version: Optional[int] = None,
        batch_size: int = 1,
        attempts: Optional[Dict[str, str]] = None,
    ) -> Decision:
        # _decide runs inside batch processing, under _write_lock
        self._request_counter += 1  # repro: lint-ok[lock-discipline]
        self._metrics.counter("requests.total").inc()
        self._metrics.counter(
            "requests.admitted" if accepted else "requests.rejected"
        ).inc()
        self._metrics.counter(
            f"decisions.{rung if accepted else 'rejected'}"
        ).inc()
        self._metrics.histogram("latency.decision_ms").observe(latency_ms)
        if not accepted:
            # rejections get their own latency distribution: a reject
            # that climbs (or races) the whole ladder is the worst case
            # the fast path's conclusive verdicts are meant to cut
            self._metrics.histogram("latency.rejected_ms").observe(
                latency_ms
            )
        span = self._request_spans.pop(id(request), None)
        if span is not None:
            span.set(
                request_id=self._request_counter, accepted=accepted,
                rung=rung, reason=reason,
            )
            self._tracer.finish(span)
        if self._events.enabled:
            self._events.emit(
                "admission.decision",
                trace_id=getattr(span, "trace_id", None),
                span_id=getattr(span, "span_id", None),
                request=request.stream_name, op=request.op,
                accepted=accepted, rung=rung, reason=reason,
                latency_ms=round(latency_ms, 3),
                store_version=store_version,
            )
        return Decision(
            request_id=self._request_counter,
            op=request.op,
            stream=request.stream_name,
            accepted=accepted,
            rung=rung,
            reason=reason,
            latency_ms=latency_ms,
            store_version=store_version,
            batch_id=batch.batch_id,
            batch_size=batch_size,
            attempts=dict(attempts or {}),
        )

    @staticmethod
    def _rejection_reason(attempts: Dict[str, str]) -> str:
        detail = "; ".join(f"{rung}: {why}" for rung, why in attempts.items())
        return f"all ladder rungs failed ({detail})"

    # -- request screening ---------------------------------------------
    def _screen(
        self,
        request: AdmissionRequest,
        schedule: NetworkSchedule,
        batch_so_far: Sequence[AdmissionRequest],
    ) -> Optional[str]:
        """Cheap structural checks before any solver runs.

        Returns a rejection reason, or ``None`` when the request is
        worth a solve.
        """
        taken = {s.name for s in schedule.streams}
        taken.update(e.name for e in schedule.ect_streams)
        pending = {r.stream_name for r in batch_so_far}
        name = request.stream_name
        if isinstance(request, (AdmitTct, AdmitEct)):
            if name in taken or name in pending:
                return f"stream name {name!r} already in use"
            try:
                if isinstance(request, AdmitTct):
                    request.requirement.resolve(schedule.topology)
                else:
                    request.ect.route(schedule.topology)
            except (StreamError, ValueError, KeyError) as exc:
                return f"unroutable request: {exc}"
            return None
        if isinstance(request, Remove):
            is_ect = any(e.name == name for e in schedule.ect_streams)
            is_tct = any(
                s.name == name and s.type == StreamType.DET
                for s in schedule.streams
            )
            if not (is_ect or is_tct):
                return f"no stream named {name!r} to remove"
            if name in pending:
                return f"stream {name!r} already touched by this batch"
            return None
        return f"unsupported request type {type(request).__name__}"

    # -- the fallback ladder -------------------------------------------
    def _climb_ladder(
        self, schedule: NetworkSchedule, batch: Sequence[AdmissionRequest]
    ) -> Tuple[Optional[Tuple[str, NetworkSchedule]], Dict[str, str]]:
        """Decide analytically if possible, otherwise run the rungs.

        The fast path goes first: a conclusive accept returns without
        any solver call, a conclusive reject skips the whole ladder
        (the analytic checks are necessary conditions — no rung could
        succeed), and a constructive fall-through skips the incremental
        rung (the fast path already ran that computation and watched it
        fail).  The remaining rungs then either climb in series or, with
        ``portfolio=True``, race concurrently — first success wins.

        Returns ``((rung name, new schedule), attempts)`` on success or
        ``(None, attempts)`` with per-rung failure reasons.
        """
        solvers = {
            RUNG_INCREMENTAL: lambda: self._solve_incremental(schedule, batch),
            RUNG_FULL: lambda: self._solve_full(schedule, batch),
            RUNG_HEURISTIC: lambda: self._solve_heuristic(schedule, batch),
        }
        attempts: Dict[str, str] = {}
        rungs = list(self._config.rungs)
        if self._fastpath_on:
            verdict = self._run_fastpath(schedule, batch, attempts)
            if verdict.verdict == fastpath_module.ACCEPT:
                return (RUNG_FASTPATH, verdict.schedule), attempts
            if verdict.verdict == fastpath_module.REJECT:
                return None, attempts
            if verdict.subsumes_incremental:
                for rung in rungs:
                    if rung.name == RUNG_INCREMENTAL:
                        attempts[RUNG_INCREMENTAL] = (
                            "subsumed by the fast path's failed "
                            "constructive attempt"
                        )
                rungs = [r for r in rungs if r.name != RUNG_INCREMENTAL]

        known = []
        for rung in rungs:
            if rung.name in solvers:
                known.append(rung)
            else:
                attempts[rung.name] = "unknown rung"
        if (self._config.portfolio and not self._config.certify
                and len(known) > 1):
            outcome = self._race_rungs(known, solvers, attempts)
            return outcome, attempts
        for rung in known:
            result = self._run_rung(rung, solvers[rung.name], attempts)
            if result is not None:
                return (rung.name, result), attempts
        return None, attempts

    def _run_fastpath(
        self,
        schedule: NetworkSchedule,
        batch: Sequence[AdmissionRequest],
        attempts: Dict[str, str],
    ) -> FastPathResult:
        """Run the analytic rung with full telemetry."""
        self._metrics.counter("rungs.fastpath.attempts").inc()
        started = self._clock()
        with self._tracer.span(
            "admission.rung", rung=RUNG_FASTPATH, attempt=0
        ) as rung_span:
            try:
                result = fastpath_module.evaluate(
                    schedule, batch,
                    guard_margin_ns=self._config.guard_margin_ns,
                    reservation_mode=self._config.reservation_mode,
                )
            except Exception as exc:  # noqa: BLE001 - keep the service up
                self._metrics.counter("rungs.fastpath.errors").inc()
                result = FastPathResult(
                    fastpath_module.INCONCLUSIVE,
                    f"{type(exc).__name__}: {exc}",
                )
            latency_ms = (self._clock() - started) * 1e3
            self._metrics.histogram(
                "latency.rung.fastpath_ms"
            ).observe(latency_ms)
            if result.verdict == fastpath_module.ACCEPT:
                self._metrics.counter("fastpath.accepts").inc()
                self._metrics.counter("rungs.fastpath.successes").inc()
                rung_span.set(outcome="success")
            elif result.verdict == fastpath_module.REJECT:
                self._metrics.counter("fastpath.rejects").inc()
                self._metrics.counter("rungs.fastpath.failures").inc()
                attempts[RUNG_FASTPATH] = result.reason
                rung_span.set(outcome="infeasible")
            else:
                self._metrics.counter("fastpath.fallthroughs").inc()
                attempts[RUNG_FASTPATH] = result.reason
                rung_span.set(outcome="fallthrough")
            if self._events.enabled:
                self._events.emit(
                    "admission.fastpath",
                    verdict=result.verdict, reason=result.reason,
                    requests=[r.stream_name for r in batch],
                    latency_ms=round(latency_ms, 3),
                )
        return result

    def _race_rungs(
        self,
        rungs: Sequence[RungConfig],
        solvers: Dict[str, Callable[[], NetworkSchedule]],
        attempts: Dict[str, str],
    ) -> Optional[Tuple[str, NetworkSchedule]]:
        """Race the rungs concurrently; first success wins.

        Each rung runs on its own daemon thread under its own wall-clock
        budget.  Losers — overdue rungs and the also-rans after a win —
        are abandoned through the same plumbing as
        :func:`_call_with_timeout`: ``solver.threads_abandoned`` counts
        them, ``solver.orphans_running`` tracks the ones still burning
        CPU (each orphan decrements it on exit), and their results are
        discarded.
        """
        self._metrics.counter("portfolio.races").inc()
        results: "queue_module.Queue[Tuple[RungConfig, str, object]]" = (
            queue_module.Queue()
        )
        trace_ctx = self._tracer.current_context()
        started = self._clock()

        class _Entry:
            __slots__ = ("rung", "state", "lock", "deadline")

        entries: Dict[str, _Entry] = {}
        for rung in rungs:
            entry = _Entry()
            entry.rung = rung
            entry.state = {"abandoned": False, "finished": False}
            entry.lock = threading.Lock()
            entry.deadline = (
                started + rung.timeout_s
                if rung.timeout_s and rung.timeout_s > 0 else None
            )
            entries[rung.name] = entry
            self._metrics.counter(f"rungs.{rung.name}.attempts").inc()

            def worker(rung=rung, entry=entry) -> None:
                with self._tracer.use_context(trace_ctx):
                    with self._tracer.span(
                        "admission.rung", rung=rung.name, attempt=0,
                        raced=True,
                    ) as rung_span:
                        try:
                            value = solvers[rung.name]()
                        except (InfeasibleError, ScheduleError, StreamError,
                                ValueError) as exc:
                            rung_span.set(outcome="infeasible")
                            payload = (rung, "infeasible", exc)
                        except Exception as exc:  # noqa: BLE001
                            rung_span.set(outcome="error")
                            payload = (rung, "error", exc)
                        else:
                            rung_span.set(outcome="success")
                            payload = (rung, "success", value)
                with entry.lock:
                    entry.state["finished"] = True
                    if entry.state["abandoned"]:
                        # loser or overdue: result discarded
                        self._metrics.gauge("solver.orphans_running").add(-1)
                        return
                results.put(payload)

            threading.Thread(
                target=worker, name=f"repro-portfolio-{rung.name}",
                daemon=True,
            ).start()

        def abandon(entry: _Entry, why: str) -> bool:
            """Mark a still-running rung abandoned; True if it was live."""
            with entry.lock:
                if entry.state["finished"] or entry.state["abandoned"]:
                    return False
                entry.state["abandoned"] = True
            self._metrics.counter("solver.threads_abandoned").inc()
            self._metrics.gauge("solver.orphans_running").add(1)
            self._metrics.counter("portfolio.losers_cancelled").inc()
            if self._events.enabled:
                self._events.emit(
                    "solver.abandoned", rung=entry.rung.name, cause=why,
                    timeout_s=entry.rung.timeout_s,
                )
            return True

        winner: Optional[Tuple[str, NetworkSchedule]] = None
        pending = dict(entries)
        while pending and winner is None:
            now = self._clock()
            for name, entry in list(pending.items()):
                if entry.deadline is not None and now >= entry.deadline:
                    if abandon(entry, "timeout"):
                        self._metrics.counter(
                            f"rungs.{name}.timeouts"
                        ).inc()
                        attempts[name] = (
                            f"solve exceeded {entry.rung.timeout_s:.3f}s "
                            f"budget (raced)"
                        )
                        self._observe_rung_latency(entry.rung, started)
                        del pending[name]
            if not pending:
                break
            deadlines = [
                e.deadline for e in pending.values() if e.deadline is not None
            ]
            wait_s = (
                max(min(deadlines) - self._clock(), 0.001)
                if deadlines else 0.05
            )
            try:
                rung, status, payload = results.get(timeout=wait_s)
            except queue_module.Empty:
                continue
            entry = pending.pop(rung.name, None)
            if entry is None:
                continue  # raced with its own timeout handling
            self._observe_rung_latency(rung, started)
            if status == "success":
                self._metrics.counter(f"rungs.{rung.name}.successes").inc()
                self._harvest_solver_stats(payload)
                winner = (rung.name, payload)
            elif status == "infeasible":
                self._metrics.counter(f"rungs.{rung.name}.failures").inc()
                attempts[rung.name] = str(payload)
            else:
                self._metrics.counter(f"rungs.{rung.name}.errors").inc()
                attempts[rung.name] = (
                    f"{type(payload).__name__}: {payload}"
                )
        # cancel the also-rans (their threads keep running to completion
        # but their results are discarded and accounted as orphans)
        for entry in pending.values():
            abandon(entry, "lost race")
        return winner

    def _run_rung(
        self,
        rung: RungConfig,
        solver: Callable[[], NetworkSchedule],
        attempts: Dict[str, str],
    ) -> Optional[NetworkSchedule]:
        for attempt in range(rung.retries + 1):
            self._metrics.counter(f"rungs.{rung.name}.attempts").inc()
            started = self._clock()
            with self._tracer.span(
                "admission.rung", rung=rung.name, attempt=attempt
            ) as rung_span:
                traced = self._traced_solver(solver, rung, rung_span)
                try:
                    result = _call_with_timeout(
                        traced, rung.timeout_s, self._metrics,
                        events=self._events, rung_name=rung.name,
                    )
                except RungTimeout as exc:
                    self._metrics.counter(f"rungs.{rung.name}.timeouts").inc()
                    attempts[rung.name] = str(exc)
                    rung_span.set(outcome="timeout")
                except (InfeasibleError, ScheduleError, StreamError,
                        ValueError) as exc:
                    # deterministic verdict: retrying cannot change it
                    self._metrics.counter(f"rungs.{rung.name}.failures").inc()
                    attempts[rung.name] = str(exc)
                    rung_span.set(outcome="infeasible")
                    if isinstance(exc, CertifiedInfeasibleError):
                        # the rejection's UNSAT proof replayed cleanly
                        self._metrics.counter(
                            "certificates.verified_unsat"
                        ).inc()
                        rung_span.set(certified=True)
                    self._observe_rung_latency(rung, started)
                    return None
                except Exception as exc:  # noqa: BLE001 - keep the service up
                    self._metrics.counter(f"rungs.{rung.name}.errors").inc()
                    attempts[rung.name] = f"{type(exc).__name__}: {exc}"
                    rung_span.set(outcome="error")
                    if isinstance(exc, CertificateError):
                        # a verdict failed independent checking: a solver
                        # bug — surfaced loudly, never silently admitted
                        self._metrics.counter("certificates.failed").inc()
                        rung_span.set(certified=False)
                else:
                    self._metrics.counter(f"rungs.{rung.name}.successes").inc()
                    rung_span.set(outcome="success")
                    self._observe_rung_latency(rung, started)
                    self._harvest_solver_stats(result)
                    return result
            self._observe_rung_latency(rung, started)
            if attempt < rung.retries and rung.backoff_s:
                self._sleep(rung.backoff_s * (2 ** attempt))
        return None

    def _observe_rung_latency(self, rung: RungConfig, started: float) -> None:
        self._metrics.histogram(
            f"latency.rung.{rung.name}_ms"
        ).observe((self._clock() - started) * 1e3)

    def _traced_solver(
        self,
        solver: Callable[[], NetworkSchedule],
        rung: RungConfig,
        rung_span,
    ) -> Callable[[], NetworkSchedule]:
        """Wrap a rung's solver in a ``solve`` span.

        The solve may run on the timeout watchdog's worker thread, so
        the rung span is named as the parent explicitly — the tracer's
        per-thread stack cannot see across threads.
        """
        if not self._tracer.enabled:
            return solver

        def traced() -> NetworkSchedule:
            with self._tracer.span("solve", parent=rung_span,
                                   rung=rung.name):
                return solver()

        return traced

    def _harvest_solver_stats(self, result: NetworkSchedule) -> None:
        """Fold a solve's SMT search counters into the service metrics.

        The SMT backend records its :class:`~repro.smt.sat.SolverStats`
        snapshot in ``schedule.meta``; the heuristic backends have no
        CDCL core and contribute nothing here.
        """
        stats = result.meta.get("solver_stats")
        if isinstance(stats, dict):
            for key, value in stats.items():
                if isinstance(value, int) and not isinstance(value, bool):
                    self._metrics.counter(f"solver.{key}").inc(value)
        certificate = result.meta.get("certificate")
        if isinstance(certificate, dict) and certificate.get("verified"):
            self._metrics.counter("certificates.verified_sat").inc()

    # rung 1: earliest-fit around the frozen schedule ------------------
    def _solve_incremental(
        self, schedule: NetworkSchedule, batch: Sequence[AdmissionRequest]
    ) -> NetworkSchedule:
        result = schedule
        last = len(batch) - 1
        for position, request in enumerate(batch):
            # validation is amortized: only the last operation validates
            check = position == last
            if isinstance(request, AdmitTct):
                result = add_tct_stream(
                    result,
                    request.requirement.resolve(result.topology),
                    guard_margin_ns=self._config.guard_margin_ns,
                    validate_result=check,
                )
            elif isinstance(request, AdmitEct):
                result = add_ect_stream(
                    result, request.ect,
                    guard_margin_ns=self._config.guard_margin_ns,
                    reservation_mode=self._config.reservation_mode,
                    validate_result=check,
                )
            else:
                result = remove_stream(
                    result, request.name, validate_result=check
                )
        return result

    # rungs 2/3: re-solve the target stream set from scratch -----------
    def _target_sets(
        self, schedule: NetworkSchedule, batch: Sequence[AdmissionRequest]
    ) -> Tuple[List[Stream], List[EctStream]]:
        """The stream population after applying the batch's operations."""
        removals = {r.name for r in batch if isinstance(r, Remove)}
        ects = [e for e in schedule.ect_streams if e.name not in removals]
        # probabilistic possibilities are regenerated from the ECT specs
        # by the solver, so only the deterministic population carries over
        tct = [
            s for s in schedule.streams
            if s.type == StreamType.DET and s.name not in removals
        ]
        for request in batch:
            if isinstance(request, AdmitTct):
                tct.append(request.requirement.resolve(schedule.topology))
            elif isinstance(request, AdmitEct):
                ects.append(request.ect)
        return tct, ects

    def _solve_full(
        self, schedule: NetworkSchedule, batch: Sequence[AdmissionRequest]
    ) -> NetworkSchedule:
        tct, ects = self._target_sets(schedule, batch)
        warm_state = None
        warm_sink = None
        cache = self._warm_cache
        if cache is not None:
            # keyed on the snapshot identity: every publish builds a new
            # schedule object, so a hit always means "same base formula
            # shape" — and the publish path invalidates explicitly too
            warm_state = cache.get(schedule)
            self._metrics.counter(
                "warmstart.hits" if warm_state is not None
                else "warmstart.misses"
            ).inc()
            warm_sink = lambda state: cache.put(schedule, state)  # noqa: E731
        result = schedule_etsn(
            schedule.topology, tct, ects,
            backend=self._config.backend,
            guard_margin_ns=self._config.guard_margin_ns,
            reservation_mode=self._config.reservation_mode,
            proof=self._config.certify,
            warm_start=warm_state,
            warm_state_sink=warm_sink,
        )
        result.meta["resolved_by"] = RUNG_FULL
        return result

    def _solve_heuristic(
        self, schedule: NetworkSchedule, batch: Sequence[AdmissionRequest]
    ) -> NetworkSchedule:
        tct, ects = self._target_sets(schedule, batch)
        restarts = max(
            self._config.heuristic_min_restarts,
            2 * (len(tct) + sum(e.possibilities for e in ects)) + 4,
        )
        result = schedule_heuristic(
            schedule.topology, tct, ects,
            max_restarts=restarts,
            guard_margin_ns=self._config.guard_margin_ns,
            reservation_mode=self._config.reservation_mode,
        )
        result.meta["resolved_by"] = RUNG_HEURISTIC
        return result

    # -- deployment emission -------------------------------------------
    def _emit_deployment(self, schedule: NetworkSchedule) -> None:
        if not self._config.emit_deployments:
            return
        if not schedule.streams and not schedule.ect_streams:
            # Retiring the last stream leaves nothing to program into the
            # switches; there is no GCL for an empty schedule.
            self._metrics.counter("deployments.skipped_empty").inc()
            return
        deployment = deployment_from_schedule(
            schedule, mode=self._config.gcl_mode
        )
        # deployments are emitted from the publish path, under _write_lock
        self._last_deployment = deployment  # repro: lint-ok[lock-discipline]
        self._metrics.counter("deployments.emitted").inc()
        if self._on_deploy is not None:
            self._on_deploy(deployment)


def _call_with_timeout(
    fn: Callable[[], NetworkSchedule],
    timeout_s: Optional[float],
    metrics: Optional[MetricsRegistry] = None,
    events: Optional[EventLog] = None,
    rung_name: Optional[str] = None,
) -> NetworkSchedule:
    """Run ``fn`` under a wall-clock budget.

    ``None`` (or non-positive) runs inline.  Otherwise the solve runs in
    a daemon thread; on timeout the thread is abandoned (pure-python
    solvers cannot be preempted) and :class:`RungTimeout` raised — the
    orphan finishes in the background and its result is discarded.

    Abandonment is no longer silent: every orphaned thread bumps the
    ``solver.threads_abandoned`` counter, and the
    ``solver.orphans_running`` gauge tracks how many orphans are *still*
    burning CPU — the leak signal long cluster soak runs watch.
    """
    if timeout_s is None or timeout_s <= 0:
        return fn()
    outcome: Dict[str, object] = {}
    done = threading.Event()
    state = {"abandoned": False, "finished": False}
    state_lock = threading.Lock()

    def worker() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            outcome["error"] = exc
        finally:
            with state_lock:
                state["finished"] = True
                if state["abandoned"] and metrics is not None:
                    metrics.gauge("solver.orphans_running").add(-1)
            done.set()

    thread = threading.Thread(
        target=worker, name="repro-admission-solve", daemon=True
    )
    thread.start()
    if not done.wait(timeout_s):
        with state_lock:
            if not state["finished"]:
                # the solve is still running somewhere: count the orphan
                # now and have the worker decrement on eventual exit
                state["abandoned"] = True
                if metrics is not None:
                    metrics.counter("solver.threads_abandoned").inc()
                    metrics.gauge("solver.orphans_running").add(1)
                if events is not None and events.enabled:
                    events.emit(
                        "solver.abandoned", timeout_s=timeout_s,
                        rung=rung_name,
                    )
                raise RungTimeout(
                    f"solve exceeded {timeout_s:.3f}s budget"
                )
        # finished right on the deadline: take the result after all
    if "error" in outcome:
        raise outcome["error"]  # type: ignore[misc]
    return outcome["value"]  # type: ignore[return-value]


def empty_schedule(topology) -> NetworkSchedule:
    """A zero-stream schedule to seed a store for a fresh network."""
    topology.validate()
    schedule = NetworkSchedule(
        topology=topology, streams=[], slots={}, ect_streams=[], meta={}
    )
    validate(schedule)
    return schedule
