"""Admission request and decision types.

Requests mirror what a CUC forwards to the CNC at run time (paper
Fig. 5, Sec. VII-C): a new time-triggered stream requirement, a new
event-triggered stream descriptor, or a retirement.  Decisions are the
structured accept/reject verdicts the service returns — admission
control never answers with an exception, and a rejection carries the
reason plus the fallback rung that last tried.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.model.stream import EctStream, Priorities, TctRequirement


@dataclass(frozen=True)
class AdmitTct:
    """Admit one time-triggered critical stream."""

    requirement: TctRequirement

    @property
    def op(self) -> str:
        return "admit-tct"

    @property
    def stream_name(self) -> str:
        return self.requirement.name


@dataclass(frozen=True)
class AdmitEct:
    """Admit one event-triggered critical stream."""

    ect: EctStream

    @property
    def op(self) -> str:
        return "admit-ect"

    @property
    def stream_name(self) -> str:
        return self.ect.name


@dataclass(frozen=True)
class Remove:
    """Retire one stream (TCT by name, or an ECT with its possibilities)."""

    name: str

    @property
    def op(self) -> str:
        return "remove"

    @property
    def stream_name(self) -> str:
        return self.name


AdmissionRequest = Union[AdmitTct, AdmitEct, Remove]


@dataclass(frozen=True)
class Decision:
    """The structured outcome of one admission request.

    rung
        Ladder rung that produced the committed schedule
        (``incremental`` / ``full`` / ``heuristic``), or ``None`` for a
        rejection.
    store_version
        Store version the accepting batch published (``None`` when
        rejected).
    attempts
        Per-rung failure detail accumulated while climbing the ladder;
        empty for requests rejected before any solve ran.
    """

    request_id: int
    op: str
    stream: str
    accepted: bool
    rung: Optional[str] = None
    reason: Optional[str] = None
    latency_ms: float = 0.0
    store_version: Optional[int] = None
    batch_id: int = 0
    batch_size: int = 1
    attempts: Dict[str, str] = field(default_factory=dict)


def request_from_dict(data: Dict) -> AdmissionRequest:
    """Build a request from a JSON-able dict (the ``repro serve`` wire
    format).  Raises :class:`ValueError` on an unknown or malformed op.
    """
    op = data.get("op")
    try:
        return _request_from_dict(op, data)
    except KeyError as exc:
        raise ValueError(
            f"{op!r} request missing required field {exc.args[0]!r}"
        ) from None


def _request_from_dict(op, data: Dict) -> AdmissionRequest:
    if op == "admit-tct":
        share = bool(data.get("share", False))
        default_priority = Priorities.SH_PL if share else Priorities.NSH_PH
        return AdmitTct(TctRequirement(
            name=data["name"],
            source=data["source"],
            destination=data["destination"],
            period_ns=int(data["period_ns"]),
            length_bytes=int(data["length_bytes"]),
            e2e_ns=int(data["e2e_ns"]) if data.get("e2e_ns") else None,
            priority=int(data.get("priority", default_priority)),
            share=share,
        ))
    if op == "admit-ect":
        return AdmitEct(EctStream(
            name=data["name"],
            source=data["source"],
            destination=data["destination"],
            min_interevent_ns=int(data["min_interevent_ns"]),
            length_bytes=int(data["length_bytes"]),
            e2e_ns=int(data["e2e_ns"]) if data.get("e2e_ns") else None,
            possibilities=int(data.get("possibilities", 4)),
        ))
    if op == "remove":
        return Remove(name=data["name"])
    raise ValueError(
        f"unknown admission op {op!r}; expected one of "
        f"('admit-tct', 'admit-ect', 'remove')"
    )


def request_to_dict(request: AdmissionRequest) -> Dict:
    """Inverse of :func:`request_from_dict`."""
    if isinstance(request, AdmitTct):
        req = request.requirement
        return {
            "op": "admit-tct",
            "name": req.name,
            "source": req.source,
            "destination": req.destination,
            "period_ns": req.period_ns,
            "length_bytes": req.length_bytes,
            "e2e_ns": req.e2e_ns,
            "priority": req.priority,
            "share": req.share,
        }
    if isinstance(request, AdmitEct):
        ect = request.ect
        return {
            "op": "admit-ect",
            "name": ect.name,
            "source": ect.source,
            "destination": ect.destination,
            "min_interevent_ns": ect.min_interevent_ns,
            "length_bytes": ect.length_bytes,
            "e2e_ns": ect.e2e_ns,
            "possibilities": ect.possibilities,
        }
    if isinstance(request, Remove):
        return {"op": "remove", "name": request.name}
    raise TypeError(f"not an admission request: {request!r}")
