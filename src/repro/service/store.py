"""Versioned, copy-on-write storage for the live network schedule.

The admission service mutates the network configuration while readers —
GCL export, simulation runs, statistics — keep using whatever schedule
they started with.  :class:`ScheduleStore` makes that safe without
reader-side locking: every published schedule is an immutable-by-
convention snapshot (the incremental scheduler already returns fresh
:class:`~repro.core.schedule.NetworkSchedule` objects and never mutates
its input), and the store only ever swaps an atomic reference.

Writers use compare-and-swap semantics: :meth:`ScheduleStore.publish`
takes the version the writer based its work on and fails with
:class:`StaleVersionError` if another writer got there first, so two
concurrent admission batches cannot silently lose each other's streams.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional

from repro.check.sanitizer import make_lock
from repro.core.schedule import NetworkSchedule

from repro.service.metrics import MetricsRegistry


class StaleVersionError(RuntimeError):
    """A publish lost the compare-and-swap race against another writer."""


@dataclass(frozen=True)
class StoreSnapshot:
    """One immutable (version, schedule) pair handed to readers."""

    version: int
    schedule: NetworkSchedule


class ScheduleStore:
    """Holds the current schedule; readers never block on admissions.

    ``history_limit`` old snapshots are retained for debugging and for
    readers that want to diff versions (0 disables retention).
    """

    def __init__(
        self,
        schedule: NetworkSchedule,
        metrics: Optional[MetricsRegistry] = None,
        history_limit: int = 8,
    ) -> None:
        if history_limit < 0:
            # a negative limit would silently corrupt the retention
            # slice below (del self._history[: -self._history_limit])
            raise ValueError(
                f"history_limit must be >= 0, got {history_limit}"
            )
        self._lock = make_lock("ScheduleStore._lock")
        self._current = StoreSnapshot(version=0, schedule=schedule)
        self._history: List[StoreSnapshot] = []
        self._history_limit = history_limit
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._metrics.gauge("store.version").set(0)

    # -- readers -------------------------------------------------------
    def snapshot(self) -> StoreSnapshot:
        """The current (version, schedule); a plain reference read."""
        return self._current

    @property
    def version(self) -> int:
        return self._current.version

    @property
    def schedule(self) -> NetworkSchedule:
        return self._current.schedule

    def history(self) -> List[StoreSnapshot]:
        """Retained superseded snapshots, oldest first."""
        with self._lock:
            return list(self._history)

    # -- writers -------------------------------------------------------
    def publish(
        self,
        schedule: NetworkSchedule,
        expected_version: Optional[int] = None,
    ) -> StoreSnapshot:
        """Swap in a new schedule; returns the new snapshot.

        ``expected_version`` enables compare-and-swap: the publish is
        refused with :class:`StaleVersionError` when the store has moved
        past that version, leaving the store untouched.
        """
        with self._lock:
            if (
                expected_version is not None
                and expected_version != self._current.version
            ):
                self._metrics.counter("store.cas_conflicts").inc()
                raise StaleVersionError(
                    f"store is at version {self._current.version}, publish "
                    f"expected {expected_version}"
                )
            if self._history_limit:
                self._history.append(self._current)
                del self._history[: -self._history_limit]
            snapshot = StoreSnapshot(
                version=self._current.version + 1, schedule=schedule
            )
            self._current = snapshot
            self._metrics.counter("store.publishes").inc()
            self._metrics.gauge("store.version").set(snapshot.version)
            return snapshot

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics
