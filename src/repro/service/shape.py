"""Canonical stream shapes: name-independent admission-request identity.

Industrial request mixes are dominated by a small set of recurring
stream *profiles* — the same route, period, deadline, and traffic class
showing up under ever-fresh stream names (TAS-survey observation; see
ISSUE/DESIGN).  Whether two requests are "the same shape" therefore
must ignore the name, and every layer that exploits shape identity —
the analytic fast path's screening arguments, the network frontend's
decision cache — has to agree on what a shape *is*, or a cached verdict
could be replayed for a request the solver would decide differently.

:func:`canonical_shape` is that single definition.  It returns a plain
hashable tuple (usable directly as a dict key on hot paths);
:func:`shape_digest` derives a short stable hex digest for logs,
events, and cross-process keys.

Identity rules:

* **Admits** hash the traffic class, the route, the period (TCT) or
  minimum inter-event time (ECT), the end-to-end budget, the frame
  length, and the class parameters (priority/share for TCT,
  possibilities/via for ECT) — never the stream name.  A TCT budget of
  ``None`` normalizes to the period, exactly as
  :meth:`~repro.model.stream.TctRequirement.resolve` does, so implicit
  and explicit implicit-deadline requests share a shape.
* **Routes** are the resolved link path (the ``(src, dst)`` hop
  sequence) when a ``topology`` is given.
  Without one, the (source, destination) endpoints stand in — which is
  equivalent *for a fixed topology*, because routing is deterministic:
  shortest-path over the same graph always yields the same path.  A
  shape consumer that keys across topology changes (the frontend cache)
  must therefore pair the shape with a topology/store epoch.
* **Removes** hash the stream name: the name *is* the operation's
  identity (there is nothing shape-like about a retirement).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

from repro.service.requests import (
    AdmissionRequest,
    AdmitEct,
    AdmitTct,
    Remove,
)

__all__ = ["canonical_shape", "shape_digest"]


def canonical_shape(
    request: AdmissionRequest, topology=None
) -> Tuple:
    """The name-independent identity tuple of one admission request.

    With ``topology`` the route is resolved to its node path; without
    one the endpoints stand in (equivalent under a fixed topology, see
    the module docstring).  Raises the routing layer's error for an
    unroutable request when resolving, and :class:`TypeError` for a
    non-request.
    """
    if isinstance(request, AdmitTct):
        req = request.requirement
        if topology is not None:
            route = ("route",) + tuple(
                link.key
                for link in topology.shortest_path(req.source, req.destination)
            )
        else:
            route = ("endpoints", req.source, req.destination)
        e2e = req.e2e_ns if req.e2e_ns is not None else req.period_ns
        return (
            "admit-tct", route, req.period_ns, e2e,
            req.length_bytes, req.priority, req.share,
        )
    if isinstance(request, AdmitEct):
        ect = request.ect
        if topology is not None:
            route = ("route",) + tuple(
                link.key for link in ect.route(topology)
            )
        else:
            route = ("endpoints", ect.source, ect.destination)
        return (
            "admit-ect", route, ect.min_interevent_ns, ect.e2e_ns,
            ect.length_bytes, ect.possibilities, ect.via,
        )
    if isinstance(request, Remove):
        return ("remove", request.name)
    raise TypeError(f"not an admission request: {request!r}")


def shape_digest(
    request: AdmissionRequest, topology=None, length: int = 16
) -> str:
    """A short stable hex digest of :func:`canonical_shape`.

    The tuple repr is deterministic (strings, ints, bools, ``None``
    only), so the digest is stable across processes and sessions —
    usable in event journals and cross-process cache keys.
    """
    shape = canonical_shape(request, topology=topology)
    return hashlib.sha256(repr(shape).encode("utf-8")).hexdigest()[:length]
