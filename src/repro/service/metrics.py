"""Embedded metrics for the admission-control runtime.

A production CNC is judged by its admission latency and throughput (the
deciding factors for online scheduling per the TAS survey and the
network-calculus admission-control line of work), so the service keeps
its own counters and latency histograms instead of relying on external
tooling.  Everything is in-process, allocation-light, and exportable as
plain JSON:

* :class:`Counter` — monotone event count.
* :class:`Gauge` — last-written value (queue depth, store version).
* :class:`Histogram` — the log-bucketed mergeable distribution from
  :mod:`repro.obs.histogram` (re-exported here so service code keeps
  one import site): exact count/sum/min/max, p50/p90/p99/p999 at
  bucket resolution, O(1) memory at any observation count, and
  lossless summary round-trips for offline SLO evaluation.
* :class:`MetricsRegistry` — create-on-first-use namespace over all of
  the above; :meth:`MetricsRegistry.to_dict` / :meth:`to_json` export,
  :meth:`MetricsRegistry.restore_histogram` for rehydrating saved
  snapshots.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Optional

from repro.obs.histogram import Histogram


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-write-wins instantaneous value.

    Locked like every other instrument: gauges are written from
    whatever thread publishes or drains, so last-write-wins must mean
    *some* complete write, never a torn or stale-cached one.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        """Read-modify-write adjustment (unlike :meth:`set`, atomic)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class MetricsRegistry:
    """Namespace of counters, gauges, and histograms.

    Instruments are created on first use, so callers never have to
    declare metrics ahead of time; ``prefix.name`` dotted keys group
    related series (e.g. ``decisions.incremental``).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge()
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram()
            return self._histograms[name]

    def restore_histogram(self, name: str, summary: Dict) -> Histogram:
        """Rehydrate ``name`` from a saved :meth:`Histogram.summary`.

        Merges into the existing series when one already exists —
        restoring a snapshot over a live registry is additive, exactly
        like merging a shard's histogram.
        """
        restored = Histogram.from_summary(summary)
        with self._lock:
            existing = self._histograms.get(name)
            if existing is None:
                self._histograms[name] = restored
                return restored
        existing.merge(restored)
        return existing

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """All counter values whose name starts with ``prefix.``."""
        with self._lock:
            counters = sorted(self._counters.items())
        return {
            name[len(prefix) + 1:]: counter.value
            for name, counter in counters
            if name.startswith(prefix + ".")
        }

    def to_dict(self) -> Dict:
        """JSON-able snapshot of every instrument.

        The instrument tables are copied under the registry lock (so a
        concurrent create-on-first-use cannot resize them mid-iteration)
        and each instrument is then read through its own lock.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {n: c.value for n, c in counters},
            "gauges": {n: g.value for n, g in gauges},
            "histograms": {n: h.summary() for n, h in histograms},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)
