"""Embedded metrics for the admission-control runtime.

A production CNC is judged by its admission latency and throughput (the
deciding factors for online scheduling per the TAS survey and the
network-calculus admission-control line of work), so the service keeps
its own counters and latency histograms instead of relying on external
tooling.  Everything is in-process, allocation-light, and exportable as
plain JSON:

* :class:`Counter` — monotone event count.
* :class:`Gauge` — last-written value (queue depth, store version).
* :class:`Histogram` — bounded-reservoir latency distribution with
  percentile queries (p50/p90/p99) plus exact count/sum/min/max.
* :class:`MetricsRegistry` — create-on-first-use namespace over all of
  the above; :meth:`MetricsRegistry.to_dict` / :meth:`to_json` export.

The histogram keeps at most ``max_samples`` observations; once full it
falls back to coarse reservoir replacement (deterministic, seeded per
histogram) so long benchmark runs stay O(1) memory while the exact
``count``/``sum`` stay exact.
"""

from __future__ import annotations

import json
import random
import threading
from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-write-wins instantaneous value.

    Locked like every other instrument: gauges are written from
    whatever thread publishes or drains, so last-write-wins must mean
    *some* complete write, never a torn or stale-cached one.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        """Read-modify-write adjustment (unlike :meth:`set`, atomic)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Latency distribution with percentile queries.

    Exact ``count``/``sum``/``min``/``max``; percentiles come from a
    bounded sample reservoir (all observations until ``max_samples``,
    then seeded random replacement).
    """

    def __init__(self, max_samples: int = 8192, seed: int = 1) -> None:
        if max_samples < 1:
            raise ValueError("histogram needs room for at least one sample")
        self._max_samples = max_samples
        self._rng = random.Random(seed)
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            if len(self._samples) < self._max_samples:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self._max_samples:
                    self._samples[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the reservoir, ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        return self._rank(ordered, q)

    @staticmethod
    def _rank(ordered: List[float], q: float) -> float:
        rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """One consistent snapshot of every aggregate.

        A single lock acquisition covers count/sum/min/max *and* the
        percentile source, so a concurrent ``observe`` can never yield a
        summary whose count disagrees with its percentiles.
        """
        with self._lock:
            count = self._count
            total = self._sum
            minimum = self._min if self._min is not None else 0.0
            maximum = self._max if self._max is not None else 0.0
            ordered = sorted(self._samples)
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": minimum,
            "max": maximum,
            "p50": self._rank(ordered, 50) if ordered else 0.0,
            "p90": self._rank(ordered, 90) if ordered else 0.0,
            "p99": self._rank(ordered, 99) if ordered else 0.0,
        }


class MetricsRegistry:
    """Namespace of counters, gauges, and histograms.

    Instruments are created on first use, so callers never have to
    declare metrics ahead of time; ``prefix.name`` dotted keys group
    related series (e.g. ``decisions.incremental``).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge()
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                # one fixed seed per series keeps runs reproducible
                self._histograms[name] = Histogram(seed=len(self._histograms) + 1)
            return self._histograms[name]

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """All counter values whose name starts with ``prefix.``."""
        with self._lock:
            counters = sorted(self._counters.items())
        return {
            name[len(prefix) + 1:]: counter.value
            for name, counter in counters
            if name.startswith(prefix + ".")
        }

    def to_dict(self) -> Dict:
        """JSON-able snapshot of every instrument.

        The instrument tables are copied under the registry lock (so a
        concurrent create-on-first-use cannot resize them mid-iteration)
        and each instrument is then read through its own lock.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {n: c.value for n, c in counters},
            "gauges": {n: g.value for n, g in gauges},
            "histograms": {n: h.summary() for n, h in histograms},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)
