"""Analytic fast-path admission — the microsecond rung below the ladder.

Most admission requests do not need a solver.  This module decides the
common case with two sound, placement-independent arguments:

* **Conclusive reject** — necessary conditions every rung enforces
  (they are implied by paper Eqs. 1-7, which the independent validator
  re-checks on every published schedule), evaluated in closed form:

  - *e2e floor*: the wire-time chain of a route (all frames serialized
    on the first link, then each subsequent link's last frame plus
    propagation) lower-bounds any schedule's latency; if the floor
    already exceeds the budget, no placement exists (Eqs. 3/4/7).
  - *link capacity*: a family of streams that pairwise must not overlap
    (DET x DET never overlaps; one ECT possibility per parent plus the
    non-sharing DET streams form a second such family) cannot exceed a
    density of 1 on any link over the hyperperiod (Eqs. 1/3/5).  The
    existing demand is read off the slot table, so prudent-reservation
    extras are counted; the candidate contributes its raw wire time — a
    lower bound on its real slots, keeping the test sufficient-only.
  - *pairwise gcd*: two periodic patterns of lengths ``d1``/``d2`` can
    avoid each other iff ``d1 + d2 <= gcd(T1, T2)`` (the exact
    feasibility condition behind
    :func:`repro.core.schedule.earliest_gap_shift`); a violating pair
    (candidate, existing slot) on a shared link is unschedulable under
    every rung (Eq. 5).

* **Constructive accept** — apply the incremental placement primitives
  and run :func:`repro.core.schedule.validate_delta` over the changed
  streams.  An accept therefore ships an *actual validated schedule*;
  soundness is by construction, not by approximation.  Sharing TCT
  admits use :func:`repro.core.incremental.add_shared_tct_stream`
  (a new sharing stream only adds its own prudent-reservation extras).

Anything else is **inconclusive** and falls through to the solver
ladder.  Because the constructive attempt *is* the incremental rung's
computation (with delta-validation instead of a full pass), a fall
through also proves the incremental rung would fail — the ladder may
skip straight to the re-solve rungs.

All arithmetic is exact: integer nanoseconds and
:class:`fractions.Fraction` densities, never floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.incremental import (
    add_ect_stream,
    add_shared_tct_stream,
    add_tct_stream,
    affected_sharing_streams,
    remove_stream,
)
from repro.core.probabilistic import expand_ect
from repro.core.schedule import (
    InfeasibleError,
    NetworkSchedule,
    ScheduleError,
    validate_delta,
)
from repro.model.stream import Stream, StreamError, StreamType, may_overlap
from repro.service.requests import (
    AdmissionRequest,
    AdmitEct,
    AdmitTct,
    Remove,
)

#: Verdicts of one fast-path evaluation.
ACCEPT = "accept"
REJECT = "reject"
INCONCLUSIVE = "inconclusive"

#: Rung name the admission service reports for fast-path decisions.
RUNG_FASTPATH = "fastpath"


@dataclass(frozen=True)
class FastPathResult:
    """Outcome of :func:`evaluate` on one request batch.

    ``schedule`` is populated only for :data:`ACCEPT` — the already
    delta-validated schedule with the batch applied, ready to publish.

    ``subsumes_incremental`` is set on an :data:`INCONCLUSIVE` verdict
    whose constructive attempt ran and failed: the attempt *is* the
    incremental rung's computation (same deterministic primitives; the
    only difference, delta- vs full-validation, can only fail on a
    subset of the full check), so the ladder may skip the incremental
    rung — it would fail identically.
    """

    verdict: str
    reason: str
    schedule: Optional[NetworkSchedule] = None
    subsumes_incremental: bool = False

    @property
    def conclusive(self) -> bool:
        return self.verdict != INCONCLUSIVE


def evaluate(
    schedule: NetworkSchedule,
    batch: Sequence[AdmissionRequest],
    guard_margin_ns: int = 0,
    reservation_mode: str = "paper",
) -> FastPathResult:
    """Decide a batch analytically, or fall through.

    Ordering is tuned for the common case: the e2e floor (microseconds,
    placement-free) screens first, then the constructive attempt runs.
    The heavier capacity/gcd analysis only runs after a constructive
    *failure* — it checks necessary conditions, so it can never
    contradict a constructive success, and skipping it on the accept
    path costs nothing but time.
    """
    try:
        removed = _removed_names(schedule, batch)
        probes = _probe_streams(schedule, batch)
    except (StreamError, ValueError, KeyError) as exc:
        return FastPathResult(INCONCLUSIVE, f"cannot resolve batch: {exc}")
    for probe in probes:
        reason = screen_route(probe)
        if reason is not None:
            return FastPathResult(REJECT, reason)
    try:
        placed, changed = _apply_batch(
            schedule, batch, guard_margin_ns, reservation_mode
        )
        validate_delta(placed, changed)
    except (InfeasibleError, ScheduleError, StreamError, ValueError,
            KeyError) as exc:
        reason = _capacity_reject(schedule, probes, removed) or _gcd_reject(
            schedule, probes, removed
        )
        if reason is not None:
            return FastPathResult(REJECT, reason)
        return FastPathResult(
            INCONCLUSIVE, f"constructive placement failed: {exc}",
            subsumes_incremental=True,
        )
    return FastPathResult(
        ACCEPT, "constructive placement delta-validated", placed
    )


def screen_route(stream: Stream) -> Optional[str]:
    """Route-level conclusive-reject check for one resolved stream.

    The e2e-floor argument needs no schedule state at all — only the
    route — so callers that know the route but not the owning store
    (the cluster coordinator, before splitting a cross-shard request)
    can reject analytically before any two-phase machinery spins up.
    Returns a reason string, or ``None`` when the floor fits.
    """
    floor = _latency_floor_ns(stream)
    if floor > stream.e2e_ns:
        return (
            f"e2e-floor: {stream.name} needs at least {floor} ns of wire "
            f"time over {len(stream.path)} hops but the budget is "
            f"{stream.e2e_ns} ns"
        )
    return None


# ----------------------------------------------------------------------
# conclusive rejection: necessary conditions, exactly evaluated
# ----------------------------------------------------------------------
def _removed_names(
    schedule: NetworkSchedule, batch: Sequence[AdmissionRequest]
) -> Set[str]:
    removed = {r.name for r in batch if isinstance(r, Remove)}
    if not removed:
        return removed
    # removing an ECT retires its possibility streams too
    removed |= {
        s.name for s in schedule.streams
        if s.parent is not None and s.parent in removed
    }
    return removed


def _probe_streams(
    schedule: NetworkSchedule, batch: Sequence[AdmissionRequest]
) -> List[Stream]:
    """One resolved stream per admit: the DET stream itself, or a
    single representative ECT possibility (they all share route,
    length, and period — one stands for the family)."""
    probes: List[Stream] = []
    for request in batch:
        if isinstance(request, AdmitTct):
            probes.append(request.requirement.resolve(schedule.topology))
        elif isinstance(request, AdmitEct):
            probes.append(expand_ect(request.ect, schedule.topology)[0])
    return probes


def _wire_ns(stream: Stream, link) -> List[int]:
    """Raw per-frame wire times of one message on one link — a lower
    bound on the real slot durations (guard margin, alignment rounding
    and the probabilistic blocking pad only inflate them)."""
    return [link.transmission_ns(b) for b in stream.wire_bytes_per_frame()]


def _latency_floor_ns(stream: Stream) -> int:
    """Lower bound on any schedule's worst-case latency for ``stream``.

    Sequencing (Eq. 3) serializes the whole message on the first link;
    adjacency (Eq. 7) then forces each later link's last frame to start
    after the previous link's last frame is received; reception adds the
    final propagation.  Every term is mandatory under Eqs. 1-7.
    """
    path = stream.path
    wire_first = _wire_ns(stream, path[0])
    total = sum(wire_first)
    for prev, link in zip(path, path[1:]):
        last_wire = _wire_ns(stream, link)[-1]
        total += prev.propagation_ns + last_wire
    total += path[-1].propagation_ns
    return total


def _capacity_reject(
    schedule: NetworkSchedule,
    probes: Sequence[Stream],
    removed: Set[str],
) -> Optional[str]:
    """Per-link density bound over two pairwise-non-overlapping
    families (exact :class:`Fraction` arithmetic)."""
    streams = {s.name: s for s in schedule.streams}
    candidate_links = {link.key for probe in probes for link in probe.path}
    det: Dict[Tuple[str, str], Fraction] = {}
    nonshared: Dict[Tuple[str, str], Fraction] = {}
    prob: Dict[Tuple[str, str], Dict[str, Fraction]] = {}
    for (name, link_key), slots in schedule.slots.items():
        if link_key not in candidate_links or name in removed or not slots:
            continue
        stream = streams[name]
        load = Fraction(
            sum(slot.duration_ns for slot in slots), stream.period_ns
        )
        if stream.type == StreamType.DET:
            det[link_key] = det.get(link_key, Fraction(0)) + load
            if not stream.share:
                nonshared[link_key] = (
                    nonshared.get(link_key, Fraction(0)) + load
                )
        else:
            per_parent = prob.setdefault(link_key, {})
            parent = stream.parent or name
            # possibilities of one parent are interchangeable here;
            # keep the densest representative
            if load > per_parent.get(parent, Fraction(0)):
                per_parent[parent] = load

    for probe in probes:
        for link in probe.path:
            load = Fraction(sum(_wire_ns(probe, link)), probe.period_ns)
            key = link.key
            if probe.type == StreamType.DET:
                det[key] = det.get(key, Fraction(0)) + load
                if not probe.share:
                    nonshared[key] = (
                        nonshared.get(key, Fraction(0)) + load
                    )
            else:
                per_parent = prob.setdefault(key, {})
                parent = probe.parent or probe.name
                if load > per_parent.get(parent, Fraction(0)):
                    per_parent[parent] = load

    for key in candidate_links:
        det_load = det.get(key, Fraction(0))
        if det_load > 1:
            return (
                f"link-capacity: deterministic streams alone need "
                f"{float(det_load):.3f}x of link <{key[0]},{key[1]}>"
            )
        mixed = nonshared.get(key, Fraction(0)) + sum(
            prob.get(key, {}).values(), Fraction(0)
        )
        if mixed > 1:
            return (
                f"link-capacity: non-sharing streams plus one possibility "
                f"per ECT need {float(mixed):.3f}x of link "
                f"<{key[0]},{key[1]}>"
            )
    return None


def _gcd_reject(
    schedule: NetworkSchedule,
    probes: Sequence[Stream],
    removed: Set[str],
) -> Optional[str]:
    """Exact pairwise infeasibility: lengths that cannot fit under the
    gcd of their periods can never avoid each other (Eq. 5)."""
    streams = {s.name: s for s in schedule.streams}
    for probe in probes:
        for link in probe.path:
            min_wire = min(_wire_ns(probe, link))
            for (name, link_key), slots in schedule.slots.items():
                if link_key != link.key or name in removed or not slots:
                    continue
                other = streams[name]
                if may_overlap(probe, other):
                    continue
                for slot in slots:
                    g = gcd(probe.period_ns, slot.period_ns)
                    if min_wire + slot.duration_ns > g:
                        return (
                            f"pairwise-gcd: {probe.name} "
                            f"({min_wire} ns / {probe.period_ns} ns) and "
                            f"{name}[{slot.index}] "
                            f"({slot.duration_ns} ns / {slot.period_ns} ns) "
                            f"can never avoid each other on link "
                            f"<{link.key[0]},{link.key[1]}> "
                            f"(gcd {g} ns)"
                        )
    return None


# ----------------------------------------------------------------------
# constructive acceptance
# ----------------------------------------------------------------------
def _apply_batch(
    schedule: NetworkSchedule,
    batch: Sequence[AdmissionRequest],
    guard_margin_ns: int,
    reservation_mode: str,
) -> Tuple[NetworkSchedule, Set[str]]:
    """Apply the batch with the incremental primitives, deferring all
    validation; returns the result and the changed stream names."""
    current = schedule
    changed: Set[str] = set()
    for request in batch:
        if isinstance(request, AdmitTct):
            stream = request.requirement.resolve(current.topology)
            if stream.share and current.ect_streams:
                current = add_shared_tct_stream(
                    current, stream,
                    guard_margin_ns=guard_margin_ns,
                    reservation_mode=reservation_mode,
                    validate_result=False,
                )
            else:
                current = add_tct_stream(
                    current, stream,
                    guard_margin_ns=guard_margin_ns,
                    validate_result=False,
                )
            changed.add(stream.name)
        elif isinstance(request, AdmitEct):
            affected = affected_sharing_streams(current, request.ect)
            current = add_ect_stream(
                current, request.ect,
                guard_margin_ns=guard_margin_ns,
                reservation_mode=reservation_mode,
                validate_result=False,
            )
            changed.update(s.name for s in affected)
            changed.update(
                s.name for s in current.streams
                if s.parent == request.ect.name
            )
        elif isinstance(request, Remove):
            current = remove_stream(
                current, request.name, validate_result=False
            )
            # removal only deletes slots: remaining constraints are a
            # subset of the already-valid base schedule's
            survivors = {s.name for s in current.streams}
            changed &= survivors
        else:
            raise ValueError(
                f"unsupported request type {type(request).__name__}"
            )
    return current, changed
