"""Benchmark regression tracking over the committed BENCH_*.json files.

The benchmark suite emits machine-readable ``BENCH_admission.json`` /
``BENCH_cluster.json`` payloads (timestamp-free, diffable); committing
them turns each PR's throughput into a trajectory.  This module makes
that trajectory *enforced*: :func:`diff_benchmarks` compares a fresh
payload against the committed baseline and flags any throughput metric
that regressed by more than ``max_regression`` (default 20 %).

Throughput metrics are discovered structurally — every numeric leaf
whose key ends in ``_per_sec``, plus ``speedup`` — so new benchmarks
join the gate the moment they are recorded, without registration.
Higher is better for all of them; a metric present in the baseline but
missing from the fresh run is itself a failure (a silently dropped
benchmark is not an improvement).

``repro bench diff BASELINE CURRENT`` renders the comparison and exits
nonzero on regression; CI runs it after the benchmark jobs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "BenchDelta",
    "collect_throughput_metrics",
    "diff_benchmarks",
    "format_bench_diff",
    "load_bench",
    "split_failures",
]

#: A numeric leaf is a tracked throughput metric when its key ends in
#: one of these (``speedup`` is the cluster-vs-single multiple).
_THROUGHPUT_SUFFIXES = ("_per_sec", "speedup")


def load_bench(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def collect_throughput_metrics(
    data: object, prefix: str = ""
) -> Dict[str, float]:
    """Flatten the higher-is-better numeric leaves of a BENCH payload.

    Returns ``{"dotted.path": value}`` for every int/float leaf whose
    final key component ends in ``_per_sec`` or is ``speedup``.
    """
    metrics: Dict[str, float] = {}
    if isinstance(data, dict):
        for key, value in sorted(data.items()):
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                metrics.update(collect_throughput_metrics(value, path))
            elif isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                if any(str(key).endswith(s) for s in _THROUGHPUT_SUFFIXES):
                    metrics[path] = float(value)
    elif isinstance(data, list):
        for index, item in enumerate(data):
            metrics.update(
                collect_throughput_metrics(item, f"{prefix}[{index}]")
            )
    return metrics


@dataclass(frozen=True)
class BenchDelta:
    """One metric's baseline-vs-current comparison."""

    metric: str
    baseline: float
    current: float  # NaN-free: missing metrics use status, not sentinel
    ratio: float
    status: str  # "ok" | "improved" | "regressed" | "missing" | "new"

    @property
    def failed(self) -> bool:
        return self.status in ("regressed", "missing")

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": self.ratio,
            "status": self.status,
        }


def diff_benchmarks(
    baseline: Dict,
    current: Dict,
    max_regression: float = 0.20,
) -> List[BenchDelta]:
    """Compare two BENCH payloads metric-by-metric.

    A metric fails when ``current < baseline * (1 - max_regression)``
    or when it vanished from the current payload.  Improvements beyond
    the same margin are labelled ``improved`` (a nudge to refresh the
    committed baseline).  Metrics only in the current payload are
    ``new`` and never fail.
    """
    if not 0.0 <= max_regression < 1.0:
        raise ValueError(
            f"max_regression must be in [0, 1), got {max_regression}"
        )
    base_metrics = collect_throughput_metrics(baseline)
    curr_metrics = collect_throughput_metrics(current)
    deltas = []
    for metric in sorted(set(base_metrics) | set(curr_metrics)):
        if metric not in curr_metrics:
            deltas.append(BenchDelta(
                metric=metric, baseline=base_metrics[metric],
                current=0.0, ratio=0.0, status="missing",
            ))
            continue
        if metric not in base_metrics:
            deltas.append(BenchDelta(
                metric=metric, baseline=0.0,
                current=curr_metrics[metric], ratio=1.0, status="new",
            ))
            continue
        base = base_metrics[metric]
        curr = curr_metrics[metric]
        ratio = curr / base if base else 1.0
        if ratio < 1.0 - max_regression:
            status = "regressed"
        elif ratio > 1.0 + max_regression:
            status = "improved"
        else:
            status = "ok"
        deltas.append(BenchDelta(
            metric=metric, baseline=base, current=curr,
            ratio=ratio, status=status,
        ))
    return deltas


def format_bench_diff(
    deltas: Sequence[BenchDelta], max_regression: float = 0.20
) -> str:
    """Human-readable comparison table (the ``repro bench diff`` output)."""
    header = (f"{'metric':<44} {'baseline':>12} {'current':>12} "
              f"{'ratio':>8} {'status':>10}")
    lines = [header, "-" * len(header)]
    for delta in deltas:
        baseline = "-" if delta.status == "new" else f"{delta.baseline:g}"
        current = "-" if delta.status == "missing" else f"{delta.current:g}"
        ratio = (
            "-" if delta.status in ("missing", "new")
            else f"{delta.ratio:.3f}"
        )
        status = delta.status.upper() if delta.failed else delta.status
        lines.append(
            f"{delta.metric:<44} {baseline:>12} {current:>12} "
            f"{ratio:>8} {status:>10}"
        )
    failed = [d for d in deltas if d.failed]
    lines.append("")
    if failed:
        lines.append(
            f"FAIL: {len(failed)} metric(s) regressed beyond "
            f"{max_regression:.0%} (or went missing)"
        )
    else:
        lines.append(
            f"ok: no metric regressed beyond {max_regression:.0%}"
        )
    return "\n".join(lines)


def split_failures(
    deltas: Sequence[BenchDelta],
) -> Tuple[List[BenchDelta], List[BenchDelta]]:
    """(failed, passed) partition of a diff."""
    failed = [d for d in deltas if d.failed]
    passed = [d for d in deltas if not d.failed]
    return failed, passed
