"""Unified telemetry export: Prometheus text, JSON, and trace summaries.

One module turns the in-process telemetry objects into operator-facing
formats:

* :func:`to_prometheus` — the text exposition format (version 0.0.4) of
  a :class:`~repro.service.metrics.MetricsRegistry`: counters become
  ``*_total`` counters, gauges stay gauges, histograms export natively
  (cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``) with
  ``_p50``/``_p99``/``_p999``/``_min``/``_max`` companion gauges so the
  percentiles are scrapeable without PromQL quantile estimation.
* :func:`cluster_to_prometheus` — the same exposition over a whole
  cluster: every shard's registry is labelled ``shard="..."`` and the
  families are merged so each (HELP, TYPE) appears exactly once —
  per-rung, per-shard admission latency in a single scrape.
* :func:`summarize_spans` / :func:`format_span_summary` — per-span-name
  latency distributions (count, mean, p50, p99) from a span list, with
  a dedicated per-rung breakdown for admission traces — the table
  ``repro trace summarize`` prints.
* :func:`render_trace_tree` — a trace forest as an indented tree
  (parent links reconstructed from ``parent_id``), the ``repro trace
  tree`` / ``repro trace cluster`` view of a distributed admission.
* :func:`frame_journeys` — reconstruct each simulated frame's per-hop
  timeline (enqueue → transmit → deliver per link) from the simulator's
  frame events, the raw material of the paper's Fig. 14 per-hop delay
  analysis.

All percentiles delegate to :func:`repro.obs.histogram.nearest_rank`,
the repo's single percentile implementation.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.histogram import nearest_rank
from repro.obs.trace import Span

__all__ = [
    "cluster_to_prometheus",
    "format_span_summary",
    "frame_journeys",
    "per_hop_delays",
    "prometheus_label_value",
    "prometheus_name",
    "render_trace_tree",
    "summarize_spans",
    "to_prometheus",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Span name the admission service uses for ladder rung attempts.
RUNG_SPAN = "admission.rung"
#: Event names the simulator emits per frame per hop.
FRAME_EVENTS = ("frame.enqueue", "frame.transmit", "frame.deliver",
                "frame.drop")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def prometheus_name(name: str, namespace: str = "repro") -> str:
    """A dotted registry key as a legal Prometheus metric name."""
    flat = _NAME_OK.sub("_", name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return f"{namespace}_{flat}" if namespace else flat


def prometheus_label_value(value: object) -> str:
    """Escape a label value per the exposition format.

    Backslash, double-quote, and newline are the three characters the
    format requires escaping inside ``label="value"``; everything else
    passes through (label values are full UTF-8).
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    """Sample value formatting: integers stay integral, floats use repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _fmt_le(bound: object) -> str:
    """Bucket upper-bound formatting: short, stable, "+Inf" passthrough."""
    if bound == "+Inf":
        return "+Inf"
    return f"{float(bound):.6g}"


def _labels(pairs: Mapping[str, object]) -> str:
    """Render a label set (sorted by key; empty set renders nothing)."""
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{prometheus_label_value(value)}"'
        for key, value in sorted(pairs.items())
    )
    return "{" + inner + "}"


#: The percentile companion gauges exported next to every histogram.
_PCTL_COMPANIONS = ("p50", "p99", "p999")


def _render_exposition(
    snapshots: Sequence[Tuple[Dict[str, object], Dict]],
    namespace: str,
) -> str:
    """Exposition text over one or more labelled registry snapshots.

    ``snapshots`` is ``[(labels, registry.to_dict()), ...]``.  Families
    are the union across snapshots; each family's HELP/TYPE appears
    once, followed by one sample (set) per snapshot that carries it —
    the invariant a real scrape enforces.
    """
    lines: List[str] = []

    def family(kind: str) -> List[Tuple[str, List[Tuple[Dict, object]]]]:
        names: Dict[str, List[Tuple[Dict, object]]] = {}
        for labels, data in snapshots:
            for name, value in data.get(kind, {}).items():
                names.setdefault(name, []).append((labels, value))
        return sorted(names.items())

    for name, series in family("counters"):
        metric = prometheus_name(name, namespace) + "_total"
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        for labels, value in series:
            lines.append(f"{metric}{_labels(labels)} {_fmt(value)}")

    for name, series in family("gauges"):
        metric = prometheus_name(name, namespace)
        lines.append(f"# HELP {metric} repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in series:
            lines.append(f"{metric}{_labels(labels)} {_fmt(value)}")

    for name, series in family("histograms"):
        metric = prometheus_name(name, namespace)
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} histogram")
        for labels, summary in series:
            cumulative = 0
            for le, bucket_count in summary.get("buckets", []):
                if le == "+Inf":
                    continue  # folded into the final +Inf sample below
                cumulative += int(bucket_count)
                bucket_labels = dict(labels)
                bucket_labels["le"] = _fmt_le(le)
                lines.append(
                    f"{metric}_bucket{_labels(bucket_labels)} {cumulative}"
                )
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            lines.append(
                f"{metric}_bucket{_labels(inf_labels)} "
                f"{_fmt(summary['count'])}"
            )
            lines.append(
                f"{metric}_sum{_labels(labels)} {_fmt(summary['sum'])}"
            )
            lines.append(
                f"{metric}_count{_labels(labels)} {_fmt(summary['count'])}"
            )
        for key in _PCTL_COMPANIONS + ("min", "max"):
            companion = f"{metric}_{key}"
            lines.append(
                f"# HELP {companion} repro histogram {name} {key}"
            )
            lines.append(f"# TYPE {companion} gauge")
            for labels, summary in series:
                lines.append(
                    f"{companion}{_labels(labels)} "
                    f"{_fmt(summary.get(key, 0.0))}"
                )

    return "\n".join(lines) + "\n"


def to_prometheus(
    registry,
    namespace: str = "repro",
    labels: Optional[Dict[str, object]] = None,
) -> str:
    """Render a metrics registry in the Prometheus text format.

    The snapshot comes from ``registry.to_dict()`` so one consistent
    view is exported even while writers keep observing.  ``labels``
    (e.g. ``{"shard": "s0"}``) are attached to every sample.
    """
    return _render_exposition([(dict(labels or {}), registry.to_dict())],
                              namespace)


def cluster_to_prometheus(
    shard_snapshots: Mapping[str, Dict],
    cluster_snapshot: Optional[Dict] = None,
    namespace: str = "repro",
) -> str:
    """One exposition over a whole cluster's registries.

    ``shard_snapshots`` maps shard name → that shard's registry
    ``to_dict()`` payload; every sample gets a ``shard`` label.  The
    coordinator's own (unlabelled) registry snapshot rides along when
    given, so cluster.* counters and per-shard rung latencies share one
    scrape with each metric family declared exactly once.
    """
    snapshots: List[Tuple[Dict[str, object], Dict]] = [
        ({"shard": name}, data)
        for name, data in sorted(shard_snapshots.items())
    ]
    if cluster_snapshot is not None:
        snapshots.append(({}, cluster_snapshot))
    return _render_exposition(snapshots, namespace)


# ----------------------------------------------------------------------
# trace summaries
# ----------------------------------------------------------------------
def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted values, ``q`` in [0, 100]."""
    if not ordered:
        return 0.0
    if q <= 0:
        return ordered[0]
    return nearest_rank(ordered, min(q, 100) / 100)


def _distribution(durations_ns: List[int]) -> Dict[str, float]:
    ordered = sorted(d / 1e6 for d in durations_ns)  # ns -> ms
    return {
        "count": len(ordered),
        "mean_ms": sum(ordered) / len(ordered) if ordered else 0.0,
        "p50_ms": _percentile(ordered, 50),
        "p99_ms": _percentile(ordered, 99),
        "max_ms": ordered[-1] if ordered else 0.0,
    }


def summarize_spans(spans: Iterable[Span], dropped: int = 0) -> Dict:
    """Aggregate a span list into per-name and per-rung distributions.

    Returns ``{"spans": {name: dist}, "rungs": {rung: dist},
    "dropped_spans": n}`` where each distribution carries
    count/mean/p50/p99/max in milliseconds.  Point events (zero
    duration) are counted under ``spans`` but do not pollute the
    latency numbers of interval spans sharing their name.  Pass the
    tracer's ``dropped`` count so readers see when the ring buffer
    evicted spans — a nonzero value means every distribution here is
    missing its oldest observations.
    """
    by_name: Dict[str, List[int]] = {}
    by_rung: Dict[str, List[int]] = {}
    for span in spans:
        if span.end_ns is None:
            continue
        by_name.setdefault(span.name, []).append(span.duration_ns)
        if span.name == RUNG_SPAN:
            rung = str(span.attributes.get("rung", "?"))
            by_rung.setdefault(rung, []).append(span.duration_ns)
    return {
        "spans": {
            name: _distribution(durations)
            for name, durations in sorted(by_name.items())
        },
        "rungs": {
            rung: _distribution(durations)
            for rung, durations in sorted(by_rung.items())
        },
        "dropped_spans": dropped,
    }


def format_span_summary(summary: Dict) -> str:
    """Human-readable table of :func:`summarize_spans` output."""
    header = (f"{'span':<28} {'count':>7} {'mean_ms':>10} "
              f"{'p50_ms':>10} {'p99_ms':>10} {'max_ms':>10}")
    lines = [header, "-" * len(header)]
    for name, dist in summary["spans"].items():
        lines.append(
            f"{name:<28} {dist['count']:>7} {dist['mean_ms']:>10.3f} "
            f"{dist['p50_ms']:>10.3f} {dist['p99_ms']:>10.3f} "
            f"{dist['max_ms']:>10.3f}"
        )
    if summary["rungs"]:
        lines.append("")
        lines.append("per-rung solve latency:")
        for rung, dist in summary["rungs"].items():
            lines.append(
                f"  {rung:<26} {dist['count']:>7} {dist['mean_ms']:>10.3f} "
                f"{dist['p50_ms']:>10.3f} {dist['p99_ms']:>10.3f} "
                f"{dist['max_ms']:>10.3f}"
            )
    if summary.get("dropped_spans"):
        lines.append("")
        lines.append(
            f"WARNING: {summary['dropped_spans']} span(s) dropped — the "
            f"tracer ring overflowed; oldest spans are missing from "
            f"every distribution above"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# trace tree rendering
# ----------------------------------------------------------------------
#: Attributes rendered by default in trace trees: the stable,
#: identity-carrying ones (no latencies, no ids — golden-file safe).
TREE_ATTRS = ("op", "stream", "shard", "rung", "outcome", "accepted",
              "reason", "committed")


def render_trace_tree(
    spans: Iterable[Span],
    attr_keys: Sequence[str] = TREE_ATTRS,
    durations: bool = False,
) -> str:
    """Render a span list as one indented tree per trace.

    Parent links are reconstructed from ``parent_id``; children sort by
    ``(start_ns, span_id)`` so the rendering is deterministic under a
    fixed clock.  Only ``attr_keys`` attributes are shown (in that
    order) — the default set excludes everything timing-dependent, so
    the output is stable enough to pin as a golden file.  Spans whose
    parent is missing (evicted from the ring) render as roots marked
    ``(orphaned)``.
    """
    spans = list(spans)
    ids = {span.span_id for span in spans}
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: (s.start_ns, s.span_id))

    lines: List[str] = []

    def describe(span: Span) -> str:
        parts = [span.name]
        for key in attr_keys:
            if key in span.attributes:
                parts.append(f"{key}={span.attributes[key]}")
        if durations and span.end_ns is not None:
            parts.append(f"dur={span.duration_ns / 1e6:.3f}ms")
        if span.parent_id is not None and span.parent_id not in ids:
            parts.append("(orphaned)")
        return " ".join(parts)

    def walk(span: Span, depth: int) -> None:
        lines.append("  " * depth + describe(span))
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    roots = children.get(None, [])
    for index, root in enumerate(
        sorted(roots, key=lambda s: (s.trace_id, s.start_ns, s.span_id))
    ):
        if index:
            lines.append("")
        lines.append(f"trace {root.trace_id}:")
        walk(root, 1)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# per-hop frame journeys (Fig. 14 raw material)
# ----------------------------------------------------------------------
def frame_journeys(
    spans: Iterable[Span], stream: Optional[str] = None
) -> Dict[int, List[Tuple[str, str, int]]]:
    """Reconstruct each frame's hop-by-hop timeline from frame events.

    Returns ``{frame_id: [(event, link, ts_ns), ...]}`` sorted by
    timestamp, restricted to ``stream`` when given.  Per-hop queueing
    delay is ``transmit - enqueue`` on the same link; per-hop total is
    ``deliver - enqueue``.
    """
    journeys: Dict[int, List[Tuple[str, str, int]]] = {}
    for span in spans:
        if span.name not in FRAME_EVENTS:
            continue
        if stream is not None and span.attributes.get("stream") != stream:
            continue
        frame_id = int(span.attributes["frame_id"])
        link = str(span.attributes.get("link", "?"))
        journeys.setdefault(frame_id, []).append(
            (span.name, link, span.start_ns)
        )
    for steps in journeys.values():
        steps.sort(key=lambda step: step[2])
    return journeys


def per_hop_delays(
    spans: Iterable[Span], stream: Optional[str] = None
) -> Dict[str, List[int]]:
    """Per-link ``deliver - enqueue`` delays (ns) from frame events.

    The distribution Fig. 14's per-hop analysis plots: how long a frame
    of ``stream`` spent at each egress port, queueing included.
    """
    delays: Dict[str, List[int]] = {}
    for steps in frame_journeys(spans, stream).values():
        enqueued: Dict[str, int] = {}
        for event, link, ts_ns in steps:
            if event == "frame.enqueue":
                enqueued[link] = ts_ns
            elif event == "frame.deliver" and link in enqueued:
                delays.setdefault(link, []).append(ts_ns - enqueued.pop(link))
    return {link: sorted(values) for link, values in sorted(delays.items())}
