"""Unified telemetry export: Prometheus text, JSON, and trace summaries.

One module turns the in-process telemetry objects into operator-facing
formats:

* :func:`to_prometheus` — the text exposition format (version 0.0.4) of
  a :class:`~repro.service.metrics.MetricsRegistry`: counters become
  ``*_total`` counters, gauges stay gauges, histograms export as
  summaries (p50/p90/p99 quantiles plus ``_sum``/``_count``) with
  ``_min``/``_max`` companion gauges.
* :func:`summarize_spans` / :func:`format_span_summary` — per-span-name
  latency distributions (count, mean, p50, p99) from a span list, with
  a dedicated per-rung breakdown for admission traces — the table
  ``repro trace summarize`` prints.
* :func:`frame_journeys` — reconstruct each simulated frame's per-hop
  timeline (enqueue → transmit → deliver per link) from the simulator's
  frame events, the raw material of the paper's Fig. 14 per-hop delay
  analysis.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import Span

__all__ = [
    "format_span_summary",
    "frame_journeys",
    "per_hop_delays",
    "prometheus_name",
    "summarize_spans",
    "to_prometheus",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Span name the admission service uses for ladder rung attempts.
RUNG_SPAN = "admission.rung"
#: Event names the simulator emits per frame per hop.
FRAME_EVENTS = ("frame.enqueue", "frame.transmit", "frame.deliver",
                "frame.drop")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def prometheus_name(name: str, namespace: str = "repro") -> str:
    """A dotted registry key as a legal Prometheus metric name."""
    flat = _NAME_OK.sub("_", name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return f"{namespace}_{flat}" if namespace else flat


def _fmt(value: float) -> str:
    """Sample value formatting: integers stay integral, floats use repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry, namespace: str = "repro") -> str:
    """Render a metrics registry in the Prometheus text format.

    The snapshot comes from ``registry.to_dict()`` so one consistent
    view is exported even while writers keep observing.
    """
    data = registry.to_dict()
    lines: List[str] = []

    for name, value in data["counters"].items():
        metric = prometheus_name(name, namespace) + "_total"
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")

    for name, value in data["gauges"].items():
        metric = prometheus_name(name, namespace)
        lines.append(f"# HELP {metric} repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")

    for name, summary in data["histograms"].items():
        metric = prometheus_name(name, namespace)
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in (("0.5", "p50"), ("0.9", "p90"),
                              ("0.99", "p99")):
            lines.append(
                f'{metric}{{quantile="{quantile}"}} {_fmt(summary[key])}'
            )
        lines.append(f"{metric}_sum {_fmt(summary['sum'])}")
        lines.append(f"{metric}_count {_fmt(summary['count'])}")
        for bound in ("min", "max"):
            companion = f"{metric}_{bound}"
            lines.append(f"# HELP {companion} repro histogram {name} {bound}")
            lines.append(f"# TYPE {companion} gauge")
            lines.append(f"{companion} {_fmt(summary[bound])}")

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# trace summaries
# ----------------------------------------------------------------------
def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted values, ``q`` in [0, 100]."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


def _distribution(durations_ns: List[int]) -> Dict[str, float]:
    ordered = sorted(d / 1e6 for d in durations_ns)  # ns -> ms
    return {
        "count": len(ordered),
        "mean_ms": sum(ordered) / len(ordered) if ordered else 0.0,
        "p50_ms": _percentile(ordered, 50),
        "p99_ms": _percentile(ordered, 99),
        "max_ms": ordered[-1] if ordered else 0.0,
    }


def summarize_spans(spans: Iterable[Span]) -> Dict:
    """Aggregate a span list into per-name and per-rung distributions.

    Returns ``{"spans": {name: dist}, "rungs": {rung: dist}}`` where
    each distribution carries count/mean/p50/p99/max in milliseconds.
    Point events (zero duration) are counted under ``spans`` but do not
    pollute the latency numbers of interval spans sharing their name.
    """
    by_name: Dict[str, List[int]] = {}
    by_rung: Dict[str, List[int]] = {}
    for span in spans:
        if span.end_ns is None:
            continue
        by_name.setdefault(span.name, []).append(span.duration_ns)
        if span.name == RUNG_SPAN:
            rung = str(span.attributes.get("rung", "?"))
            by_rung.setdefault(rung, []).append(span.duration_ns)
    return {
        "spans": {
            name: _distribution(durations)
            for name, durations in sorted(by_name.items())
        },
        "rungs": {
            rung: _distribution(durations)
            for rung, durations in sorted(by_rung.items())
        },
    }


def format_span_summary(summary: Dict) -> str:
    """Human-readable table of :func:`summarize_spans` output."""
    header = (f"{'span':<28} {'count':>7} {'mean_ms':>10} "
              f"{'p50_ms':>10} {'p99_ms':>10} {'max_ms':>10}")
    lines = [header, "-" * len(header)]
    for name, dist in summary["spans"].items():
        lines.append(
            f"{name:<28} {dist['count']:>7} {dist['mean_ms']:>10.3f} "
            f"{dist['p50_ms']:>10.3f} {dist['p99_ms']:>10.3f} "
            f"{dist['max_ms']:>10.3f}"
        )
    if summary["rungs"]:
        lines.append("")
        lines.append("per-rung solve latency:")
        for rung, dist in summary["rungs"].items():
            lines.append(
                f"  {rung:<26} {dist['count']:>7} {dist['mean_ms']:>10.3f} "
                f"{dist['p50_ms']:>10.3f} {dist['p99_ms']:>10.3f} "
                f"{dist['max_ms']:>10.3f}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# per-hop frame journeys (Fig. 14 raw material)
# ----------------------------------------------------------------------
def frame_journeys(
    spans: Iterable[Span], stream: Optional[str] = None
) -> Dict[int, List[Tuple[str, str, int]]]:
    """Reconstruct each frame's hop-by-hop timeline from frame events.

    Returns ``{frame_id: [(event, link, ts_ns), ...]}`` sorted by
    timestamp, restricted to ``stream`` when given.  Per-hop queueing
    delay is ``transmit - enqueue`` on the same link; per-hop total is
    ``deliver - enqueue``.
    """
    journeys: Dict[int, List[Tuple[str, str, int]]] = {}
    for span in spans:
        if span.name not in FRAME_EVENTS:
            continue
        if stream is not None and span.attributes.get("stream") != stream:
            continue
        frame_id = int(span.attributes["frame_id"])
        link = str(span.attributes.get("link", "?"))
        journeys.setdefault(frame_id, []).append(
            (span.name, link, span.start_ns)
        )
    for steps in journeys.values():
        steps.sort(key=lambda step: step[2])
    return journeys


def per_hop_delays(
    spans: Iterable[Span], stream: Optional[str] = None
) -> Dict[str, List[int]]:
    """Per-link ``deliver - enqueue`` delays (ns) from frame events.

    The distribution Fig. 14's per-hop analysis plots: how long a frame
    of ``stream`` spent at each egress port, queueing included.
    """
    delays: Dict[str, List[int]] = {}
    for steps in frame_journeys(spans, stream).values():
        enqueued: Dict[str, int] = {}
        for event, link, ts_ns in steps:
            if event == "frame.enqueue":
                enqueued[link] = ts_ns
            elif event == "frame.deliver" and link in enqueued:
                delays.setdefault(link, []).append(ts_ns - enqueued.pop(link))
    return {link: sorted(values) for link, values in sorted(delays.items())}
