"""Structured event journal: the forensic record of runtime decisions.

Counters answer "how many"; the event log answers "which, when, and
why".  An :class:`EventLog` records :class:`Event` objects — a kind, an
integer-ns timestamp, a monotone sequence number, optional trace
correlation, and JSON-able attributes — into a bounded ring, exactly
the :class:`~repro.obs.Tracer` design: injectable clock, oldest-first
eviction with a drop count, a :data:`NULL_EVENT_LOG` no-op for
uninstrumented runs.

Event kinds the runtime emits (the journal schema):

==========================  ============================================
kind                        attributes
==========================  ============================================
``admission.decision``      ``request``, ``op``, ``accepted``, ``rung``,
                            ``reason`` (rejections), ``latency_ms``,
                            ``store_version``
``admission.cas_retry``     ``attempt``, ``expected_version``
``admission.cas_exhausted`` ``attempts``, ``requests``
``solver.abandoned``        ``timeout_s`` — a solver thread outlived
                            its rung budget and was orphaned
``twophase.rollback``       ``shard``, ``streams`` — a prepared shard
                            was republished after a failed commit
``twophase.abort``          ``reason``, ``attempt``, ``shards``
==========================  ============================================

Events serialize one-per-line (JSONL) via :func:`save_events` /
:func:`load_events`; ``repro events tail|query`` reads them back.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional

__all__ = [
    "Event",
    "EventLog",
    "NULL_EVENT_LOG",
    "NullEventLog",
    "filter_events",
    "load_events",
    "save_events",
]


@dataclass
class Event:
    """One journal entry.  Attribute values must be JSON-able scalars."""

    seq: int
    kind: str
    ts_ns: int
    trace_id: Optional[int] = None
    span_id: Optional[int] = None
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "seq": self.seq, "kind": self.kind, "ts_ns": self.ts_ns,
        }
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        if self.span_id is not None:
            data["span_id"] = self.span_id
        if self.attributes:
            data["attributes"] = self.attributes
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Event":
        return cls(
            seq=int(data["seq"]),
            kind=str(data["kind"]),
            ts_ns=int(data["ts_ns"]),
            trace_id=(
                int(data["trace_id"]) if "trace_id" in data else None
            ),
            span_id=int(data["span_id"]) if "span_id" in data else None,
            attributes=dict(data.get("attributes", {})),
        )


class EventLog:
    """Bounded in-process event journal with a monotone sequence.

    ``clock`` must return integer nanoseconds (default
    :func:`time.perf_counter_ns`); once the ring is full the oldest
    event is dropped and counted in :attr:`dropped` — the sequence
    numbers make the gap visible to readers.
    """

    #: Same contract as ``Tracer.enabled``: hot paths may skip argument
    #: packing entirely when the journal is the null singleton.
    enabled = True

    def __init__(
        self,
        clock: Callable[[], int] = time.perf_counter_ns,
        max_events: int = 65536,
    ) -> None:
        if max_events < 1:
            raise ValueError("event log needs room for at least one event")
        self._clock = clock
        self._ring: Deque[Event] = deque(maxlen=max_events)
        self._max_events = max_events
        self._lock = threading.Lock()
        self._seq = 0
        self.dropped = 0

    def emit(
        self,
        kind: str,
        ts_ns: Optional[int] = None,
        trace_id: Optional[int] = None,
        span_id: Optional[int] = None,
        **attributes: object,
    ) -> Event:
        """Append one event; sequence numbers are assigned under lock."""
        stamp = self._clock() if ts_ns is None else ts_ns
        with self._lock:
            self._seq += 1
            event = Event(
                seq=self._seq, kind=kind, ts_ns=stamp,
                trace_id=trace_id, span_id=span_id,
                attributes=dict(attributes),
            )
            if len(self._ring) == self._max_events:
                self.dropped += 1
            self._ring.append(event)
        return event

    def events(self) -> List[Event]:
        """Recorded events, oldest first (bounded by ``max_events``)."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)


class NullEventLog(EventLog):
    """The disabled journal: every operation is a no-op."""

    enabled = False
    dropped = 0

    def __init__(self) -> None:  # no ring, no clock, no locks
        pass

    def emit(self, kind, ts_ns=None, trace_id=None, span_id=None,
             **attributes):
        return None

    def events(self) -> List[Event]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: Process-wide disabled journal; safe to share (it holds no state).
NULL_EVENT_LOG = NullEventLog()


def filter_events(
    events: Iterable[Event],
    kind: Optional[str] = None,
    trace_id: Optional[int] = None,
    since_seq: int = 0,
    **attr_equals: object,
) -> List[Event]:
    """Events matching every given criterion, in journal order.

    ``kind`` may be an exact kind or a ``prefix.`` (trailing dot) to
    select a family, e.g. ``"twophase."``; ``attr_equals`` matches
    attribute values exactly.
    """
    selected = []
    for event in events:
        if event.seq <= since_seq:
            continue
        if kind is not None:
            if kind.endswith("."):
                if not event.kind.startswith(kind):
                    continue
            elif event.kind != kind:
                continue
        if trace_id is not None and event.trace_id != trace_id:
            continue
        if any(
            event.attributes.get(key) != value
            for key, value in attr_equals.items()
        ):
            continue
        selected.append(event)
    return selected


def save_events(path: str, events: Iterable[Event]) -> int:
    """Write events as JSONL; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def load_events(path: str) -> List[Event]:
    """Read a JSONL journal back into :class:`Event` objects."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(Event.from_dict(json.loads(line)))
    return events
