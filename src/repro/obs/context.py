"""Trace context: the two integers that tie a distributed trace together.

A :class:`TraceContext` is the propagation-ready identity of a span —
its ``trace_id`` and ``span_id`` — detached from the span object
itself.  It deliberately exposes exactly the attributes
``Tracer._start`` reads off a ``parent``, so a context can stand in
for a span anywhere a parent is accepted: hand the context of the
coordinator's batch span to a thread-pool worker and every span the
worker opens joins the same trace, even though the worker's own
thread-local span stack is empty.

Two propagation styles are supported by :class:`~repro.obs.Tracer`:

* **Explicit** — pass ``parent=ctx`` to ``span()``/``start_span()``.
* **Ambient** — ``with tracer.use_context(ctx):`` installs the context
  as the thread's fallback parent; spans opened with no explicit
  parent and an empty stack attach to it instead of becoming roots.
  This is what carries a cluster admission across the coordinator's
  ``ThreadPoolExecutor`` fan-out without threading a parent argument
  through every shard-service signature.

Contexts serialize to/from plain dicts (:meth:`TraceContext.to_dict`),
so they can cross process boundaries in JSON if a future frontend
needs them to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["TraceContext"]


@dataclass(frozen=True)
class TraceContext:
    """An immutable (trace_id, span_id) pair usable as a span parent."""

    trace_id: int
    span_id: int

    @classmethod
    def of(cls, span) -> Optional["TraceContext"]:
        """The context of a span-like object, or ``None`` for null spans.

        Accepts anything with ``trace_id``/``span_id`` attributes; the
        null tracer's shared no-op span context has neither, so code
        can capture a context unconditionally and get ``None`` when
        tracing is off.
        """
        trace_id = getattr(span, "trace_id", None)
        span_id = getattr(span, "span_id", None)
        if trace_id is None or span_id is None:
            return None
        return cls(trace_id=int(trace_id), span_id=int(span_id))

    def to_dict(self) -> Dict[str, int]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "TraceContext":
        return cls(
            trace_id=int(data["trace_id"]), span_id=int(data["span_id"])
        )
