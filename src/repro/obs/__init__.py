"""Cross-cutting observability: spans, metrics, events, telemetry export.

The paper's claims are latency *distributions* — per-hop ECT delay
(Fig. 14), admission latency, TCT worst-case impact — so the repro
carries its own tracing layer instead of guessing from end-to-end
numbers:

* :mod:`repro.obs.trace` — nested spans / point events with injectable
  clocks and a ring-buffered in-process exporter; the disabled
  :data:`NULL_TRACER` is a no-op cheap enough for solver hot paths.
* :mod:`repro.obs.context` — :class:`TraceContext`, the (trace_id,
  span_id) pair that carries a trace across thread pools and the
  cluster's two-phase publish (``tracer.use_context``).
* :mod:`repro.obs.histogram` — the log-bucketed mergeable
  :class:`Histogram` behind every latency metric, and
  :func:`nearest_rank`, the repo's single percentile implementation.
* :mod:`repro.obs.events` — the bounded structured event journal
  (:class:`EventLog`) recording admission decisions, CAS retries,
  rollbacks, and solver abandonments as queryable JSONL.
* :mod:`repro.obs.slo` — latency objectives with error budgets
  evaluated from histogram buckets (:func:`evaluate_slos`).
* :mod:`repro.obs.bench` — benchmark regression tracking over the
  committed ``BENCH_*.json`` baselines (:func:`diff_benchmarks`).
* :mod:`repro.obs.export` — Prometheus text exposition (native
  histogram format, per-shard cluster merge), trace summaries and
  tree rendering, and per-hop frame-journey reconstruction.

Instrumentation lives with the instrumented code: the SAT/SMT cores
expose :class:`~repro.smt.sat.SolverStats`, the admission service opens
a span per request with child spans per fallback rung, the cluster
coordinator propagates one trace across its shard fan-out, and the
simulator's egress ports emit per-frame enqueue/transmit/deliver
events.
"""

from repro.obs.bench import (
    BenchDelta,
    collect_throughput_metrics,
    diff_benchmarks,
    format_bench_diff,
    load_bench,
    split_failures,
)
from repro.obs.context import TraceContext
from repro.obs.events import (
    NULL_EVENT_LOG,
    Event,
    EventLog,
    NullEventLog,
    filter_events,
    load_events,
    save_events,
)
from repro.obs.export import (
    cluster_to_prometheus,
    format_span_summary,
    frame_journeys,
    per_hop_delays,
    prometheus_label_value,
    prometheus_name,
    render_trace_tree,
    summarize_spans,
    to_prometheus,
)
from repro.obs.histogram import Histogram, nearest_rank
from repro.obs.slo import (
    DEFAULT_TARGETS,
    FRONTEND_TARGETS,
    SloResult,
    SloTarget,
    evaluate_slos,
    format_slo_report,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer, children_of

__all__ = [
    "BenchDelta",
    "DEFAULT_TARGETS",
    "FRONTEND_TARGETS",
    "Event",
    "EventLog",
    "Histogram",
    "NULL_EVENT_LOG",
    "NULL_TRACER",
    "NullEventLog",
    "NullTracer",
    "SloResult",
    "SloTarget",
    "Span",
    "TraceContext",
    "Tracer",
    "children_of",
    "cluster_to_prometheus",
    "collect_throughput_metrics",
    "diff_benchmarks",
    "evaluate_slos",
    "filter_events",
    "format_bench_diff",
    "format_slo_report",
    "format_span_summary",
    "frame_journeys",
    "load_bench",
    "load_events",
    "nearest_rank",
    "per_hop_delays",
    "prometheus_label_value",
    "prometheus_name",
    "render_trace_tree",
    "save_events",
    "split_failures",
    "summarize_spans",
    "to_prometheus",
]
