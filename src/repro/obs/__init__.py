"""Cross-cutting observability: spans, solver stats, telemetry export.

The paper's claims are latency *distributions* — per-hop ECT delay
(Fig. 14), admission latency, TCT worst-case impact — so the repro
carries its own tracing layer instead of guessing from end-to-end
numbers:

* :mod:`repro.obs.trace` — nested spans / point events with injectable
  clocks and a ring-buffered in-process exporter; the disabled
  :data:`NULL_TRACER` is a no-op cheap enough for solver hot paths.
* :mod:`repro.obs.export` — Prometheus text exposition for the service
  metrics registry, trace summaries (per-rung p50/p99), and per-hop
  frame-journey reconstruction for the simulator's traces.

Instrumentation lives with the instrumented code: the SAT/SMT cores
expose :class:`~repro.smt.sat.SolverStats`, the admission service opens
a span per request with child spans per fallback rung, and the
simulator's egress ports emit per-frame enqueue/transmit/deliver events.
"""

from repro.obs.export import (
    format_span_summary,
    frame_journeys,
    per_hop_delays,
    prometheus_name,
    summarize_spans,
    to_prometheus,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer, children_of

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "children_of",
    "format_span_summary",
    "frame_journeys",
    "per_hop_delays",
    "prometheus_name",
    "summarize_spans",
    "to_prometheus",
]
