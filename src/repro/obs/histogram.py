"""Log-bucketed latency histograms and the shared nearest-rank kernel.

Two things live here because every percentile the repro reports must
mean the same thing:

* :func:`nearest_rank` — THE nearest-rank percentile implementation.
  ``repro.campaign.stats``, ``repro.obs.export``, and the histogram all
  delegate to it, so a p99 from a campaign report, a trace summary, and
  a Prometheus export are computed with identical rank semantics
  (classical nearest-rank: ``ceil(fraction * n)``-th order statistic).
* :class:`Histogram` — thread-safe, log-bucketed, *mergeable* latency
  distribution.  Unlike the v1 reservoir sampler it never forgets an
  observation: every value lands in a geometric bucket (growth factor
  ``2 ** 0.25``, ≤ ~19 % relative error per bucket), so p50/p99/p999
  are exact *to bucket resolution* at any count, two shard registries
  can be merged without bias, and a summary snapshot round-trips
  through JSON losslessly (:meth:`Histogram.from_summary`).

The bucket layout is fixed at import time and shared by every
histogram, which is what makes cross-registry merging a plain
bucket-wise add.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BUCKET_BOUNDS",
    "Histogram",
    "nearest_rank",
]


def nearest_rank(sorted_values: Sequence, fraction: float):
    """Nearest-rank percentile over an ascending-sorted sample.

    ``fraction`` is in ``(0, 1]``; the result is the
    ``ceil(fraction * n)``-th smallest value (classical nearest-rank,
    so p50 of [1, 2, 3, 4] is 2, not an interpolation).  Raises on an
    empty sample — an absent distribution has no percentiles.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if not sorted_values:
        raise ValueError("no samples")
    rank = max(0, math.ceil(fraction * len(sorted_values)) - 1)
    return sorted_values[rank]


def _build_bounds(
    lowest: float = 0.001, highest: float = 1e7, growth: float = 2 ** 0.25
) -> Tuple[float, ...]:
    """Geometric bucket upper bounds covering [lowest, highest]."""
    bounds = [lowest]
    while bounds[-1] < highest:
        bounds.append(bounds[-1] * growth)
    return tuple(bounds)


#: Shared upper bounds (`le`) of every histogram bucket.  In the unit
#: the caller observes in — the service records milliseconds, so the
#: span is 1 ns to ~2.8 hours, wide enough for any latency this repo
#: can produce; values past the top land in a +Inf overflow bucket.
BUCKET_BOUNDS: Tuple[float, ...] = _build_bounds()


class Histogram:
    """Thread-safe log-bucketed distribution with exact aggregates.

    ``count``/``sum``/``min``/``max`` are exact; percentiles are the
    upper bound of the bucket holding the nearest-rank observation,
    clamped to the observed ``[min, max]`` so tiny samples do not
    report a bucket boundary no observation reached.  Memory is O(1):
    one integer per fixed bucket.
    """

    __slots__ = (
        "_buckets", "_overflow", "_count", "_sum", "_min", "_max", "_lock",
    )

    def __init__(self) -> None:
        self._buckets = [0] * len(BUCKET_BOUNDS)
        self._overflow = 0
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(BUCKET_BOUNDS, value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            if index == len(BUCKET_BOUNDS):
                self._overflow += 1
            else:
                self._buckets[index] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    # -- percentile queries --------------------------------------------
    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100], 0.0 when empty."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        if not self._count:
            return 0.0
        if q == 0:
            return self._min if self._min is not None else 0.0
        # rank of the observation nearest-rank semantics select
        rank = max(0, math.ceil(q / 100 * self._count) - 1)
        seen = 0
        for index, bucket_count in enumerate(self._buckets):
            seen += bucket_count
            if rank < seen:
                return self._clamp(BUCKET_BOUNDS[index])
        return self._max if self._max is not None else 0.0  # overflow

    def _clamp(self, boundary: float) -> float:
        """Keep reported boundaries inside the observed value range."""
        low = self._min if self._min is not None else boundary
        high = self._max if self._max is not None else boundary
        return max(low, min(high, boundary))

    def count_over(self, threshold: float) -> int:
        """Observations strictly above ``threshold``.

        Exact when ``threshold`` is a bucket boundary; otherwise the
        count above the next boundary ≥ ``threshold`` (a lower bound on
        the true violation count, never a false alarm) — SLO objectives
        should therefore be read as "snapped up to bucket resolution".
        """
        index = bisect_left(BUCKET_BOUNDS, threshold)
        with self._lock:
            if index >= len(BUCKET_BOUNDS):
                return self._overflow
            return sum(self._buckets[index + 1:]) + self._overflow

    # -- snapshots / merge ---------------------------------------------
    def summary(self) -> Dict[str, object]:
        """One consistent snapshot: aggregates, percentiles, buckets.

        A single lock acquisition covers everything, so a concurrent
        ``observe`` can never yield a summary whose count disagrees
        with its percentiles.  ``buckets`` lists only non-empty buckets
        as ``[le, count]`` pairs (``le`` is ``"+Inf"`` for overflow) —
        compact, JSON-able, and sufficient to reconstruct the full
        distribution via :meth:`from_summary`.
        """
        with self._lock:
            count = self._count
            total = self._sum
            minimum = self._min if self._min is not None else 0.0
            maximum = self._max if self._max is not None else 0.0
            buckets: List[List[object]] = [
                [BUCKET_BOUNDS[i], n]
                for i, n in enumerate(self._buckets) if n
            ]
            if self._overflow:
                buckets.append(["+Inf", self._overflow])
            percentiles = {
                key: self._percentile_locked(q)
                for key, q in (("p50", 50), ("p90", 90),
                               ("p99", 99), ("p999", 99.9))
            }
        summary: Dict[str, object] = {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": minimum,
            "max": maximum,
        }
        summary.update(percentiles)
        summary["buckets"] = buckets
        return summary

    def _snapshot(self) -> Tuple[List[int], int, int, float,
                                 Optional[float], Optional[float]]:
        with self._lock:
            return (list(self._buckets), self._overflow, self._count,
                    self._sum, self._min, self._max)

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s distribution into this one, bucket-wise.

        ``other`` is snapshotted first (under its own lock), then the
        deltas are applied under ours — no nested lock acquisition, so
        two threads merging in opposite directions cannot deadlock.
        """
        buckets, overflow, count, total, low, high = other._snapshot()
        with self._lock:
            for index, bucket_count in enumerate(buckets):
                self._buckets[index] += bucket_count
            self._overflow += overflow
            self._count += count
            self._sum += total
            if low is not None:
                self._min = low if self._min is None else min(self._min, low)
            if high is not None:
                self._max = (
                    high if self._max is None else max(self._max, high)
                )

    @classmethod
    def merged(cls, histograms: Sequence["Histogram"]) -> "Histogram":
        """A fresh histogram holding the union of ``histograms``."""
        result = cls()
        for histogram in histograms:
            result.merge(histogram)
        return result

    @classmethod
    def from_summary(cls, summary: Dict[str, object]) -> "Histogram":
        """Rebuild a histogram from a :meth:`summary` snapshot.

        Bucket counts, count, sum, min, and max restore exactly, so
        percentile queries on the restored histogram match the
        original — this is how ``repro slo`` evaluates saved metrics
        JSON without re-running the workload.
        """
        histogram = cls()
        histogram._restore(summary)
        return histogram

    def _restore(self, summary: Dict[str, object]) -> None:
        bounds_index = {le: i for i, le in enumerate(BUCKET_BOUNDS)}
        with self._lock:
            for le, bucket_count in summary.get("buckets", []):
                if le == "+Inf":
                    self._overflow += int(bucket_count)
                else:
                    index = bounds_index.get(float(le))
                    if index is None:  # legacy / foreign layout: re-bucket
                        index = min(
                            bisect_left(BUCKET_BOUNDS, float(le)),
                            len(BUCKET_BOUNDS) - 1,
                        )
                    self._buckets[index] += int(bucket_count)
            count = int(summary.get("count", 0))
            self._count += count
            self._sum += float(summary.get("sum", 0.0))
            if count:
                low = float(summary.get("min", 0.0))
                high = float(summary.get("max", 0.0))
                self._min = low if self._min is None else min(self._min, low)
                self._max = (
                    high if self._max is None else max(self._max, high)
                )
