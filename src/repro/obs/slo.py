"""SLO tracking: latency objectives with error budgets over histograms.

An :class:`SloTarget` names a latency histogram, a quantile, and an
objective (milliseconds — the unit the service observes in).  The
tracker evaluates targets against histogram *summaries* (live registry
or saved metrics JSON — both carry the bucket counts), so an SLO
report needs no access to the running process:

* **attained quantile** — the histogram's value at the target quantile
  (bucket-resolution nearest-rank, identical semantics everywhere).
* **error budget** — a p99 objective implicitly allows 1 % of
  observations over it: ``budget = floor((1 - quantile) * count)``.
  Violations are counted exactly from the bucket counts
  (:meth:`~repro.obs.histogram.Histogram.count_over`); the SLO is met
  while ``violations <= budget``.

``repro slo`` renders the report and exits nonzero when any target is
violated, so it can gate CI or a deploy the same way ``repro bench
diff`` gates throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs.histogram import Histogram

__all__ = [
    "DEFAULT_TARGETS",
    "FRONTEND_TARGETS",
    "SloResult",
    "SloTarget",
    "evaluate_slos",
    "format_slo_report",
]


@dataclass(frozen=True)
class SloTarget:
    """One objective: ``metric``'s ``quantile`` stays ≤ ``objective_ms``."""

    metric: str
    objective_ms: float
    quantile: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(
                f"quantile must be in (0, 1), got {self.quantile}"
            )
        if self.objective_ms <= 0:
            raise ValueError(
                f"objective must be positive, got {self.objective_ms}"
            )

    @classmethod
    def parse(cls, spec: str) -> "SloTarget":
        """Parse ``metric:quantile:objective_ms`` (CLI ``--target``)."""
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"target spec must be metric:quantile:objective_ms, "
                f"got {spec!r}"
            )
        return cls(
            metric=parts[0],
            quantile=float(parts[1]),
            objective_ms=float(parts[2]),
        )


#: The service-level objectives the repo tracks by default: end-to-end
#: decision latency, and the analytic fast path that decides the
#: common case (its whole value is being orders of magnitude under the
#: solver rungs, so it gets a far tighter objective).
DEFAULT_TARGETS = (
    SloTarget(metric="latency.decision_ms", quantile=0.99,
              objective_ms=250.0),
    SloTarget(metric="latency.rung.fastpath_ms", quantile=0.99,
              objective_ms=10.0),
)

#: Objectives for the network frontend (kept out of
#: :data:`DEFAULT_TARGETS`: an in-process admission run has no socket
#: plane, and ``repro slo --require-all`` must not demand histograms
#: that run can never produce).  ``loadgen.rtt_ms`` is the
#: client-observed round trip ``repro loadgen`` records; the
#: ``frontend.latency.*`` series are the server-side ingest-to-response
#: and per-batch backend latencies.
FRONTEND_TARGETS = (
    SloTarget(metric="loadgen.rtt_ms", quantile=0.99,
              objective_ms=500.0),
    SloTarget(metric="frontend.latency.request_ms", quantile=0.99,
              objective_ms=500.0),
    SloTarget(metric="frontend.latency.batch_ms", quantile=0.99,
              objective_ms=250.0),
)


@dataclass(frozen=True)
class SloResult:
    """The evaluated state of one target."""

    target: SloTarget
    count: int
    attained_ms: float
    violations: int
    budget: int
    met: bool
    missing: bool = False

    @property
    def budget_remaining(self) -> int:
        return self.budget - self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.target.metric,
            "quantile": self.target.quantile,
            "objective_ms": self.target.objective_ms,
            "count": self.count,
            "attained_ms": self.attained_ms,
            "violations": self.violations,
            "budget": self.budget,
            "budget_remaining": self.budget_remaining,
            "met": self.met,
            "missing": self.missing,
        }


def evaluate_slos(
    metrics: Dict[str, object],
    targets: Sequence[SloTarget] = DEFAULT_TARGETS,
    require_all: bool = False,
) -> List[SloResult]:
    """Evaluate ``targets`` against a metrics snapshot.

    ``metrics`` is a ``MetricsRegistry.to_dict()`` payload (or the
    saved-JSON equivalent).  A target whose histogram is absent or
    empty reports ``missing=True`` and counts as met unless
    ``require_all`` — a fresh service has no latency yet, which is not
    an SLO breach, but a CI gate may insist the evidence exists.
    """
    histograms = metrics.get("histograms", {})
    results = []
    for target in targets:
        summary = histograms.get(target.metric)
        count = int(summary.get("count", 0)) if summary else 0
        if not count:
            results.append(SloResult(
                target=target, count=0, attained_ms=0.0, violations=0,
                budget=0, met=not require_all, missing=True,
            ))
            continue
        histogram = Histogram.from_summary(summary)
        attained = histogram.percentile(target.quantile * 100)
        violations = histogram.count_over(target.objective_ms)
        budget = int((1.0 - target.quantile) * count)
        results.append(SloResult(
            target=target, count=count, attained_ms=attained,
            violations=violations, budget=budget,
            met=violations <= budget,
        ))
    return results


def format_slo_report(results: Sequence[SloResult]) -> str:
    """Human-readable SLO table (the ``repro slo`` output)."""
    header = (f"{'metric':<32} {'slo':>12} {'attained':>12} "
              f"{'count':>8} {'viol':>6} {'budget':>7} {'status':>8}")
    lines = [header, "-" * len(header)]
    for result in results:
        target = result.target
        slo = f"p{target.quantile * 100:g}<={target.objective_ms:g}ms"
        if result.missing:
            status = "no-data"
            attained = "-"
        else:
            status = "ok" if result.met else "VIOLATED"
            attained = f"{result.attained_ms:.3f}ms"
        lines.append(
            f"{target.metric:<32} {slo:>12} {attained:>12} "
            f"{result.count:>8} {result.violations:>6} "
            f"{result.budget:>7} {status:>8}"
        )
    return "\n".join(lines)
