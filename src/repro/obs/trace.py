"""Lightweight in-process spans and events — the repro's tracing core.

A :class:`Tracer` records :class:`Span` objects (named intervals with
integer-nanosecond timestamps, attributes, and parent links) into a
bounded ring buffer.  Three properties drive the design:

* **Opt-out-by-default cheap.**  Code paths take a tracer argument that
  defaults to :data:`NULL_TRACER`, a no-op whose :meth:`~Tracer.span` /
  :meth:`~Tracer.event` cost one attribute lookup and one call — cheap
  enough for the solver and simulator hot paths.
* **Deterministic under test.**  The clock is injectable (any callable
  returning integer nanoseconds); simulation code passes explicit
  ``ts_ns`` stamps so traces carry *simulated* time, not wall time.
* **Thread-tolerant.**  Parentage normally follows a per-thread span
  stack, but any span can name an explicit ``parent`` — that is how the
  admission service keeps solver work attributed to its rung even when
  the solve runs on a watchdog worker thread.

Spans are exported (appended to the ring) when they *finish*, so the
buffer is ordered by completion time; readers reconstruct the tree from
``parent_id``.  A full ring drops the oldest span and counts the drop.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional

from repro.obs.context import TraceContext

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "children_of",
]


@dataclass
class Span:
    """One named interval (or instantaneous event) in a trace.

    ``end_ns`` equals ``start_ns`` for point events; ``parent_id`` is
    ``None`` for roots.  Attribute values must be JSON-able scalars so
    traces serialize losslessly.
    """

    name: str
    trace_id: int
    span_id: int
    parent_id: Optional[int]
    start_ns: int
    end_ns: Optional[int] = None
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        """Span length; 0 while unfinished and for point events."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def set(self, **attributes: object) -> "Span":
        """Attach attributes after the span started (e.g. an outcome)."""
        self.attributes.update(attributes)
        return self


class _ActiveSpan:
    """Context manager that finishes its span on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set(self, **attributes: object) -> None:
        self.span.set(**attributes)

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.attributes.setdefault("error", exc_type.__name__)
        self._tracer.finish(self.span)


class _NullSpanContext:
    """Shared do-nothing context manager handed out by the null tracer."""

    __slots__ = ()

    def set(self, **attributes: object) -> None:
        pass

    def __enter__(self) -> "_NullSpanContext":
        return self  # has a no-op .set(), like a real Span

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_CONTEXT = _NullSpanContext()


class Tracer:
    """Records spans into a bounded in-process ring buffer.

    ``clock`` must return integer nanoseconds on a monotonic timeline
    (default :func:`time.perf_counter_ns`); ``max_spans`` bounds memory
    — once full, the oldest finished span is dropped and counted in
    :attr:`dropped`.
    """

    #: Lets hot paths skip attribute building entirely when tracing is
    #: off: ``if tracer.enabled: tracer.event(...)``.
    enabled = True

    def __init__(
        self,
        clock: Callable[[], int] = time.perf_counter_ns,
        max_spans: int = 65536,
    ) -> None:
        if max_spans < 1:
            raise ValueError("tracer ring needs room for at least one span")
        self._clock = clock
        self._ring: Deque[Span] = deque(maxlen=max_spans)
        self._max_spans = max_spans
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._traces = itertools.count(1)
        self._stack = threading.local()
        self.dropped = 0

    # -- span lifecycle ------------------------------------------------
    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        ts_ns: Optional[int] = None,
        **attributes: object,
    ) -> _ActiveSpan:
        """Open a span; use as a context manager.

        Parentage defaults to the innermost open span *of this thread*;
        pass ``parent`` explicitly to attach work running elsewhere
        (worker threads, resumed contexts).
        """
        span = self._start(name, parent, ts_ns, attributes)
        self._frames().append(span)
        return _ActiveSpan(self, span)

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        ts_ns: Optional[int] = None,
        **attributes: object,
    ) -> Span:
        """Open a span *without* entering it on the thread stack.

        For call sites that keep several spans open side by side (e.g.
        one per request of a batch); pair each with :meth:`finish`.
        Children started while such a span is open do NOT implicitly
        attach to it — pass it as their ``parent`` explicitly.
        """
        return self._start(name, parent, ts_ns, attributes)

    def finish(self, span: Span, ts_ns: Optional[int] = None) -> None:
        """Stamp the end time and export ``span`` to the ring."""
        span.end_ns = self._clock() if ts_ns is None else ts_ns
        frames = self._frames()
        if frames and frames[-1] is span:
            frames.pop()
        else:  # finished off-stack (another thread, or out of order)
            try:
                frames.remove(span)
            except ValueError:
                pass
        self._export(span)

    def event(
        self,
        name: str,
        parent: Optional[Span] = None,
        ts_ns: Optional[int] = None,
        **attributes: object,
    ) -> Span:
        """Record an instantaneous event (a zero-duration span)."""
        span = self._start(name, parent, ts_ns, attributes)
        span.end_ns = span.start_ns
        self._export(span)
        return span

    # -- context propagation -------------------------------------------
    def current_context(self) -> Optional[TraceContext]:
        """The propagation context of this thread's innermost open span.

        Falls back to the ambient context installed by
        :meth:`use_context`; ``None`` when the thread has no trace
        identity at all (spans opened now would become roots).
        """
        frames = self._frames()
        if frames:
            return TraceContext.of(frames[-1])
        return getattr(self._stack, "ambient", None)

    @contextmanager
    def use_context(self, context: Optional[TraceContext]):
        """Install ``context`` as this thread's fallback span parent.

        While active, spans opened with no explicit ``parent`` and an
        empty thread stack attach to ``context`` instead of starting a
        new trace — the cross-thread half of distributed propagation:
        capture ``current_context()`` before handing work to a pool,
        re-enter it inside the worker.  ``None`` is accepted and means
        "no fallback" (so callers need not branch on a missing
        context); the prior ambient context is restored on exit.
        """
        previous = getattr(self._stack, "ambient", None)
        self._stack.ambient = context
        try:
            yield context
        finally:
            self._stack.ambient = previous

    # -- reading back --------------------------------------------------
    def spans(self) -> List[Span]:
        """Finished spans, oldest first (bounded by ``max_spans``)."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    # -- internals -----------------------------------------------------
    def _frames(self) -> List[Span]:
        frames = getattr(self._stack, "frames", None)
        if frames is None:
            frames = []
            self._stack.frames = frames
        return frames

    def _start(
        self,
        name: str,
        parent: Optional[Span],
        ts_ns: Optional[int],
        attributes: Dict[str, object],
    ) -> Span:
        if parent is None:
            frames = self._frames()
            if frames:
                parent = frames[-1]
            else:  # cross-thread fallback installed by use_context()
                parent = getattr(self._stack, "ambient", None)
        return Span(
            name=name,
            trace_id=(
                parent.trace_id if parent is not None else next(self._traces)
            ),
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            start_ns=self._clock() if ts_ns is None else ts_ns,
            attributes=dict(attributes),
        )

    def _export(self, span: Span) -> None:
        with self._lock:
            if len(self._ring) == self._max_spans:
                self.dropped += 1
            self._ring.append(span)


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op.

    Instrumented code holds a reference to this singleton instead of
    branching on ``None``, so the enabled and disabled paths are the
    same shape; :attr:`enabled` lets the very hottest paths skip even
    the argument packing.
    """

    enabled = False
    dropped = 0

    def __init__(self) -> None:  # no ring, no clock, no locks
        pass

    def span(self, name, parent=None, ts_ns=None, **attributes):
        return _NULL_CONTEXT

    def start_span(self, name, parent=None, ts_ns=None, **attributes):
        return _NULL_CONTEXT

    def current_context(self) -> None:
        return None

    @contextmanager
    def use_context(self, context=None):
        yield None

    def finish(self, span, ts_ns=None) -> None:
        pass

    def event(self, name, parent=None, ts_ns=None, **attributes) -> None:
        return None

    def spans(self) -> List[Span]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: Process-wide disabled tracer; safe to share (it holds no state).
NULL_TRACER = NullTracer()


def children_of(spans: Iterable[Span], parent: Span) -> List[Span]:
    """The direct children of ``parent`` within ``spans``."""
    return [s for s in spans if s.parent_id == parent.span_id]
