"""The 802.1Qbv egress port: queues, gates, and transmission selection.

Implements the output-port model of paper Fig. 3: eight priority FIFOs,
each behind a gate driven by the port's GCL, with strict-priority
selection among open gates.  Two refinements complete the model:

* **Guard banding** (Qbv look-ahead): a frame starts only if it finishes
  before its gate's window closes, so a late ECT frame can never clip a
  protected window.
* **Owner windows** (flow isolation): a window owned by stream ``s``
  serves only ``s``'s frames from the queue, so FIFO order inside a
  shared queue cannot leak one stream's reservation to another.  Windows
  with no owner (EP complements, best-effort gaps) serve any frame.

A queue may carry a credit-based shaper (:mod:`repro.sim.cbs`) — that is
how the AVB baseline forwards ECT.

Gate state is evaluated in the *node-local clock*; wake-ups are converted
back to global simulator time, so clock error degrades gating exactly as
it would in hardware.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.gcl import PortGcl
from repro.model.topology import Link
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.cbs import CreditBasedShaper
from repro.sim.clock import Clock
from repro.sim.engine import Simulator
from repro.sim.frames import SimFrame

DeliverFn = Callable[[SimFrame, int], None]


class PortStats:
    """Counters for one egress port."""

    def __init__(self) -> None:
        self.frames_sent = 0
        self.bytes_sent = 0
        self.busy_ns = 0
        self.guard_band_blocks = 0
        self.cbs_blocks = 0
        self.max_backlog_frames = 0


class EgressPort:
    """One directed link's transmitter."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        gcl: PortGcl,
        clock: Clock,
        deliver: DeliverFn,
        shapers: Optional[Dict[int, CreditBasedShaper]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._sim = sim
        self._link = link
        self._gcl = gcl
        self._clock = clock
        self._deliver = deliver
        self._shapers = shapers or {}
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._link_label = f"{link.src}->{link.dst}"
        self._queues: Dict[int, List[SimFrame]] = {q: [] for q in range(8)}
        self._busy_until = 0
        self._wake_at: Optional[int] = None
        self.stats = PortStats()

    # ------------------------------------------------------------------
    def enqueue(self, frame: SimFrame) -> None:
        """A frame arrived for this port (from a talker or switch fabric)."""
        if self._tracer.enabled:
            self._trace_frame("frame.enqueue", frame)
        queue = self._queues[frame.priority]
        queue.append(frame)
        backlog = self.queued_frames()
        if backlog > self.stats.max_backlog_frames:
            self.stats.max_backlog_frames = backlog
        shaper = self._shapers.get(frame.priority)
        if shaper is not None and self._sim.now >= self._busy_until:
            shaper.on_wait_start(self._sim.now)
        self._try_transmit()

    def queued_frames(self) -> int:
        return sum(len(q) for q in self._queues.values())

    # ------------------------------------------------------------------
    def _try_transmit(self) -> None:
        now = self._sim.now
        if now < self._busy_until:
            return  # _on_tx_done will re-invoke
        local = self._clock.local(now)
        wake_local: List[int] = []
        wake_global: List[int] = []
        for queue_id in range(7, -1, -1):
            fifo = self._queues[queue_id]
            if not fifo:
                continue
            is_open, owner, boundary_local = self._gcl.state_at(queue_id, local)
            if not is_open:
                wake_local.append(boundary_local)
                continue
            index = self._select_frame(fifo, owner)
            if index is None:
                wake_local.append(boundary_local)
                continue
            frame = fifo[index]
            duration = self._link.transmission_ns(frame.wire_bytes)
            if local + duration > boundary_local:
                # Guard band: would overrun the window; a shorter frame of
                # the same queue cannot jump it (FIFO per stream), so wait.
                self.stats.guard_band_blocks += 1
                wake_local.append(boundary_local)
                continue
            shaper = self._shapers.get(queue_id)
            if shaper is not None and not shaper.can_send(now):
                self.stats.cbs_blocks += 1
                wake_global.append(shaper.eligible_at(now))
                continue
            self._transmit(queue_id, index, frame, duration)
            return
        self._schedule_wake(wake_local, wake_global)

    @staticmethod
    def _select_frame(fifo: List[SimFrame], owner: Optional[str]) -> Optional[int]:
        if owner is None:
            return 0
        for index, frame in enumerate(fifo):
            if frame.stream == owner:
                return index
        return None

    def _transmit(self, queue_id: int, index: int, frame: SimFrame, duration: int) -> None:
        now = self._sim.now
        fifo = self._queues[queue_id]
        fifo.pop(index)
        if self._tracer.enabled:
            # The dequeue instant IS the transmission start under strict
            # priority (selection happens at gate evaluation); one event
            # carries both, with the wire time as an attribute.
            self._trace_frame("frame.transmit", frame, queue=queue_id,
                              duration_ns=duration)
        shaper = self._shapers.get(queue_id)
        if shaper is not None:
            shaper.on_transmit(now, duration)
            if not fifo:
                shaper.on_queue_empty(now)
        self._busy_until = now + duration
        self.stats.frames_sent += 1
        self.stats.bytes_sent += frame.wire_bytes
        self.stats.busy_ns += duration
        arrival = now + duration + self._link.propagation_ns
        self._sim.at(arrival, lambda f=frame, t=arrival: self._deliver(f, t))
        self._sim.at(self._busy_until, self._on_tx_done)

    def _trace_frame(self, event: str, frame: SimFrame, **extra) -> None:
        """Record one per-hop frame event, stamped with simulated time."""
        self._tracer.event(
            event,
            ts_ns=self._sim.now,
            frame_id=frame.frame_id,
            stream=frame.stream,
            message_id=frame.message_id,
            frame_index=frame.frame_index,
            link=self._link_label,
            hop=frame.hop,
            **extra,
        )

    def _on_tx_done(self) -> None:
        now = self._sim.now
        for queue_id, shaper in self._shapers.items():
            if self._queues[queue_id]:
                shaper.on_wait_start(now)
        self._try_transmit()

    def _schedule_wake(self, wake_local: List[int], wake_global: List[int]) -> None:
        candidates = [self._clock.to_global(t) for t in wake_local]
        candidates.extend(wake_global)
        if not candidates:
            return
        wake = max(min(candidates), self._sim.now + 1)
        if self._wake_at is not None and self._wake_at <= wake and self._wake_at > self._sim.now:
            return  # an earlier (or equal) wake is already pending
        self._wake_at = wake
        self._sim.at(wake, self._on_wake)

    def _on_wake(self) -> None:
        if self._wake_at == self._sim.now:
            self._wake_at = None
        self._try_transmit()
