"""On-wire frame objects for the simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.model.topology import Link
from repro.model.units import frames_for_payload, wire_bytes

_frame_ids = itertools.count(1)


@dataclass
class SimFrame:
    """One Ethernet frame in flight.

    stream
        Name of the stream the frame belongs to (TCT stream name or ECT
        stream name — probabilistic possibilities never materialize as
        frames; they are scheduling artifacts).
    message_id
        Groups the frames of one message; latency is measured when the
        last frame of a message reaches the listener.
    created_ns
        Global time the message entered the network: the scheduled
        injection instant for TCT, the event occurrence for ECT.
    path / hop
        The route and the index of the link the frame travels next.
    """

    stream: str
    priority: int
    message_id: int
    frame_index: int
    frames_in_message: int
    payload_bytes: int
    created_ns: int
    path: Tuple[Link, ...]
    hop: int = 0
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    @property
    def wire_bytes(self) -> int:
        return wire_bytes(self.payload_bytes)

    @property
    def current_link(self) -> Link:
        return self.path[self.hop]

    @property
    def is_last_hop(self) -> bool:
        return self.hop == len(self.path) - 1

    def advanced(self) -> "SimFrame":
        """The same frame, one hop further along its path."""
        if self.is_last_hop:
            raise ValueError(f"frame {self.frame_id} is already on its last hop")
        return SimFrame(
            stream=self.stream,
            priority=self.priority,
            message_id=self.message_id,
            frame_index=self.frame_index,
            frames_in_message=self.frames_in_message,
            payload_bytes=self.payload_bytes,
            created_ns=self.created_ns,
            path=self.path,
            hop=self.hop + 1,
            frame_id=self.frame_id,
        )


def message_frames(
    stream: str,
    priority: int,
    message_id: int,
    message_bytes: int,
    created_ns: int,
    path: Tuple[Link, ...],
) -> List[SimFrame]:
    """Split one message into its MTU-sized frames."""
    payloads = frames_for_payload(message_bytes)
    return [
        SimFrame(
            stream=stream,
            priority=priority,
            message_id=message_id,
            frame_index=i,
            frames_in_message=len(payloads),
            payload_bytes=payload,
            created_ns=created_ns,
            path=path,
        )
        for i, payload in enumerate(payloads)
    ]
