"""End-device behaviors: time-triggered talkers and ECT event sources.

A :class:`TtTalker` is what the CUC configures on an end station for a
TCT stream: it injects each frame of the message exactly at the frame's
scheduled first-link slot, in the *device's local clock*.

An :class:`EctSource` fires events stochastically — uniform phase, with
the stream's minimum inter-event spacing enforced (the property the
probabilistic-stream analysis relies on) — and enqueues the message
immediately, whenever that is.  The latency clock starts at the event.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.model.frame import FrameSlot
from repro.model.stream import Priorities, Stream
from repro.model.topology import Link
from repro.sim.clock import Clock
from repro.sim.engine import Simulator
from repro.sim.frames import SimFrame, message_frames
from repro.sim.port import EgressPort
from repro.sim.recorder import LatencyRecorder


class TtTalker:
    """Injects one TCT stream's frames at their scheduled slot times."""

    def __init__(
        self,
        sim: Simulator,
        clock: Clock,
        port: EgressPort,
        stream: Stream,
        first_link_slots: Sequence[FrameSlot],
        recorder: LatencyRecorder,
        horizon_ns: int,
    ) -> None:
        self._sim = sim
        self._clock = clock
        self._port = port
        self._stream = stream
        self._recorder = recorder
        base = stream.frames_per_period()
        # Only the message's own frames are injected; extra slots from
        # prudent reservation stay empty unless displacement fills them.
        self._slots = list(first_link_slots)[:base]
        self._payloads = stream.frame_payloads()
        self._horizon_ns = horizon_ns

    def start(self) -> None:
        period = self._stream.period_ns
        k = 0
        while k * period + self._slots[0].offset_ns < self._horizon_ns:
            self._schedule_message(k)
            k += 1

    def _schedule_message(self, k: int) -> None:
        period = self._stream.period_ns
        first_local = self._slots[0].offset_ns + k * period
        created = self._clock.to_global(first_local)
        frames: List[SimFrame] = []
        for j, payload in enumerate(self._payloads):
            frames.append(
                SimFrame(
                    stream=self._stream.name,
                    priority=self._stream.priority,
                    message_id=k,
                    frame_index=j,
                    frames_in_message=len(self._payloads),
                    payload_bytes=payload,
                    created_ns=created,
                    path=self._stream.path,
                )
            )
        for j, frame in enumerate(frames):
            inject_local = self._slots[j].offset_ns + k * period
            inject_global = self._clock.to_global(inject_local)
            if j == 0:
                self._sim.at(inject_global, lambda f=frame: self._inject_first(f))
            else:
                self._sim.at(inject_global, lambda f=frame: self._port.enqueue(f))

    def _inject_first(self, frame: SimFrame) -> None:
        self._recorder.on_inject(self._stream.name, frame.message_id)
        self._port.enqueue(frame)


class EctSource:
    """Generates the stochastic events of one ECT stream."""

    def __init__(
        self,
        sim: Simulator,
        port: EgressPort,
        recorder: LatencyRecorder,
        name: str,
        path: Tuple[Link, ...],
        length_bytes: int,
        min_interevent_ns: int,
        horizon_ns: int,
        seed: int = 0,
        gap_jitter_ns: Optional[int] = None,
        event_times: Optional[Sequence[int]] = None,
        record_injections: bool = True,
    ) -> None:
        self._sim = sim
        self._port = port
        self._recorder = recorder
        self._name = name
        self._path = path
        self._length_bytes = length_bytes
        self._min_interevent_ns = min_interevent_ns
        self._horizon_ns = horizon_ns
        self._rng = random.Random(seed)
        # Gap = min inter-event + U(0, jitter): respects the minimum
        # spacing while the event phase sweeps uniformly over the cycle.
        self._gap_jitter_ns = (
            gap_jitter_ns if gap_jitter_ns is not None else min_interevent_ns
        )
        self._preset_events = list(event_times) if event_times is not None else None
        self._record_injections = record_injections
        self.event_times: List[int] = []

    def start(self) -> None:
        if self._preset_events is not None:
            from repro.traffic.events import validate_min_spacing

            validate_min_spacing(self._preset_events, self._min_interevent_ns)
            times = [t for t in self._preset_events if t < self._horizon_ns]
        else:
            times = []
            t = self._rng.randint(0, self._min_interevent_ns)
            while t < self._horizon_ns:
                times.append(t)
                t += self._min_interevent_ns + self._rng.randint(0, self._gap_jitter_ns)
        for index, t in enumerate(times):
            self._sim.at(t, lambda when=t, i=index: self._fire(when, i))
            self.event_times.append(t)

    def _fire(self, when: int, message_id: int) -> None:
        if self._record_injections:
            # FRER members share a logical stream: only the primary
            # member counts the message as injected.
            self._recorder.on_inject(self._name, message_id)
        for frame in message_frames(
            stream=self._name,
            priority=Priorities.EP,
            message_id=message_id,
            message_bytes=self._length_bytes,
            created_ns=when,
            path=self._path,
        ):
            self._port.enqueue(frame)
