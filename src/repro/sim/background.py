"""Best-effort background traffic sources.

The 802.1Q priority model reserves PCP 0 for best-effort traffic; the
AVB baseline's definition ("ECT ... with a higher priority than
background traffic", paper Sec. VI-A2) only means anything when such
traffic exists.  :class:`BeSource` offers a configurable load of
random-size best-effort frames between two devices; the GCL opens the BE
gate only in unallocated time, and strict priority keeps BE under every
critical class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.model.stream import Priorities
from repro.model.topology import Link
from repro.model.units import ETHERNET_MIN_PAYLOAD_BYTES, ETHERNET_MTU_BYTES, NS_PER_S, wire_bytes
from repro.sim.engine import Simulator
from repro.sim.frames import SimFrame
from repro.sim.port import EgressPort
from repro.sim.recorder import LatencyRecorder


@dataclass(frozen=True)
class BeTrafficSpec:
    """Offered best-effort load between two devices."""

    name: str
    source: str
    destination: str
    #: average offered load as a fraction of the first link's bandwidth
    load_fraction: float
    min_payload: int = ETHERNET_MIN_PAYLOAD_BYTES
    max_payload: int = ETHERNET_MTU_BYTES

    def __post_init__(self) -> None:
        if not 0 < self.load_fraction < 1:
            raise ValueError(f"{self.name}: load fraction must be in (0,1)")
        if not (0 < self.min_payload <= self.max_payload <= ETHERNET_MTU_BYTES):
            raise ValueError(f"{self.name}: bad payload range")


class BeSource:
    """Injects best-effort frames with exponential inter-arrivals."""

    def __init__(
        self,
        sim: Simulator,
        port: EgressPort,
        recorder: LatencyRecorder,
        spec: BeTrafficSpec,
        path: Tuple[Link, ...],
        horizon_ns: int,
        seed: int = 0,
    ) -> None:
        self._sim = sim
        self._port = port
        self._recorder = recorder
        self._spec = spec
        self._path = path
        self._horizon_ns = horizon_ns
        self._rng = random.Random(seed)
        self._message_id = 0

    def start(self) -> None:
        mean_payload = (self._spec.min_payload + self._spec.max_payload) / 2
        mean_wire_bits = wire_bytes(int(mean_payload)) * 8
        rate_bps = self._path[0].bandwidth_bps * self._spec.load_fraction
        mean_gap_ns = mean_wire_bits * NS_PER_S / rate_bps
        t = int(self._rng.expovariate(1.0 / mean_gap_ns))
        while t < self._horizon_ns:
            self._sim.at(t, lambda when=t: self._fire(when))
            t += max(1, int(self._rng.expovariate(1.0 / mean_gap_ns)))

    def _fire(self, when: int) -> None:
        self._message_id += 1
        payload = self._rng.randint(self._spec.min_payload, self._spec.max_payload)
        self._recorder.on_inject(self._spec.name, self._message_id)
        self._port.enqueue(SimFrame(
            stream=self._spec.name,
            priority=Priorities.BE,
            message_id=self._message_id,
            frame_index=0,
            frames_in_message=1,
            payload_bytes=payload,
            created_ns=when,
            path=self._path,
        ))
