"""Discrete-event TSN simulator — the evaluation toolkit substitute.

Implements the 802.1Qbv output-port model (paper Fig. 3) with guard
banding and strict-priority transmission selection, Qav credit-based
shaping for the AVB baseline, per-node clocks with simplified 802.1AS
sync, and nanosecond-resolution latency recording.
"""

from repro.sim.background import BeSource, BeTrafficSpec
from repro.sim.cbs import CreditBasedShaper
from repro.sim.clock import Clock, SyncConfig, SyncDomain
from repro.sim.devices import EctSource, TtTalker
from repro.sim.engine import SimulationError, Simulator
from repro.sim.frames import SimFrame, message_frames
from repro.sim.network import SimConfig, SimReport, TsnSimulation
from repro.sim.port import EgressPort
from repro.sim.recorder import LatencyRecorder, LatencyStats

__all__ = [
    "BeSource",
    "BeTrafficSpec",
    "Clock",
    "CreditBasedShaper",
    "EctSource",
    "EgressPort",
    "LatencyRecorder",
    "LatencyStats",
    "SimConfig",
    "SimReport",
    "SimFrame",
    "SimulationError",
    "Simulator",
    "SyncConfig",
    "SyncDomain",
    "TsnSimulation",
    "TtTalker",
    "message_frames",
]
