"""Latency recording and statistics — the evaluation toolkit's meter.

Latency is the paper's Sec. VI-A3 definition: the time between the
*reception of the last frame* of a message and the *sending of the first*
(for ECT, the event occurrence — queueing at the source is part of the
measured latency).  Jitter is the standard deviation of latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.frames import SimFrame


@dataclass(frozen=True)
class LatencyStats:
    """Summary of one stream's delivered messages."""

    count: int
    average_ns: float
    minimum_ns: int
    maximum_ns: int
    stddev_ns: float

    @property
    def jitter_ns(self) -> float:
        """The paper measures jitter as the standard deviation of latency."""
        return self.stddev_ns


class LatencyRecorder:
    """Collects per-stream message latencies as frames arrive.

    Duplicate frames — e.g. from 802.1CB-style redundant copies arriving
    over a second path — are eliminated per ``(stream, message, frame)``,
    the R-TAG sequence-recovery function of a FRER listener.  A message
    completes when each distinct frame index has arrived once; later
    copies are ignored.
    """

    def __init__(self) -> None:
        self._arrived: Dict[Tuple[str, int], set] = {}
        self._completed: set = set()
        self._duplicates = 0
        self._latencies: Dict[str, List[int]] = {}
        self._injected: Dict[str, int] = {}
        self._injected_ids: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    def on_inject(self, stream: str, message_id: Optional[int] = None) -> None:
        """A message entered the network (for loss accounting).

        Passing ``message_id`` additionally enables the per-message
        :meth:`lost_frames` detail view; without it only the aggregate
        :meth:`lost` count is available for the stream.
        """
        self._injected[stream] = self._injected.get(stream, 0) + 1
        if message_id is not None:
            self._injected_ids.setdefault(stream, []).append(message_id)

    def on_deliver(self, frame: SimFrame, arrival_ns: int) -> None:
        """A frame reached its listener."""
        key = (frame.stream, frame.message_id)
        if key in self._completed:
            self._duplicates += 1
            return
        seen = self._arrived.setdefault(key, set())
        if frame.frame_index in seen:
            self._duplicates += 1
            return
        seen.add(frame.frame_index)
        if len(seen) < frame.frames_in_message:
            return
        del self._arrived[key]
        self._completed.add(key)
        latency = arrival_ns - frame.created_ns
        self._latencies.setdefault(frame.stream, []).append(latency)

    @property
    def duplicates_eliminated(self) -> int:
        """Redundant-copy frames discarded (FRER elimination count)."""
        return self._duplicates

    # ------------------------------------------------------------------
    def streams(self) -> List[str]:
        return sorted(self._latencies)

    def latencies(self, stream: str) -> List[int]:
        return list(self._latencies.get(stream, ()))

    def delivered(self, stream: str) -> int:
        return len(self._latencies.get(stream, ()))

    def injected(self, stream: str) -> int:
        return self._injected.get(stream, 0)

    def in_flight(self) -> int:
        """Messages with some but not all frames delivered."""
        return len(self._arrived)

    def lost(self, stream: str) -> int:
        """Messages injected but never completed (loss or still queued)."""
        return self.injected(stream) - self.delivered(stream)

    def lost_frames(self) -> List[Tuple[str, int]]:
        """Every (stream, message_id) injected but never completed.

        The detail view behind :meth:`lost`: which messages are missing,
        not just how many.  A message whose frames partially arrived
        (still in flight) appears exactly once — per-frame arrivals
        never multiply the entry.  Only sources that report message ids
        to :meth:`on_inject` contribute.
        """
        return [
            (stream, message_id)
            for stream, ids in sorted(self._injected_ids.items())
            for message_id in ids
            if (stream, message_id) not in self._completed
        ]

    def stats(self, stream: str) -> LatencyStats:
        values = self._latencies.get(stream)
        if not values:
            raise KeyError(f"no delivered messages recorded for {stream!r}")
        count = len(values)
        mean = sum(values) / count
        variance = sum((v - mean) ** 2 for v in values) / count
        return LatencyStats(
            count=count,
            average_ns=mean,
            minimum_ns=min(values),
            maximum_ns=max(values),
            stddev_ns=math.sqrt(variance),
        )

    def percentile(self, stream: str, fraction: float) -> int:
        """Latency at a CDF fraction (nearest-rank)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        values = sorted(self._latencies.get(stream, ()))
        if not values:
            raise KeyError(f"no delivered messages recorded for {stream!r}")
        rank = max(0, math.ceil(fraction * len(values)) - 1)
        return values[rank]

    def cdf(self, stream: str) -> List[Tuple[int, float]]:
        """(latency, cumulative fraction) points for plotting."""
        values = sorted(self._latencies.get(stream, ()))
        n = len(values)
        return [(v, (i + 1) / n) for i, v in enumerate(values)]
