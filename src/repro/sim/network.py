"""Assembles a runnable TSN simulation from schedule + GCL.

This is the counterpart of the paper's evaluation toolkit: it wires the
topology's egress ports (paper Fig. 3 model), the per-node clocks with
optional 802.1AS sync, the time-triggered talkers, and the stochastic
ECT sources, then runs the discrete-event loop and hands back the latency
records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import random

from repro.core.gcl import NetworkGcl
from repro.core.schedule import NetworkSchedule
from repro.model.stream import Priorities, StreamType
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.background import BeSource, BeTrafficSpec
from repro.sim.cbs import CreditBasedShaper
from repro.sim.clock import Clock, SyncConfig, SyncDomain
from repro.sim.devices import EctSource, TtTalker
from repro.sim.engine import Simulator
from repro.sim.frames import SimFrame
from repro.sim.port import EgressPort
from repro.sim.recorder import LatencyRecorder


@dataclass
class SimConfig:
    """Run-time knobs of one simulation."""

    duration_ns: int
    seed: int = 0
    #: idle slope of the ECT class as a fraction of link rate; used only
    #: when ``cbs_on_ect`` (the AVB baseline's Qav shaper).
    cbs_on_ect: bool = False
    cbs_idle_slope_fraction: float = 0.75
    #: per-node clock drift in ppb; nodes not listed run perfectly.
    clock_drift_ppb: Dict[str, int] = field(default_factory=dict)
    #: initial per-node clock offsets in ns.
    clock_offset_ns: Dict[str, int] = field(default_factory=dict)
    sync: Optional[SyncConfig] = None
    #: extra uniform spacing added between ECT events, beyond the minimum
    #: inter-event time (defaults to one minimum inter-event time).
    ect_gap_jitter_ns: Optional[int] = None
    #: explicit occurrence times per ECT stream name (overrides the
    #: stochastic process; must respect the minimum inter-event time).
    ect_event_times: Dict[str, List[int]] = field(default_factory=dict)
    #: best-effort background flows (PCP 0; only unallocated gate time).
    be_traffic: List[BeTrafficSpec] = field(default_factory=list)
    #: fault injection: per-directed-link probability of losing a frame
    #: in transit (corruption/CRC drop).
    link_loss: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: per-hop frame tracing: every egress port emits enqueue / transmit
    #: / deliver events (simulated-time stamps) into this tracer, so a
    #: frame's full journey is reconstructable (Fig. 14's per-hop data).
    #: ``None`` keeps the hot path event-free.
    tracer: Optional[Tracer] = None

    def __post_init__(self) -> None:
        for key, probability in self.link_loss.items():
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"link_loss[{key[0]}->{key[1]}]: loss probability must "
                    f"be within [0, 1], got {probability}"
                )


@dataclass
class SimReport:
    """What a run hands back to the analysis layer."""

    recorder: LatencyRecorder
    port_stats: Dict[Tuple[str, str], object]
    duration_ns: int
    num_events: int
    sync_error_ns: int = 0
    frames_lost: int = 0

    def link_utilization(self, link_key: Tuple[str, str]) -> float:
        stats = self.port_stats[link_key]
        return stats.busy_ns / self.duration_ns


class TsnSimulation:
    """One simulation instance: build, run once, read the report."""

    def __init__(
        self,
        schedule: NetworkSchedule,
        gcl: NetworkGcl,
        config: SimConfig,
    ) -> None:
        self._schedule = schedule
        self._gcl = gcl
        self._config = config
        self._sim = Simulator()
        self._tracer = config.tracer if config.tracer is not None else NULL_TRACER
        self._recorder = LatencyRecorder()
        self._clocks: Dict[str, Clock] = {}
        self._ports: Dict[Tuple[str, str], EgressPort] = {}
        self._sources: List[EctSource] = []
        self._build()

    # ------------------------------------------------------------------
    def _clock_for(self, node: str) -> Clock:
        if node not in self._clocks:
            self._clocks[node] = Clock(
                node,
                offset_ns=self._config.clock_offset_ns.get(node, 0),
                drift_ppb=self._config.clock_drift_ppb.get(node, 0),
            )
        return self._clocks[node]

    def _build(self) -> None:
        topology = self._schedule.topology
        for link_key, port_gcl in self._gcl.ports.items():
            link = topology.link(*link_key)
            shapers: Dict[int, CreditBasedShaper] = {}
            if self._config.cbs_on_ect:
                idle = int(link.bandwidth_bps * self._config.cbs_idle_slope_fraction)
                shapers[Priorities.EP] = CreditBasedShaper(idle, link.bandwidth_bps)
            self._ports[link_key] = EgressPort(
                sim=self._sim,
                link=link,
                gcl=port_gcl,
                clock=self._clock_for(link_key[0]),
                deliver=self._deliver,
                shapers=shapers,
                tracer=self._tracer,
            )

        proxies = set(self._schedule.meta.get("ect_proxies", {}) or {})
        for stream in self._schedule.streams:
            if stream.type != StreamType.DET or stream.name in proxies:
                continue
            first_link = stream.path[0]
            talker = TtTalker(
                sim=self._sim,
                clock=self._clock_for(stream.source),
                port=self._ports[first_link.key],
                stream=stream,
                first_link_slots=self._schedule.slots[(stream.name, first_link.key)],
                recorder=self._recorder,
                horizon_ns=self._config.duration_ns,
            )
            talker.start()

        # FRER members of one logical stream fire identical events and
        # stamp frames with the logical name, so the recorder's duplicate
        # elimination merges them (802.1CB listener behavior).
        frer_members: Dict[str, str] = dict(
            self._schedule.meta.get("frer_members", {}) or {}
        )
        logical_events: Dict[str, List[int]] = {}
        logical_index: Dict[str, int] = {}
        self._seen_logicals: set = set()
        for index, ect in enumerate(self._schedule.ect_streams):
            logical = frer_members.get(ect.name, ect.name)
            logical_index.setdefault(logical, len(logical_index))
            events = self._config.ect_event_times.get(logical)
            if events is None and logical in frer_members.values():
                if logical not in logical_events:
                    from repro.traffic.events import uniform_gap_events

                    logical_events[logical] = uniform_gap_events(
                        horizon_ns=self._config.duration_ns,
                        min_interevent_ns=ect.min_interevent_ns,
                        seed=self._config.seed * 1009 + logical_index[logical],
                        gap_jitter_ns=(
                            self._config.ect_gap_jitter_ns
                            if self._config.ect_gap_jitter_ns is not None
                            else ect.min_interevent_ns
                        ),
                    )
                events = logical_events[logical]
            path = ect.route(topology)
            primary = logical not in self._seen_logicals
            self._seen_logicals.add(logical)
            source = EctSource(
                sim=self._sim,
                port=self._ports[path[0].key],
                recorder=self._recorder,
                name=logical,
                path=path,
                length_bytes=ect.length_bytes,
                min_interevent_ns=ect.min_interevent_ns,
                horizon_ns=self._config.duration_ns,
                seed=self._config.seed * 1009 + logical_index[logical],
                gap_jitter_ns=self._config.ect_gap_jitter_ns,
                event_times=events,
                record_injections=primary,
            )
            source.start()
            self._sources.append(source)

        for index, spec in enumerate(self._config.be_traffic):
            path = tuple(topology.shortest_path(spec.source, spec.destination))
            for link in path:
                if link.key not in self._ports:
                    raise ValueError(
                        f"BE flow {spec.name!r}: no port on {link} — the "
                        f"link carries no schedule; add a stream there or "
                        f"pick another route"
                    )
            BeSource(
                sim=self._sim,
                port=self._ports[path[0].key],
                recorder=self._recorder,
                spec=spec,
                path=path,
                horizon_ns=self._config.duration_ns,
                seed=self._config.seed * 7919 + index,
            ).start()

        # One RNG per lossy link (mirroring the per-source RNGs above):
        # a shared RNG would make link A's loss outcomes depend on how
        # many draws link B consumed, i.e. on unrelated traffic.
        self._loss_rngs = {
            key: random.Random(f"{self._config.seed}:loss:{key[0]}->{key[1]}")
            for key in self._config.link_loss
        }
        self.frames_lost = 0

        self._sync = SyncDomain(
            self._sim,
            list(self._clocks.values()),
            config=self._config.sync,
            seed=self._config.seed,
        )
        if self._config.sync is not None:
            self._sync.start()

    # ------------------------------------------------------------------
    def _deliver(self, frame: SimFrame, arrival_ns: int) -> None:
        link = frame.current_link
        loss = self._config.link_loss.get(link.key, 0.0)
        if loss and self._loss_rngs[link.key].random() < loss:
            self.frames_lost += 1
            if self._tracer.enabled:
                self._trace_arrival("frame.drop", frame, arrival_ns)
            return
        if self._tracer.enabled:
            self._trace_arrival("frame.deliver", frame, arrival_ns)
        if frame.is_last_hop:
            self._recorder.on_deliver(frame, arrival_ns)
            return
        onward = frame.advanced()
        self._ports[onward.current_link.key].enqueue(onward)

    def _trace_arrival(self, event: str, frame: SimFrame, ts_ns: int) -> None:
        link = frame.current_link
        self._tracer.event(
            event,
            ts_ns=ts_ns,
            frame_id=frame.frame_id,
            stream=frame.stream,
            message_id=frame.message_id,
            frame_index=frame.frame_index,
            link=f"{link.src}->{link.dst}",
            hop=frame.hop,
            final=frame.is_last_hop,
        )

    # ------------------------------------------------------------------
    def run(self, drain_margin_ns: Optional[int] = None) -> SimReport:
        """Run to the configured duration plus a drain margin.

        The margin lets messages injected near the end finish; it
        defaults to the largest stream period in the schedule.
        """
        if drain_margin_ns is None:
            drain_margin_ns = max(
                (s.period_ns for s in self._schedule.streams), default=0
            )
        self._sim.run_until(self._config.duration_ns + drain_margin_ns)
        return SimReport(
            recorder=self._recorder,
            port_stats={key: port.stats for key, port in self._ports.items()},
            duration_ns=self._config.duration_ns,
            num_events=self._sim.num_events,
            sync_error_ns=self._sync.max_observed_error_ns,
            frames_lost=self.frames_lost,
        )

    @property
    def recorder(self) -> LatencyRecorder:
        return self._recorder

    @property
    def sources(self) -> List[EctSource]:
        return self._sources
