"""Discrete-event simulation engine with integer-nanosecond time.

A minimal, deterministic event loop: a binary heap of ``(time, seq,
callback)`` entries.  The sequence number makes same-timestamp events
fire in scheduling order, so runs are exactly reproducible — the property
the paper's FPGA toolkit gets from hardware timestamping, we get from
determinism.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple


class SimulationError(RuntimeError):
    """Raised on misuse of the engine (e.g. scheduling in the past)."""


class Simulator:
    """The event loop.  All times are absolute integer nanoseconds."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        self._running = False
        self.num_events = 0

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    def at(self, time_ns: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns} ns; now is {self._now} ns"
            )
        heapq.heappush(self._heap, (time_ns, self._seq, callback))
        self._seq += 1

    def after(self, delay_ns: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after a relative delay."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay {delay_ns} ns")
        self.at(self._now + delay_ns, callback)

    def run_until(self, end_ns: int) -> None:
        """Process events with time <= ``end_ns``; leave later ones queued."""
        if self._running:
            raise SimulationError("run_until() re-entered from a callback")
        self._running = True
        try:
            while self._heap and self._heap[0][0] <= end_ns:
                time_ns, _, callback = heapq.heappop(self._heap)
                self._now = time_ns
                self.num_events += 1
                callback()
            self._now = max(self._now, end_ns)
        finally:
            self._running = False

    def run(self) -> None:
        """Process every queued event (and those they spawn) until empty.

        Only safe when the event population is finite — sources that
        reschedule themselves forever must be bounded by ``run_until``.
        """
        if self._running:
            raise SimulationError("run() re-entered from a callback")
        self._running = True
        try:
            while self._heap:
                time_ns, _, callback = heapq.heappop(self._heap)
                self._now = time_ns
                self.num_events += 1
                callback()
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of queued events."""
        return len(self._heap)
