"""Per-node clocks and a simplified 802.1AS time synchronization.

Every node interprets its GCL in its *local* clock.  A local clock is a
linear map of global (true) time: ``local = global + offset + drift``.
Drift is expressed in parts-per-billion and accumulates from the last
correction point, all in integer arithmetic.

:class:`SyncDomain` models the grandmaster/slave relationship of
802.1AS at the level the evaluation needs: every ``sync_interval`` the
grandmaster's time is (imperfectly) transferred to each slave, which
resets its offset to a residual bounded by the measurement error.  The
paper's toolkit timestamps at 10 ns accuracy; the default residual error
matches that order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.sim.engine import Simulator


class Clock:
    """A node-local clock: ``local(t) = t + offset + drift·(t - ref)``."""

    def __init__(self, name: str, offset_ns: int = 0, drift_ppb: int = 0) -> None:
        if drift_ppb <= -1_000_000_000:
            raise ValueError(
                f"clock {name!r}: drift_ppb must exceed -1e9 (got "
                f"{drift_ppb}); at -1e9 local time stops advancing"
            )
        self.name = name
        self._offset_ns = offset_ns
        self._drift_ppb = drift_ppb
        self._ref_ns = 0  # global time of the last correction

    def local(self, global_ns: int) -> int:
        """Local reading at a global instant."""
        drift = (global_ns - self._ref_ns) * self._drift_ppb // 1_000_000_000
        return global_ns + self._offset_ns + drift

    def to_global(self, local_ns: int) -> int:
        """Global instant at which this clock reads ``local_ns``.

        Inverse of :meth:`local`: when ``local_ns`` is an exact reading
        the returned instant reproduces it (``local(to_global(x)) == x``),
        and for non-negative drift the inverse is exact
        (``to_global(local(t)) == t``, since ``local`` is then strictly
        increasing).  Between two readings — positive drift makes the
        local clock skip values — the latest instant reading no later
        than ``local_ns`` is returned.
        """
        # Newton iteration: the error contracts by |drift|/1e9 per step,
        # so a few steps settle every physical drift; extreme drifts
        # (approaching clock rate) fall through to exact bisection
        # instead of returning an off-by-one fixed-point miss.
        guess = local_ns - self._offset_ns
        for _ in range(8):
            error = self.local(guess) - local_ns
            if error == 0:
                return guess
            guess -= error
        # local() is monotone non-decreasing (drift_ppb > -1e9), so the
        # largest t with local(t) <= local_ns is found by bisection.
        lo = hi = guess
        step = 1
        while self.local(lo) > local_ns:
            lo -= step
            step *= 2
        step = 1
        while self.local(hi + 1) <= local_ns:
            hi += step
            step *= 2
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.local(mid) <= local_ns:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def offset_error_ns(self, global_ns: int) -> int:
        """How far local time is from true time right now."""
        return self.local(global_ns) - global_ns

    def correct(self, global_ns: int, residual_ns: int) -> None:
        """Apply a sync correction: local ≈ global + residual afterwards."""
        self._offset_ns = residual_ns
        self._ref_ns = global_ns

    @property
    def drift_ppb(self) -> int:
        return self._drift_ppb


@dataclass
class SyncConfig:
    """Knobs of the simplified 802.1AS domain."""

    sync_interval_ns: int = 31_250_000  # 802.1AS default: 1/32 s
    residual_error_ns: int = 10  # hardware timestamping accuracy
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.sync_interval_ns <= 0:
            raise ValueError(
                f"sync_interval_ns must be positive, got {self.sync_interval_ns}"
            )
        if self.residual_error_ns < 0:
            raise ValueError(
                f"residual_error_ns must be >= 0, got {self.residual_error_ns} "
                f"(it bounds the post-correction offset magnitude)"
            )


class SyncDomain:
    """Grandmaster-driven periodic offset correction for a clock set."""

    def __init__(
        self,
        sim: Simulator,
        clocks: List[Clock],
        config: Optional[SyncConfig] = None,
        seed: int = 0,
    ) -> None:
        self._sim = sim
        self._clocks = clocks
        self._config = config or SyncConfig()
        self._rng = random.Random(seed)
        self.max_observed_error_ns = 0

    def start(self) -> None:
        if self._config.enabled and self._clocks:
            self._sim.at(0, self._sync_round)

    def _sync_round(self) -> None:
        now = self._sim.now
        for clock in self._clocks:
            self.max_observed_error_ns = max(
                self.max_observed_error_ns, abs(clock.offset_error_ns(now))
            )
            residual = self._rng.randint(
                -self._config.residual_error_ns, self._config.residual_error_ns
            )
            clock.correct(now, residual)
        self._sim.after(self._config.sync_interval_ns, self._sync_round)

    def worst_case_error_ns(self) -> int:
        """Bound on inter-sync divergence: residual + drift over interval."""
        worst_drift = max((abs(c.drift_ppb) for c in self._clocks), default=0)
        accumulation = self._config.sync_interval_ns * worst_drift // 1_000_000_000
        return self._config.residual_error_ns + accumulation
