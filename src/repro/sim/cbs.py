"""Credit-based shaper (802.1Qav) for one traffic-class queue.

Standard semantics:

* a frame may start only when credit >= 0;
* while transmitting, credit drains at ``send_slope = idle_slope - rate``
  (negative);
* while frames wait blocked (by credit or by the gate), credit gains at
  ``idle_slope``;
* when the queue goes empty with positive credit, credit resets to 0.

All arithmetic is integer: credit is kept in bit-nanoseconds (credit in
bits times 1e9), so slopes in bits-per-second multiply plainly with
nanosecond durations.
"""

from __future__ import annotations


class CreditBasedShaper:
    """CBS state for one queue on one port."""

    def __init__(self, idle_slope_bps: int, link_rate_bps: int) -> None:
        if not 0 < idle_slope_bps <= link_rate_bps:
            raise ValueError(
                f"idle slope {idle_slope_bps} must be in (0, link rate "
                f"{link_rate_bps}]"
            )
        self.idle_slope_bps = idle_slope_bps
        self.send_slope_bps = idle_slope_bps - link_rate_bps
        self._credit = 0  # bit-nanoseconds
        self._updated_ns = 0
        self._gaining = False  # frames waiting, not transmitting
        self._recovering = False  # queue empty with a deficit (Annex L)

    # ------------------------------------------------------------------
    def _advance(self, now_ns: int) -> None:
        elapsed = now_ns - self._updated_ns
        if elapsed > 0:
            if self._gaining:
                self._credit += elapsed * self.idle_slope_bps
            elif self._recovering and self._credit < 0:
                # 802.1Q Annex L: with the queue empty, negative credit
                # recovers at idleSlope but saturates at zero.
                self._credit = min(
                    0, self._credit + elapsed * self.idle_slope_bps
                )
        self._updated_ns = max(self._updated_ns, now_ns)

    def credit_bits(self, now_ns: int) -> float:
        """Current credit in bits (reporting only)."""
        self._advance(now_ns)
        return self._credit / 1_000_000_000

    # ------------------------------------------------------------------
    def can_send(self, now_ns: int) -> bool:
        self._advance(now_ns)
        return self._credit >= 0

    def eligible_at(self, now_ns: int) -> int:
        """Earliest time credit reaches zero if frames keep waiting."""
        self._advance(now_ns)
        if self._credit >= 0:
            return now_ns
        deficit = -self._credit
        wait = -(-deficit // self.idle_slope_bps)  # ceil
        return now_ns + wait

    # ------------------------------------------------------------------
    def on_wait_start(self, now_ns: int) -> None:
        """Frames became pending (and are not being transmitted)."""
        self._advance(now_ns)
        self._gaining = True
        self._recovering = False

    def on_transmit(self, start_ns: int, duration_ns: int) -> None:
        """Account one transmission of ``duration_ns`` starting now."""
        self._advance(start_ns)
        self._gaining = False
        self._recovering = False
        self._credit += duration_ns * self.send_slope_bps
        self._updated_ns = start_ns + duration_ns

    def on_queue_empty(self, now_ns: int) -> None:
        """Queue drained: positive credit is forfeited; a deficit starts
        recovering toward zero (Qav rules)."""
        self._advance(now_ns)
        self._gaining = False
        self._recovering = True
        if self._credit > 0:
            self._credit = 0
