"""Workload generation: IEC/IEEE 60802-style TCT and ECT event processes."""

from repro.traffic.events import (
    burst_events,
    poisson_events,
    uniform_gap_events,
    validate_min_spacing,
)
from repro.traffic.generator import GeneratedTraffic, TrafficConfig, generate_tct

__all__ = [
    "GeneratedTraffic",
    "TrafficConfig",
    "burst_events",
    "generate_tct",
    "poisson_events",
    "uniform_gap_events",
    "validate_min_spacing",
]
