"""Event occurrence processes for ECT streams.

The defining property of ECT (paper Sec. III-B) is a *minimum inter-event
time*; beyond that, occurrences are stochastic.  Each process here yields
a sorted list of occurrence instants over a horizon, all respecting the
minimum spacing, so the simulator's event sources and the analytical
tests can share workloads.
"""

from __future__ import annotations

import random
from typing import List


def uniform_gap_events(
    horizon_ns: int,
    min_interevent_ns: int,
    seed: int = 0,
    gap_jitter_ns: int = None,
) -> List[int]:
    """Gaps of ``min + U(0, jitter)``; phases sweep the cycle uniformly.

    This is the process the paper describes ("occurrence time ... is
    stochastic, in line with uniform distribution") and the simulator's
    default.
    """
    if min_interevent_ns <= 0:
        raise ValueError("minimum inter-event time must be positive")
    if gap_jitter_ns is None:
        gap_jitter_ns = min_interevent_ns
    rng = random.Random(seed)
    times: List[int] = []
    t = rng.randint(0, min_interevent_ns)
    while t < horizon_ns:
        times.append(t)
        t += min_interevent_ns + rng.randint(0, gap_jitter_ns)
    return times


def poisson_events(
    horizon_ns: int,
    min_interevent_ns: int,
    mean_gap_ns: int,
    seed: int = 0,
) -> List[int]:
    """Exponential extra gaps on top of the minimum spacing.

    Models sporadic alarms: mostly far apart, occasionally back-to-back
    at exactly the minimum spacing.
    """
    if mean_gap_ns < min_interevent_ns:
        raise ValueError(
            f"mean gap {mean_gap_ns} below the minimum inter-event time "
            f"{min_interevent_ns}"
        )
    rng = random.Random(seed)
    extra_mean = mean_gap_ns - min_interevent_ns
    times: List[int] = []
    t = rng.randint(0, min_interevent_ns)
    while t < horizon_ns:
        times.append(t)
        extra = int(rng.expovariate(1.0 / extra_mean)) if extra_mean > 0 else 0
        t += min_interevent_ns + extra
    return times


def burst_events(
    horizon_ns: int,
    min_interevent_ns: int,
    burst_size: int,
    burst_gap_ns: int,
    seed: int = 0,
) -> List[int]:
    """Bursts of ``burst_size`` events at minimum spacing, far apart.

    Stresses prudent reservation: consecutive events arrive exactly at
    the minimum inter-event time, the worst case Alg. 1 budgets for.
    """
    if burst_size < 1:
        raise ValueError("burst size must be at least 1")
    if burst_gap_ns < min_interevent_ns:
        raise ValueError("burst gap must be at least the minimum spacing")
    rng = random.Random(seed)
    times: List[int] = []
    t = rng.randint(0, min_interevent_ns)
    while t < horizon_ns:
        for i in range(burst_size):
            event = t + i * min_interevent_ns
            if event >= horizon_ns:
                break
            times.append(event)
        t += burst_gap_ns + rng.randint(0, min_interevent_ns)
    return times


def validate_min_spacing(times: List[int], min_interevent_ns: int) -> None:
    """Assert the defining ECT property; raises ``ValueError`` if violated."""
    for a, b in zip(times, times[1:]):
        if b - a < min_interevent_ns:
            raise ValueError(
                f"events at {a} and {b} are {b - a} ns apart, below the "
                f"minimum inter-event time {min_interevent_ns} ns"
            )
