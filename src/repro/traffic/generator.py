"""Industrial traffic generation in the style of IEC/IEEE 60802.

The paper's evaluation (Secs. VI-B, VI-C) generates TCT randomly per the
industrial-automation TSN profile: random source/destination end devices,
periods drawn from a small set, "and the payload length of the streams is
adjusted to form different network load status".  This module implements
exactly that: draw the stream population, then size one common payload so
the most-loaded link carries the target fraction of its bandwidth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.stream import Priorities, Stream, StreamError, StreamType
from repro.model.topology import Topology
from repro.model.units import (
    ETHERNET_MIN_PAYLOAD_BYTES,
    ETHERNET_MTU_BYTES,
    NS_PER_S,
    frames_for_payload,
    wire_bytes,
)


@dataclass
class TrafficConfig:
    """Knobs of the random TCT population."""

    num_streams: int
    periods_ns: Sequence[int]
    target_load: float  #: utilization of the most-loaded link, in (0, 1)
    seed: int = 0
    share: bool = True  #: whether generated streams share slots with ECT
    #: how many streams are *not* shared (taken from the front of the
    #: population, for the paper's Fig. 15 scenario).
    num_nonshared: int = 0
    max_frames_per_message: int = 10
    #: restrict endpoints to these device names (default: all devices)
    devices: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        if self.num_streams < 1:
            raise ValueError("need at least one stream")
        if not self.periods_ns:
            raise ValueError("need at least one period")
        if not 0 < self.target_load < 1:
            raise ValueError(f"target load must be in (0,1), got {self.target_load}")
        if not 0 <= self.num_nonshared <= self.num_streams:
            raise ValueError("num_nonshared out of range")


@dataclass
class GeneratedTraffic:
    """The drawn population plus what load it actually achieves."""

    streams: List[Stream]
    payload_bytes: int
    achieved_load: float
    link_loads: Dict[Tuple[str, str], float]

    @property
    def most_loaded_link(self) -> Tuple[str, str]:
        return max(self.link_loads, key=self.link_loads.get)


def _stream_bps(payload_bytes: int, period_ns: int) -> float:
    """Bandwidth one stream consumes, all framing overhead included."""
    total_wire = sum(wire_bytes(p) for p in frames_for_payload(payload_bytes))
    return total_wire * 8 * NS_PER_S / period_ns


def _link_loads(
    routes: Sequence[Tuple[Tuple[Tuple[str, str], ...], int]],
    payload_bytes: int,
    bandwidth: Dict[Tuple[str, str], int],
) -> Dict[Tuple[str, str], float]:
    loads: Dict[Tuple[str, str], float] = {}
    for links, period_ns in routes:
        bps = _stream_bps(payload_bytes, period_ns)
        for key in links:
            loads[key] = loads.get(key, 0.0) + bps / bandwidth[key]
    return loads


def generate_tct(topology: Topology, config: TrafficConfig) -> GeneratedTraffic:
    """Draw the TCT population and size payloads to the target load.

    Raises :class:`StreamError` when the target load is unreachable:
    below the minimum Ethernet payload's load, or above what
    ``max_frames_per_message`` MTUs per message can produce.
    """
    rng = random.Random(config.seed)
    device_names = (
        list(config.devices)
        if config.devices is not None
        else [d.name for d in topology.devices]
    )
    if len(device_names) < 2:
        raise StreamError("need at least two end devices to draw streams")

    drawn: List[Tuple[str, str, int, Tuple]] = []
    routes: List[Tuple[Tuple[Tuple[str, str], ...], int]] = []
    for i in range(config.num_streams):
        src, dst = rng.sample(device_names, 2)
        period = rng.choice(list(config.periods_ns))
        path = tuple(topology.shortest_path(src, dst))
        drawn.append((src, dst, period, path))
        routes.append((tuple(link.key for link in path), period))

    bandwidth = {link.key: link.bandwidth_bps for link in topology.links}
    payload = _fit_payload(routes, bandwidth, config)
    loads = _link_loads(routes, payload, bandwidth)
    achieved = max(loads.values())

    streams: List[Stream] = []
    for i, (src, dst, period, path) in enumerate(drawn):
        shared = config.share and i >= config.num_nonshared
        if shared:
            priority = Priorities.SH_PL + i % (Priorities.SH_PH - Priorities.SH_PL + 1)
        else:
            priority = Priorities.NSH_PL + i % (Priorities.NSH_PH - Priorities.NSH_PL + 1)
        streams.append(
            Stream(
                name=f"tct{i + 1}",
                path=path,
                e2e_ns=period,
                priority=priority,
                length_bytes=payload,
                period_ns=period,
                type=StreamType.DET,
                share=shared,
            )
        )
    return GeneratedTraffic(
        streams=streams,
        payload_bytes=payload,
        achieved_load=achieved,
        link_loads=loads,
    )


def _fit_payload(
    routes,
    bandwidth: Dict[Tuple[str, str], int],
    config: TrafficConfig,
) -> int:
    """Largest common payload whose max-link load stays <= target."""
    low = ETHERNET_MIN_PAYLOAD_BYTES
    high = config.max_frames_per_message * ETHERNET_MTU_BYTES

    def load_at(payload: int) -> float:
        return max(_link_loads(routes, payload, bandwidth).values())

    if load_at(low) > config.target_load:
        raise StreamError(
            f"target load {config.target_load:.0%} is below what even "
            f"minimum payloads produce ({load_at(low):.1%}); draw fewer "
            f"streams or use a different seed"
        )
    if load_at(high) < config.target_load:
        raise StreamError(
            f"target load {config.target_load:.0%} is unreachable with "
            f"{config.max_frames_per_message} MTU messages "
            f"(max {load_at(high):.1%}); draw more streams"
        )
    while high - low > 1:
        mid = (low + high) // 2
        if load_at(mid) <= config.target_load:
            low = mid
        else:
            high = mid
    return low
