"""``repro campaign`` subcommands: run / status / report / example-spec.

``run`` executes (or resumes) a campaign from a spec JSON into an
output directory; ``status`` prints per-cell completion; ``report``
aggregates the shards into the scenario-matrix report (markdown and/or
JSON); ``example-spec`` prints a ready-to-edit spec for the
loss x drift acceptance matrix.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.campaign.aggregate import aggregate_results
from repro.campaign.report import render_json, render_markdown, render_status
from repro.campaign.runner import (
    CampaignError,
    campaign_status,
    load_results,
    load_spec,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec, SpecError, example_spec


def add_campaign_parser(subparsers) -> None:
    campaign = subparsers.add_parser(
        "campaign",
        help="Monte Carlo robustness campaigns (repro.campaign)",
    )
    sub = campaign.add_subparsers(dest="campaign_command", required=True)

    run = sub.add_parser(
        "run", help="execute (or resume) a campaign from a spec JSON"
    )
    run.add_argument("--spec", required=True, help="CampaignSpec JSON file")
    run.add_argument("--out", required=True,
                     help="campaign directory (spec pin + run shards)")
    run.add_argument("--workers", type=int, default=None,
                     help="process-pool size (default: one per core; "
                          "1 runs inline)")
    run.add_argument("--seeds", type=int, default=None,
                     help="override the spec's seeds-per-cell")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-run progress lines")

    status = sub.add_parser(
        "status", help="per-cell completion of a campaign directory"
    )
    status.add_argument("--out", required=True, help="campaign directory")
    status.add_argument("--format", default="text", choices=("text", "json"))

    report = sub.add_parser(
        "report", help="aggregate shards into the scenario-matrix report"
    )
    report.add_argument("--out", required=True, help="campaign directory")
    report.add_argument("--format", default="markdown",
                        choices=("markdown", "json"))
    report.add_argument("--output", metavar="FILE",
                        help="write the report here instead of stdout")
    report.add_argument("--json-out", metavar="FILE",
                        help="additionally write the JSON report here")

    example = sub.add_parser(
        "example-spec", help="print the loss x drift example spec JSON"
    )
    example.add_argument("--seeds", type=int, default=20)


def _load_spec_file(path: str) -> CampaignSpec:
    try:
        with open(path) as handle:
            return CampaignSpec.from_dict(json.load(handle))
    except FileNotFoundError:
        raise SystemExit(f"campaign: no such spec file: {path}")
    except (json.JSONDecodeError, SpecError) as exc:
        raise SystemExit(f"campaign: bad spec {path}: {exc}")


def _run(args) -> int:
    spec = _load_spec_file(args.spec)
    if args.seeds is not None:
        spec = spec.with_seeds(args.seeds)

    def progress(run_id: str, done: int, total: int) -> None:
        print(f"[{done}/{total}] {run_id}", file=sys.stderr)

    try:
        outcome = run_campaign(
            spec, Path(args.out), workers=args.workers,
            progress=None if args.quiet else progress,
        )
    except CampaignError as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 1
    print(json.dumps({
        "campaign": spec.name,
        "total_runs": outcome.total,
        "executed": outcome.executed,
        "skipped": outcome.skipped,
    }))
    return 0


def _status(args) -> int:
    try:
        status = campaign_status(Path(args.out))
    except CampaignError as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        print(json.dumps(status, indent=2))
    else:
        print(render_status(status))
    return 0


def _report(args) -> int:
    try:
        spec = load_spec(Path(args.out))
    except CampaignError as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 1
    results = load_results(Path(args.out))
    report = aggregate_results(spec, results)
    text = (
        render_json(report) if args.format == "json"
        else render_markdown(report)
    )
    if args.output:
        Path(args.output).write_text(text)
    else:
        sys.stdout.write(text)
    if args.json_out:
        Path(args.json_out).write_text(render_json(report))
    return 0


def run_campaign_cli(args) -> int:
    if args.campaign_command == "run":
        return _run(args)
    if args.campaign_command == "status":
        return _status(args)
    if args.campaign_command == "report":
        return _report(args)
    spec = example_spec().with_seeds(args.seeds)
    print(json.dumps(spec.to_dict(), indent=2))
    return 0
