"""Statistical reductions for campaign aggregation.

Deadline misses are Bernoulli outcomes, so per-cell miss probability is
reported with a Wilson score interval — well-behaved at the extremes
(0 misses out of N does not collapse to a zero-width interval the way
the normal approximation does), which is exactly where a robustness
campaign lives.  Latency percentiles are nearest-rank over the pooled
per-run samples — the repo-wide :func:`repro.obs.nearest_rank`
implementation, re-exported here for campaign callers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.obs.histogram import nearest_rank

__all__ = [
    "WilsonInterval",
    "Z_95",
    "latency_summary",
    "nearest_rank",
    "wilson_interval",
]

#: Two-sided z for the default 95 % interval.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class WilsonInterval:
    """A binomial proportion with its Wilson score bounds."""

    successes: int
    trials: int
    estimate: float
    low: float
    high: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "estimate": self.estimate,
            "low": self.low,
            "high": self.high,
        }


def wilson_interval(
    successes: int, trials: int, z: float = Z_95
) -> WilsonInterval:
    """Wilson score interval for ``successes`` out of ``trials``.

    ``trials == 0`` yields the vacuous [0, 1] interval with estimate 0.
    """
    if successes < 0 or trials < 0 or successes > trials:
        raise ValueError(
            f"need 0 <= successes <= trials, got {successes}/{trials}"
        )
    if trials == 0:
        return WilsonInterval(0, 0, 0.0, 0.0, 1.0)
    p = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    center = (p + z2 / (2.0 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))
        / denominator
    )
    # at the extremes the bounds are exactly 0 / 1 algebraically; pin
    # them so float rounding cannot exclude the point estimate
    low = 0.0 if successes == 0 else max(0.0, center - margin)
    high = 1.0 if successes == trials else min(1.0, center + margin)
    return WilsonInterval(
        successes=successes, trials=trials, estimate=p, low=low, high=high,
    )


def latency_summary(sorted_values: Sequence[int]) -> Dict[str, int]:
    """The p50/p99/p999/max quartet the campaign report carries."""
    if not sorted_values:
        return {}
    return {
        "p50_ns": nearest_rank(sorted_values, 0.50),
        "p99_ns": nearest_rank(sorted_values, 0.99),
        "p999_ns": nearest_rank(sorted_values, 0.999),
        "max_ns": sorted_values[-1],
    }
