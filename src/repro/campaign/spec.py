"""Declarative Monte Carlo campaign specifications.

A :class:`CampaignSpec` names a scenario matrix: the cross product of
per-link loss rates, clock-error profiles (drift / initial offset /
802.1AS sync residual), background TCT load, FRER on/off, and the
figure scenario, each cell replicated over ``seeds`` independent runs.

Determinism is the load-bearing property.  Every run is identified by
``(cell_id, seed_index)`` and all of its randomness is derived from that
identity with :func:`derive_seed` (SHA-256, not ``hash()``, so the
derivation survives interpreter restarts and ``PYTHONHASHSEED``):

* the simulator seed — which in turn seeds the per-link loss RNGs
  (``f"{seed}:loss:{src}->{dst}"`` inside :class:`repro.sim.TsnSimulation`),
  the per-source event RNGs, and the :class:`repro.sim.SyncDomain`
  residual RNG;
* the clock-assignment RNG that draws each node's drift and initial
  offset.

Re-running any run therefore reproduces it bit for bit, regardless of
which worker process executes it or in which order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Tuple

#: Scenarios a campaign may sweep.  ``ring`` is the dual-homed ring —
#: the only one with two link-disjoint ECT paths, hence the only one on
#: which the FRER axis may be switched on.
SCENARIOS = ("ring", "testbed", "simulation")

#: Scenarios whose talker is dual-homed (FRER-capable).
FRER_SCENARIOS = ("ring",)


class SpecError(ValueError):
    """Raised for invalid campaign specifications."""


def derive_seed(base_seed: int, cell_id: str, seed_index: int, purpose: str) -> int:
    """A 63-bit seed bound to one run and one purpose.

    Stable across processes and Python versions: SHA-256 over the
    textual identity, truncated.  Distinct ``purpose`` strings give
    independent streams for the same run.
    """
    text = f"{base_seed}|{cell_id}|{seed_index}|{purpose}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class ClockErrorSpec:
    """One point on the clock-error axis.

    drift_ppb
        Maximum |per-node drift|; each node draws uniformly from
        ``[-drift_ppb, +drift_ppb]``.
    offset_ns
        Maximum initial clock phase error; each node draws uniformly
        from ``[-offset_ns, 0]`` (non-positive, so the talkers' global
        injection instants stay inside the simulated horizon).
    sync_residual_ns
        802.1AS post-correction residual bound (the paper's toolkit
        timestamps at 10 ns).  Sync runs whenever the profile is not
        all-zero.
    sync_interval_ns
        802.1AS correction period (default 1/32 s).
    """

    drift_ppb: int = 0
    offset_ns: int = 0
    sync_residual_ns: int = 0
    sync_interval_ns: int = 31_250_000

    def __post_init__(self) -> None:
        if self.drift_ppb < 0:
            raise SpecError(f"drift_ppb must be >= 0, got {self.drift_ppb}")
        if self.offset_ns < 0:
            raise SpecError(f"offset_ns must be >= 0, got {self.offset_ns}")
        if self.sync_residual_ns < 0:
            raise SpecError(
                f"sync_residual_ns must be >= 0, got {self.sync_residual_ns}"
            )
        if self.sync_interval_ns <= 0:
            raise SpecError(
                f"sync_interval_ns must be positive, got {self.sync_interval_ns}"
            )

    @property
    def is_perfect(self) -> bool:
        """True when every clock is ideal (sync has nothing to do)."""
        return (
            self.drift_ppb == 0
            and self.offset_ns == 0
            and self.sync_residual_ns == 0
        )

    def label(self) -> str:
        return (
            f"drift{self.drift_ppb}-off{self.offset_ns}"
            f"-res{self.sync_residual_ns}"
        )

    def to_dict(self) -> Dict[str, int]:
        return {
            "drift_ppb": self.drift_ppb,
            "offset_ns": self.offset_ns,
            "sync_residual_ns": self.sync_residual_ns,
            "sync_interval_ns": self.sync_interval_ns,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "ClockErrorSpec":
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"unknown clock-error field(s): {', '.join(unknown)}")
        return cls(**data)


def _loss_label(loss: float) -> str:
    """Deterministic short text for a loss probability (``0.0001`` -> ``1e-04``)."""
    if loss == 0:
        return "0"
    return format(loss, ".0e") if loss < 0.01 else format(loss, "g")


@dataclass(frozen=True)
class CellSpec:
    """One cell of the matrix: every axis pinned, seeds still free."""

    scenario: str
    loss_rate: float
    clock: ClockErrorSpec
    load: float
    frer: bool

    @property
    def cell_id(self) -> str:
        """Filename-safe, human-readable identity of this cell."""
        return (
            f"{self.scenario}-loss{_loss_label(self.loss_rate)}"
            f"-{self.clock.label()}-load{format(self.load, 'g')}"
            f"-frer{'on' if self.frer else 'off'}"
        )

    def axes(self) -> Dict[str, object]:
        """The cell's coordinates, as the report keys them."""
        return {
            "scenario": self.scenario,
            "loss_rate": self.loss_rate,
            "drift_ppb": self.clock.drift_ppb,
            "offset_ns": self.clock.offset_ns,
            "sync_residual_ns": self.clock.sync_residual_ns,
            "load": self.load,
            "frer": self.frer,
        }


@dataclass(frozen=True)
class RunSpec:
    """One run: a cell plus a seed index."""

    cell: CellSpec
    seed_index: int

    @property
    def run_id(self) -> str:
        return f"{self.cell.cell_id}-seed{self.seed_index:04d}"


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative scenario matrix of one robustness campaign."""

    name: str
    scenarios: Tuple[str, ...] = ("ring",)
    loss_rates: Tuple[float, ...] = (0.0,)
    clock_errors: Tuple[ClockErrorSpec, ...] = (ClockErrorSpec(),)
    loads: Tuple[float, ...] = (0.25,)
    frer: Tuple[bool, ...] = (False,)
    seeds: int = 20
    base_seed: int = 1
    duration_ms: int = 400
    ect_length_bytes: int = 1500
    possibilities: int = 4
    #: ring-buffer capacity for the per-hop frame tracer of each run.
    trace_spans: int = 1 << 18

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in "/\\ "):
            raise SpecError(
                f"campaign name must be non-empty and path-safe, got {self.name!r}"
            )
        for scenario in self.scenarios:
            if scenario not in SCENARIOS:
                raise SpecError(
                    f"unknown scenario {scenario!r}; expected one of {SCENARIOS}"
                )
            if scenario not in FRER_SCENARIOS and True in self.frer:
                raise SpecError(
                    f"scenario {scenario!r} has a single-homed talker; the "
                    f"FRER axis needs link-disjoint paths (use "
                    f"{', '.join(FRER_SCENARIOS)!s})"
                )
        for loss in self.loss_rates:
            if not 0.0 <= loss <= 1.0:
                raise SpecError(f"loss rate {loss} outside [0, 1]")
        for load in self.loads:
            if not 0.0 < load < 1.0:
                raise SpecError(f"load {load} outside (0, 1)")
        if not (self.scenarios and self.loss_rates and self.clock_errors
                and self.loads and self.frer):
            raise SpecError("every axis needs at least one value")
        if self.seeds < 1:
            raise SpecError(f"seeds must be >= 1, got {self.seeds}")
        if self.duration_ms < 1:
            raise SpecError(f"duration_ms must be >= 1, got {self.duration_ms}")
        if self.trace_spans < 1:
            raise SpecError(f"trace_spans must be >= 1, got {self.trace_spans}")

    # ------------------------------------------------------------- matrix
    def cells(self) -> List[CellSpec]:
        """Every cell, in deterministic axis order."""
        return [
            CellSpec(scenario=scenario, loss_rate=loss, clock=clock,
                     load=load, frer=frer)
            for scenario in self.scenarios
            for loss in self.loss_rates
            for clock in self.clock_errors
            for load in self.loads
            for frer in self.frer
        ]

    def runs(self) -> Iterator[RunSpec]:
        """Every run of the campaign, cells outer, seeds inner."""
        for cell in self.cells():
            for seed_index in range(self.seeds):
                yield RunSpec(cell=cell, seed_index=seed_index)

    def total_runs(self) -> int:
        return len(self.cells()) * self.seeds

    def sim_seed(self, run: RunSpec) -> int:
        """The simulator seed of one run (drives loss/event/sync RNGs)."""
        return derive_seed(self.base_seed, run.cell.cell_id, run.seed_index, "sim")

    def clock_seed(self, run: RunSpec) -> int:
        """The seed drawing per-node drift and initial offset."""
        return derive_seed(self.base_seed, run.cell.cell_id, run.seed_index, "clock")

    # ------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "scenarios": list(self.scenarios),
            "loss_rates": list(self.loss_rates),
            "clock_errors": [c.to_dict() for c in self.clock_errors],
            "loads": list(self.loads),
            "frer": list(self.frer),
            "seeds": self.seeds,
            "base_seed": self.base_seed,
            "duration_ms": self.duration_ms,
            "ect_length_bytes": self.ect_length_bytes,
            "possibilities": self.possibilities,
            "trace_spans": self.trace_spans,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"unknown campaign field(s): {', '.join(unknown)}")
        if "name" not in data:
            raise SpecError("campaign spec needs a name")
        kwargs = dict(data)
        for axis in ("scenarios", "loss_rates", "loads", "frer"):
            if axis in kwargs:
                kwargs[axis] = tuple(kwargs[axis])  # type: ignore[arg-type]
        if "clock_errors" in kwargs:
            kwargs["clock_errors"] = tuple(
                ClockErrorSpec.from_dict(c)  # type: ignore[arg-type]
                for c in kwargs["clock_errors"]  # type: ignore[union-attr]
            )
        return cls(**kwargs)  # type: ignore[arg-type]

    def with_seeds(self, seeds: int) -> "CampaignSpec":
        return replace(self, seeds=seeds)


def example_spec() -> CampaignSpec:
    """The loss x drift matrix of the acceptance criteria, ready to run."""
    return CampaignSpec(
        name="loss-x-drift",
        scenarios=("ring",),
        loss_rates=(0.0, 1e-4, 1e-3),
        clock_errors=(
            ClockErrorSpec(),
            ClockErrorSpec(drift_ppb=50, sync_residual_ns=10),
            ClockErrorSpec(drift_ppb=500, sync_residual_ns=10),
        ),
        loads=(0.25,),
        frer=(False, True),
        seeds=20,
    )
