"""Per-run harness: one matrix cell x one seed -> a compact RunResult.

The harness reuses the evaluation pipeline end to end — scenario
workload (:mod:`repro.experiments.scenarios`), E-TSN scheduling (with
802.1CB members when the cell's FRER axis is on), GCL synthesis, and the
discrete-event simulator with per-hop frame tracing enabled — then
reduces the run to what the aggregator needs: per-stream deadline-miss
counts and latency samples, FRER elimination stats, per-link drop
counts harvested from the trace, and the sync domain's worst observed
clock error.

Everything random in a run is derived from the campaign spec and the
run identity (see :mod:`repro.campaign.spec`), so a ``RunResult`` is a
pure function of ``(spec, cell_id, seed_index)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.campaign.spec import CampaignSpec, RunSpec, derive_seed
from repro.core import build_gcl, schedule_etsn, schedule_etsn_frer
from repro.experiments.scenarios import (
    Workload,
    ring_workload,
    simulation_workload,
    testbed_workload,
)
from repro.model.units import milliseconds
from repro.obs import Tracer
from repro.sim import SimConfig, SyncConfig, TsnSimulation

_WORKLOAD_BUILDERS = {
    "ring": ring_workload,
    "testbed": testbed_workload,
    "simulation": simulation_workload,
}

#: (scenario, load, frer, length, possibilities, base_seed) ->
#: (workload, schedule, gcl).  Scheduling is deterministic and loss /
#: clock error are run-time knobs, so every run of a (scenario, load,
#: frer) slice shares one schedule; the memo saves re-solving it per
#: seed inside a worker process.
_SCHEDULE_MEMO: Dict[Tuple, Tuple[Workload, object, object]] = {}


@dataclass
class StreamOutcome:
    """One stream's reduction of one run."""

    deadline_ns: int
    injected: int
    delivered: int
    deadline_misses: int
    #: ascending end-to-end latencies of the delivered messages
    latencies_ns: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "deadline_ns": self.deadline_ns,
            "injected": self.injected,
            "delivered": self.delivered,
            "deadline_misses": self.deadline_misses,
            "latencies_ns": list(self.latencies_ns),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamOutcome":
        return cls(
            deadline_ns=int(data["deadline_ns"]),
            injected=int(data["injected"]),
            delivered=int(data["delivered"]),
            deadline_misses=int(data["deadline_misses"]),
            latencies_ns=[int(v) for v in data["latencies_ns"]],
        )


@dataclass
class RunResult:
    """The compact, JSON-serializable product of one run."""

    run_id: str
    cell_id: str
    seed_index: int
    sim_seed: int
    axes: Dict[str, object]
    duration_ns: int
    streams: Dict[str, StreamOutcome]
    frames_lost: int
    duplicates_eliminated: int
    sync_error_max_ns: int
    #: per-directed-link count of frames the loss process dropped,
    #: harvested from the per-hop ``frame.drop`` trace events.
    drops_by_link: Dict[str, int]
    #: per-hop frame event counts by kind (enqueue/transmit/deliver/drop).
    frame_events: Dict[str, int]
    #: trace spans evicted by the ring buffer (0 = full per-hop record).
    trace_overflow: int
    num_events: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "cell_id": self.cell_id,
            "seed_index": self.seed_index,
            "sim_seed": self.sim_seed,
            "axes": dict(self.axes),
            "duration_ns": self.duration_ns,
            "streams": {
                name: outcome.to_dict()
                for name, outcome in sorted(self.streams.items())
            },
            "frames_lost": self.frames_lost,
            "duplicates_eliminated": self.duplicates_eliminated,
            "sync_error_max_ns": self.sync_error_max_ns,
            "drops_by_link": dict(sorted(self.drops_by_link.items())),
            "frame_events": dict(sorted(self.frame_events.items())),
            "trace_overflow": self.trace_overflow,
            "num_events": self.num_events,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        return cls(
            run_id=str(data["run_id"]),
            cell_id=str(data["cell_id"]),
            seed_index=int(data["seed_index"]),
            sim_seed=int(data["sim_seed"]),
            axes=dict(data["axes"]),
            duration_ns=int(data["duration_ns"]),
            streams={
                name: StreamOutcome.from_dict(outcome)
                for name, outcome in data["streams"].items()
            },
            frames_lost=int(data["frames_lost"]),
            duplicates_eliminated=int(data["duplicates_eliminated"]),
            sync_error_max_ns=int(data["sync_error_max_ns"]),
            drops_by_link={k: int(v) for k, v in data["drops_by_link"].items()},
            frame_events={k: int(v) for k, v in data["frame_events"].items()},
            trace_overflow=int(data["trace_overflow"]),
            num_events=int(data["num_events"]),
        )


# ---------------------------------------------------------------- build
def _workload_seed(spec: CampaignSpec, scenario: str, load: float) -> int:
    """One workload per (scenario, load) slice — identical across the
    loss / clock / FRER axes, so those cells differ only in the fault
    process, never in the traffic they carry."""
    key = f"workload:{scenario}:{format(load, 'g')}"
    return derive_seed(spec.base_seed, key, 0, "workload") % (2**31)


def _build_schedule(spec: CampaignSpec, run: RunSpec):
    cell = run.cell
    memo_key = (
        cell.scenario, format(cell.load, "g"), cell.frer,
        spec.ect_length_bytes, spec.possibilities, spec.base_seed,
    )
    if memo_key in _SCHEDULE_MEMO:
        return _SCHEDULE_MEMO[memo_key]
    workload = _WORKLOAD_BUILDERS[cell.scenario](
        cell.load,
        seed=_workload_seed(spec, cell.scenario, cell.load),
        ect_length_bytes=spec.ect_length_bytes,
        possibilities=spec.possibilities,
    )
    if cell.frer:
        schedule = schedule_etsn_frer(
            workload.topology, workload.tct_streams, workload.ect_streams
        )
    else:
        schedule = schedule_etsn(
            workload.topology, workload.tct_streams, workload.ect_streams
        )
    gcl = build_gcl(
        schedule, mode="etsn", ect_proxies=schedule.meta.get("ect_proxies")
    )
    _SCHEDULE_MEMO[memo_key] = (workload, schedule, gcl)
    return _SCHEDULE_MEMO[memo_key]


def _backbone_loss(workload: Workload, loss_rate: float) -> Dict[Tuple[str, str], float]:
    """Uniform loss on every switch-to-switch link.

    Device attach links stay clean: loss there would hit plain and
    FRER runs before replication diverges the copies, muddying the
    axis the campaign measures.
    """
    if loss_rate <= 0.0:
        return {}
    topology = workload.topology
    return {
        link.key: loss_rate
        for link in topology.links
        if topology.node(link.src).is_switch and topology.node(link.dst).is_switch
    }


def _clock_assignment(
    spec: CampaignSpec, run: RunSpec, workload: Workload
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Draw per-node drift and initial offset for this run.

    Offsets are drawn non-positive (local clocks start at or behind
    true time) so the talkers' time-0 slot conversions never land
    before the simulation epoch.
    """
    clock = run.cell.clock
    if clock.is_perfect:
        return {}, {}
    rng = random.Random(spec.clock_seed(run))
    drifts: Dict[str, int] = {}
    offsets: Dict[str, int] = {}
    for name in sorted(node.name for node in workload.topology.nodes):
        if clock.drift_ppb:
            drifts[name] = rng.randint(-clock.drift_ppb, clock.drift_ppb)
        if clock.offset_ns:
            offsets[name] = -rng.randint(0, clock.offset_ns)
    return drifts, offsets


# -------------------------------------------------------------- execute
def execute_run(spec: CampaignSpec, run: RunSpec) -> RunResult:
    """Run one cell x seed and reduce it to a :class:`RunResult`."""
    workload, schedule, gcl = _build_schedule(spec, run)
    cell = run.cell
    drifts, offsets = _clock_assignment(spec, run, workload)
    sync = None
    if not cell.clock.is_perfect:
        sync = SyncConfig(
            sync_interval_ns=cell.clock.sync_interval_ns,
            residual_error_ns=cell.clock.sync_residual_ns,
        )
    tracer = Tracer(max_spans=spec.trace_spans)
    config = SimConfig(
        duration_ns=milliseconds(spec.duration_ms),
        seed=spec.sim_seed(run),
        clock_drift_ppb=drifts,
        clock_offset_ns=offsets,
        sync=sync,
        link_loss=_backbone_loss(workload, cell.loss_rate),
        tracer=tracer,
    )
    report = TsnSimulation(schedule, gcl, config).run()
    recorder = report.recorder

    deadlines: Dict[str, int] = {
        stream.name: stream.e2e_ns for stream in workload.tct_streams
    }
    for ect in workload.ect_streams:
        deadlines[ect.name] = ect.effective_e2e_ns

    streams: Dict[str, StreamOutcome] = {}
    for name, deadline_ns in deadlines.items():
        latencies = sorted(recorder.latencies(name))
        injected = recorder.injected(name)
        late = sum(1 for value in latencies if value > deadline_ns)
        lost = injected - len(latencies)
        streams[name] = StreamOutcome(
            deadline_ns=deadline_ns,
            injected=injected,
            delivered=len(latencies),
            deadline_misses=lost + late,
            latencies_ns=latencies,
        )

    drops_by_link: Dict[str, int] = {}
    frame_events: Dict[str, int] = {}
    for span in tracer.spans():
        if not span.name.startswith("frame."):
            continue
        frame_events[span.name] = frame_events.get(span.name, 0) + 1
        if span.name == "frame.drop":
            link = str(span.attributes.get("link", "?"))
            drops_by_link[link] = drops_by_link.get(link, 0) + 1

    return RunResult(
        run_id=run.run_id,
        cell_id=cell.cell_id,
        seed_index=run.seed_index,
        sim_seed=config.seed,
        axes=cell.axes(),
        duration_ns=config.duration_ns,
        streams=streams,
        frames_lost=report.frames_lost,
        duplicates_eliminated=recorder.duplicates_eliminated,
        sync_error_max_ns=report.sync_error_ns,
        drops_by_link=drops_by_link,
        frame_events=frame_events,
        trace_overflow=tracer.dropped,
        num_events=report.num_events,
    )
