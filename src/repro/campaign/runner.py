"""Campaign execution: fan runs across a process pool, resumably.

Layout of a campaign directory::

    <out>/spec.json           the spec that owns the directory
    <out>/runs/<run_id>.json  one shard per completed run

Shards are written atomically (temp file + ``os.replace``), so an
interrupted campaign leaves only whole shards behind; re-running skips
every run whose shard already parses and carries the matching run id.
Because a run is a pure function of ``(spec, cell_id, seed_index)``,
resuming with more workers — or with one — produces byte-identical
shards.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.campaign.harness import RunResult, execute_run
from repro.campaign.spec import CampaignSpec, RunSpec, SpecError

SPEC_FILENAME = "spec.json"
RUNS_DIRNAME = "runs"


class CampaignError(RuntimeError):
    """Raised when a campaign directory cannot be used."""


@dataclass
class RunProgress:
    """What :func:`run_campaign` reports back."""

    total: int
    skipped: int = 0
    executed: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return self.skipped + self.executed


def _canonical_json(data: Dict[str, object]) -> str:
    """One serialization for shards: key-sorted, fixed separators, so
    equal results are equal bytes."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"


def _write_atomic(path: Path, text: str) -> None:
    tmp = path.with_suffix(".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def shard_path(out_dir: Path, run_id: str) -> Path:
    return Path(out_dir) / RUNS_DIRNAME / f"{run_id}.json"


def _shard_complete(path: Path, run_id: str) -> bool:
    """A shard counts as done when it parses and names this run."""
    if not path.exists():
        return False
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return False
    return isinstance(data, dict) and data.get("run_id") == run_id


def _prepare_dir(spec: CampaignSpec, out_dir: Path) -> None:
    """Create/validate the campaign directory; pin the spec to it."""
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / RUNS_DIRNAME).mkdir(exist_ok=True)
    spec_path = out_dir / SPEC_FILENAME
    if spec_path.exists():
        try:
            existing = json.loads(spec_path.read_text())
        except json.JSONDecodeError as exc:
            raise CampaignError(f"unreadable {spec_path}: {exc}") from exc
        if existing != spec.to_dict():
            raise CampaignError(
                f"{out_dir} belongs to a different campaign spec "
                f"({existing.get('name')!r}); pick another --out directory "
                f"or delete it to start over"
            )
    else:
        _write_atomic(spec_path, _canonical_json(spec.to_dict()))


def load_spec(out_dir: Path) -> CampaignSpec:
    """The spec pinned to a campaign directory."""
    spec_path = Path(out_dir) / SPEC_FILENAME
    if not spec_path.exists():
        raise CampaignError(f"no {SPEC_FILENAME} in {out_dir}; run first")
    try:
        return CampaignSpec.from_dict(json.loads(spec_path.read_text()))
    except (json.JSONDecodeError, SpecError) as exc:
        raise CampaignError(f"unreadable {spec_path}: {exc}") from exc


def _execute_to_shard(spec_dict: Dict[str, object], out: str, cell_index: int,
                      seed_index: int) -> str:
    """Worker entry point: rebuild identity, execute, persist, return id.

    Module-level (picklable) and self-contained: workers re-derive the
    run from the spec dict rather than receiving live objects.
    """
    spec = CampaignSpec.from_dict(spec_dict)
    run = RunSpec(cell=spec.cells()[cell_index], seed_index=seed_index)
    result = execute_run(spec, run)
    path = shard_path(Path(out), run.run_id)
    _write_atomic(path, _canonical_json(result.to_dict()))
    return run.run_id


def run_campaign(
    spec: CampaignSpec,
    out_dir: Path,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str, int, int], None]] = None,
) -> RunProgress:
    """Execute every not-yet-completed run of ``spec`` into ``out_dir``.

    ``workers`` <= 1 runs inline (no pool) — handy for tests and for
    deterministic single-process debugging.  ``progress`` is called as
    ``(run_id, done, total)`` after each run completes.
    """
    out_dir = Path(out_dir)
    _prepare_dir(spec, out_dir)
    runs = list(spec.runs())
    cell_index = {cell.cell_id: i for i, cell in enumerate(spec.cells())}
    report = RunProgress(total=len(runs))

    pending: List[RunSpec] = []
    for run in runs:
        if _shard_complete(shard_path(out_dir, run.run_id), run.run_id):
            report.skipped += 1
        else:
            pending.append(run)

    done = report.skipped
    if workers is not None and workers <= 1:
        for run in pending:
            _execute_to_shard(
                spec.to_dict(), str(out_dir),
                cell_index[run.cell.cell_id], run.seed_index,
            )
            report.executed += 1
            done += 1
            if progress is not None:
                progress(run.run_id, done, report.total)
        return report

    spec_dict = spec.to_dict()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(
                _execute_to_shard, spec_dict, str(out_dir),
                cell_index[run.cell.cell_id], run.seed_index,
            ): run
            for run in pending
        }
        for future in as_completed(futures):
            run = futures[future]
            try:
                future.result()
            except Exception as exc:  # noqa: BLE001 - reported per run
                report.failures.append(f"{run.run_id}: {exc}")
                continue
            report.executed += 1
            done += 1
            if progress is not None:
                progress(run.run_id, done, report.total)
    if report.failures:
        raise CampaignError(
            f"{len(report.failures)} run(s) failed, e.g. {report.failures[0]}"
        )
    return report


def load_results(out_dir: Path) -> List[RunResult]:
    """Every completed shard in ``out_dir``, sorted by run id."""
    runs_dir = Path(out_dir) / RUNS_DIRNAME
    if not runs_dir.is_dir():
        return []
    results: List[RunResult] = []
    for path in sorted(runs_dir.glob("*.json")):
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            continue  # half-written shard from a crashed run: not complete
        results.append(RunResult.from_dict(data))
    return results


def campaign_status(out_dir: Path) -> Dict[str, object]:
    """Completion summary of a campaign directory."""
    spec = load_spec(out_dir)
    per_cell: Dict[str, int] = {}
    completed = 0
    for run in spec.runs():
        if _shard_complete(shard_path(Path(out_dir), run.run_id), run.run_id):
            completed += 1
            per_cell[run.cell.cell_id] = per_cell.get(run.cell.cell_id, 0) + 1
    cells = [
        {
            "cell_id": cell.cell_id,
            "completed": per_cell.get(cell.cell_id, 0),
            "seeds": spec.seeds,
        }
        for cell in spec.cells()
    ]
    return {
        "campaign": spec.name,
        "total_runs": spec.total_runs(),
        "completed_runs": completed,
        "cells": cells,
    }
