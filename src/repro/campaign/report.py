"""Render a campaign's scenario-matrix report as markdown or JSON.

The markdown table is keyed by axis values (one row per cell x stream
of interest) so a loss x drift sweep reads like the paper's evaluation
tables; the JSON carries the full per-stream statistics for downstream
tooling and the CI schema check.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.campaign.aggregate import CampaignReport, CellAggregate
from repro.campaign.stats import nearest_rank
from repro.model.units import ns_to_us


def render_json(report: CampaignReport, indent: int = 2) -> str:
    return json.dumps(report.to_dict(), indent=indent, sort_keys=True) + "\n"


def _axis_cols(cell: CellAggregate) -> List[str]:
    axes = cell.axes
    return [
        str(axes["scenario"]),
        format(axes["loss_rate"], "g"),
        str(axes["drift_ppb"]),
        str(axes["sync_residual_ns"]),
        format(axes["load"], "g"),
        "on" if axes["frer"] else "off",
    ]


def _fmt_prob(value: float) -> str:
    if value == 0.0:
        return "0"
    return f"{value:.2e}" if value < 0.001 else f"{value:.4f}"


def render_markdown(report: CampaignReport) -> str:
    """The human-facing scenario matrix."""
    spec = report.spec
    lines: List[str] = []
    lines.append(f"# Robustness campaign `{spec.name}`")
    lines.append("")
    lines.append(
        f"{len(report.cells)} cells x {spec.seeds} seeds "
        f"({spec.total_runs()} runs, "
        f"{sum(cell.runs for cell in report.cells)} aggregated), "
        f"{spec.duration_ms} simulated ms per run."
    )
    lines.append("")
    header = [
        "scenario", "loss", "drift_ppb", "residual_ns", "load", "frer",
        "stream", "events", "misses", "miss_prob", "wilson_95",
        "p50_us", "p99_us", "p999_us",
    ]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for cell in report.cells:
        for name, aggregate in sorted(cell.streams.items()):
            miss = aggregate.miss
            if aggregate.latencies_ns:
                values = aggregate.latencies_ns
                p50 = f"{ns_to_us(nearest_rank(values, 0.50)):.1f}"
                p99 = f"{ns_to_us(nearest_rank(values, 0.99)):.1f}"
                p999 = f"{ns_to_us(nearest_rank(values, 0.999)):.1f}"
            else:
                p50 = p99 = p999 = "-"
            lines.append("| " + " | ".join(
                _axis_cols(cell) + [
                    name,
                    str(aggregate.injected),
                    str(aggregate.deadline_misses),
                    _fmt_prob(miss.estimate),
                    f"[{_fmt_prob(miss.low)}, {_fmt_prob(miss.high)}]",
                    p50, p99, p999,
                ]
            ) + " |")
    lines.append("")
    lines.append("Per-cell fault totals:")
    lines.append("")
    fault_header = [
        "cell", "runs", "frames_lost", "frer_duplicates_eliminated",
        "max_clock_error_ns",
    ]
    lines.append("| " + " | ".join(fault_header) + " |")
    lines.append("|" + "|".join("---" for _ in fault_header) + "|")
    for cell in report.cells:
        lines.append("| " + " | ".join([
            cell.cell_id,
            str(cell.runs),
            str(cell.frames_lost),
            str(cell.duplicates_eliminated),
            str(cell.sync_error_max_ns),
        ]) + " |")
    lines.append("")
    return "\n".join(lines)


def render_status(status: Dict[str, object]) -> str:
    """Human-readable completion summary for ``repro campaign status``."""
    lines = [
        f"campaign {status['campaign']}: "
        f"{status['completed_runs']}/{status['total_runs']} runs complete"
    ]
    for cell in status["cells"]:  # type: ignore[union-attr]
        lines.append(
            f"  {cell['cell_id']}: {cell['completed']}/{cell['seeds']}"
        )
    return "\n".join(lines)
