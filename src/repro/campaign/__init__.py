"""Monte Carlo robustness campaigns over loss, clock error, and load.

The paper's claim is that E-TSN's prudent reservations — and 802.1CB
replication on top — keep event-triggered critical traffic within
deadline on *imperfect* networks.  This package turns that from a
single-seed anecdote into measured probabilities: a declarative
:class:`~repro.campaign.spec.CampaignSpec` sweeps per-link loss, clock
drift/offset/sync-residual, background load, and FRER on/off over many
seeds; a process pool fans the runs out (each fully determined by its
``(cell, seed)`` identity); per-run shards land on disk resumably; and
the aggregator reports per-stream deadline-miss probability with Wilson
95 % intervals plus p50/p99/p999 latency percentiles per matrix cell.

Layers:

* :mod:`repro.campaign.spec` — the scenario matrix and seed derivation;
* :mod:`repro.campaign.harness` — one run: schedule, simulate with
  fault injection and per-hop tracing, reduce to a ``RunResult``;
* :mod:`repro.campaign.runner` — process-pool execution with atomic,
  resumable shards;
* :mod:`repro.campaign.stats` / ``aggregate`` — Wilson intervals,
  percentiles, per-cell reduction;
* :mod:`repro.campaign.report` — markdown / JSON scenario-matrix
  reports;
* :mod:`repro.campaign.cli` — ``repro campaign run|status|report``.
"""

from repro.campaign.aggregate import (
    CampaignReport,
    CellAggregate,
    StreamAggregate,
    aggregate_results,
)
from repro.campaign.harness import RunResult, StreamOutcome, execute_run
from repro.campaign.report import render_json, render_markdown, render_status
from repro.campaign.runner import (
    CampaignError,
    RunProgress,
    campaign_status,
    load_results,
    load_spec,
    run_campaign,
    shard_path,
)
from repro.campaign.spec import (
    CampaignSpec,
    CellSpec,
    ClockErrorSpec,
    RunSpec,
    SpecError,
    derive_seed,
    example_spec,
)
from repro.campaign.stats import (
    WilsonInterval,
    latency_summary,
    nearest_rank,
    wilson_interval,
)

__all__ = [
    "CampaignError",
    "CampaignReport",
    "CampaignSpec",
    "CellAggregate",
    "CellSpec",
    "ClockErrorSpec",
    "RunProgress",
    "RunResult",
    "RunSpec",
    "SpecError",
    "StreamAggregate",
    "StreamOutcome",
    "WilsonInterval",
    "aggregate_results",
    "campaign_status",
    "derive_seed",
    "example_spec",
    "execute_run",
    "latency_summary",
    "load_results",
    "load_spec",
    "nearest_rank",
    "render_json",
    "render_markdown",
    "render_status",
    "run_campaign",
    "shard_path",
    "wilson_interval",
]
