"""Reduce run shards to the per-cell scenario-matrix statistics.

Per cell and stream, across all seeds: total injected messages, total
deadline misses, the Wilson 95 % interval on the miss probability, and
p50/p99/p999/max latency over the pooled delivered samples.  Cell-level
FRER and fault counters (duplicates eliminated, frames lost, worst
observed clock error) ride along so the report can show *why* a cell
missed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.campaign.harness import RunResult
from repro.campaign.spec import CampaignSpec
from repro.campaign.stats import WilsonInterval, latency_summary, wilson_interval


@dataclass
class StreamAggregate:
    """One stream's statistics over every seed of one cell."""

    deadline_ns: int
    injected: int = 0
    delivered: int = 0
    deadline_misses: int = 0
    latencies_ns: List[int] = field(default_factory=list)

    @property
    def miss(self) -> WilsonInterval:
        return wilson_interval(self.deadline_misses, self.injected)

    def to_dict(self) -> Dict[str, object]:
        miss = self.miss
        data: Dict[str, object] = {
            "deadline_ns": self.deadline_ns,
            "injected": self.injected,
            "delivered": self.delivered,
            "deadline_misses": self.deadline_misses,
            "miss_probability": miss.estimate,
            "miss_ci_low": miss.low,
            "miss_ci_high": miss.high,
        }
        data.update(latency_summary(self.latencies_ns))
        return data


@dataclass
class CellAggregate:
    """One matrix cell, fully reduced."""

    cell_id: str
    axes: Dict[str, object]
    runs: int = 0
    streams: Dict[str, StreamAggregate] = field(default_factory=dict)
    frames_lost: int = 0
    duplicates_eliminated: int = 0
    sync_error_max_ns: int = 0
    drops_by_link: Dict[str, int] = field(default_factory=dict)
    trace_overflow: int = 0

    def add(self, result: RunResult) -> None:
        self.runs += 1
        self.frames_lost += result.frames_lost
        self.duplicates_eliminated += result.duplicates_eliminated
        self.sync_error_max_ns = max(
            self.sync_error_max_ns, result.sync_error_max_ns
        )
        self.trace_overflow += result.trace_overflow
        for link, count in result.drops_by_link.items():
            self.drops_by_link[link] = self.drops_by_link.get(link, 0) + count
        for name, outcome in result.streams.items():
            aggregate = self.streams.get(name)
            if aggregate is None:
                aggregate = StreamAggregate(deadline_ns=outcome.deadline_ns)
                self.streams[name] = aggregate
            aggregate.injected += outcome.injected
            aggregate.delivered += outcome.delivered
            aggregate.deadline_misses += outcome.deadline_misses
            aggregate.latencies_ns.extend(outcome.latencies_ns)

    def finalize(self) -> None:
        for aggregate in self.streams.values():
            aggregate.latencies_ns.sort()

    def worst_miss(self) -> WilsonInterval:
        """The worst per-stream miss interval of the cell."""
        worst = wilson_interval(0, 0)
        for aggregate in self.streams.values():
            candidate = aggregate.miss
            if candidate.estimate > worst.estimate or worst.trials == 0:
                worst = candidate
        return worst

    def to_dict(self) -> Dict[str, object]:
        return {
            "cell_id": self.cell_id,
            "axes": dict(self.axes),
            "runs": self.runs,
            "streams": {
                name: aggregate.to_dict()
                for name, aggregate in sorted(self.streams.items())
            },
            "frames_lost": self.frames_lost,
            "duplicates_eliminated": self.duplicates_eliminated,
            "sync_error_max_ns": self.sync_error_max_ns,
            "drops_by_link": dict(sorted(self.drops_by_link.items())),
            "trace_overflow": self.trace_overflow,
        }


@dataclass
class CampaignReport:
    """The aggregated scenario matrix of one campaign."""

    spec: CampaignSpec
    cells: List[CellAggregate]

    def cell(self, cell_id: str) -> CellAggregate:
        for aggregate in self.cells:
            if aggregate.cell_id == cell_id:
                return aggregate
        raise KeyError(f"no cell {cell_id!r} in report")

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.spec.name,
            "spec": self.spec.to_dict(),
            "total_runs": self.spec.total_runs(),
            "aggregated_runs": sum(cell.runs for cell in self.cells),
            "cells": [cell.to_dict() for cell in self.cells],
        }


def aggregate_results(
    spec: CampaignSpec, results: List[RunResult]
) -> CampaignReport:
    """Group shards by cell in matrix order and reduce each."""
    by_cell: Dict[str, CellAggregate] = {}
    order = spec.cells()
    for cell in order:
        by_cell[cell.cell_id] = CellAggregate(
            cell_id=cell.cell_id, axes=cell.axes()
        )
    for result in results:
        aggregate = by_cell.get(result.cell_id)
        if aggregate is None:
            # a stale shard from an older spec revision: ignore rather
            # than silently polluting a cell
            continue
        aggregate.add(result)
    cells = [by_cell[cell.cell_id] for cell in order]
    for aggregate in cells:
        aggregate.finalize()
    return CampaignReport(spec=spec, cells=cells)
