"""``repro frontend serve`` and ``repro loadgen`` — the network surface.

``frontend serve`` hosts an :class:`~repro.frontend.server.Frontend`
over a single admission service (``--state``/``--topology``) or a
sharded cluster (``--cluster --shards N``), announces the bound
address as one JSON line on stdout (so scripts can use ``--port 0``),
and drains gracefully on SIGTERM/SIGINT.

``loadgen`` drives a running frontend with a seeded shape-mixed
request stream (:mod:`repro.frontend.loadgen`) and prints the measured
report; ``--fail-on-drops`` and ``--slo`` turn it into a CI gate.
"""

from __future__ import annotations

import asyncio
import json
import sys

__all__ = ["add_frontend_parser", "add_loadgen_parser",
           "run_frontend", "run_loadgen_cli"]


def add_frontend_parser(subparsers) -> None:
    """Attach the ``frontend`` subcommand to the top-level CLI parser."""
    frontend = subparsers.add_parser(
        "frontend",
        help="async network admission frontend (repro.frontend)",
    )
    frontend_sub = frontend.add_subparsers(
        dest="frontend_command", required=True
    )
    serve = frontend_sub.add_parser(
        "serve", help="serve admission decisions over a JSONL socket"
    )
    backend_source = serve.add_mutually_exclusive_group(required=True)
    backend_source.add_argument("--state", help="initial schedule JSON")
    backend_source.add_argument(
        "--topology",
        help="topology JSON; starts from an empty schedule",
    )
    serve.add_argument("--cluster", action="store_true",
                       help="shard the topology and serve through a "
                            "ClusterCoordinator (requires --topology)")
    serve.add_argument("--shards", type=int, default=4,
                       help="number of shards with --cluster")
    serve.add_argument("--seeds", metavar="SW[,SW...]",
                       help="comma-separated seed switches with --cluster")
    serve.add_argument("--workers", type=int,
                       help="cluster thread-pool size "
                            "(default: one per shard)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port; 0 picks an ephemeral port and "
                            "announces it on stdout")
    serve.add_argument("--max-queue", type=int, default=1024,
                       help="intake queue bound; a full queue answers "
                            "server_busy instead of buffering")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="requests coalesced per backend call, "
                            "per shard")
    serve.add_argument("--max-pipeline", type=int, default=1024,
                       help="per-connection pipelined responses "
                            "awaiting write before the reader pauses")
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="decision cache capacity")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the decision cache")
    serve.add_argument("--drain-grace-s", type=float, default=10.0,
                       help="graceful-drain budget on shutdown")
    serve.add_argument("--backend", default="heuristic",
                       choices=("heuristic", "smt"),
                       help="backend for the full re-solve rung")
    serve.add_argument("--metrics-out", metavar="FILE",
                       help="write the frontend+backend metrics JSON "
                            "here on shutdown")
    serve.add_argument("--trace", metavar="FILE",
                       help="write admission spans here as JSON-lines")
    from repro.cli import _add_fastpath_flags

    _add_fastpath_flags(serve)


def add_loadgen_parser(subparsers) -> None:
    """Attach the ``loadgen`` subcommand to the top-level CLI parser."""
    loadgen = subparsers.add_parser(
        "loadgen",
        help="drive a running frontend with shape-mixed admission load",
    )
    loadgen.add_argument("--host", default="127.0.0.1",
                         help="frontend address")
    loadgen.add_argument("--port", type=int, required=True,
                         help="frontend port")
    loadgen.add_argument("--requests", type=int, default=10_000,
                         help="total requests to send")
    loadgen.add_argument("--connections", type=int, default=4,
                         help="concurrent client connections")
    loadgen.add_argument("--window", type=int, default=64,
                         help="closed loop: outstanding requests per "
                              "connection")
    loadgen.add_argument("--mode", default="closed",
                         choices=("closed", "open"),
                         help="closed loop (windowed) or open loop "
                              "(fixed rate)")
    loadgen.add_argument("--rate", type=float, default=10_000.0,
                         help="open loop: aggregate requests per second")
    loadgen.add_argument("--endpoint", action="append", required=True,
                         metavar="SRC:DST", dest="endpoints",
                         help="talker:listener device pair the shape "
                              "mix draws routes from (repeatable)")
    loadgen.add_argument("--distinct", type=int, default=8,
                         help="distinct stream profiles in the mix")
    loadgen.add_argument("--infeasible-fraction", type=float, default=1.0,
                         help="fraction of profiles with an impossible "
                              "deadline (deterministic, cacheable "
                              "rejections)")
    loadgen.add_argument("--seed", type=int, default=7,
                         help="shape-mix RNG seed")
    loadgen.add_argument("--timeout-s", type=float, default=120.0,
                         help="per-connection response timeout")
    loadgen.add_argument("--out", metavar="FILE",
                         help="write the report JSON here (in addition "
                              "to stdout)")
    loadgen.add_argument("--fail-on-drops", action="store_true",
                         help="exit 1 when any request was dropped "
                              "(server_busy, drain, or transport)")
    loadgen.add_argument("--slo", action="store_true",
                         help="evaluate the frontend SLO targets "
                              "against the measured round trips; "
                              "exit 1 on violation")


def run_frontend(args) -> int:
    if args.frontend_command != "serve":  # pragma: no cover - argparse
        raise SystemExit(f"unknown frontend command {args.frontend_command}")
    return _run_frontend_serve(args)


def _run_frontend_serve(args) -> int:
    from repro.cli import _fastpath_config, _load_schedule, _make_tracer
    from repro.frontend.server import (
        ClusterBackend,
        Frontend,
        FrontendConfig,
        ServiceBackend,
        serve_until_stopped,
    )
    from repro.serialization import topology_from_dict
    from repro.service import (
        AdmissionService,
        ScheduleStore,
        ServiceConfig,
        empty_schedule,
    )

    tracer = _make_tracer(args.trace)
    config = ServiceConfig(backend=args.backend, **_fastpath_config(args))
    coordinator = None
    if args.cluster:
        if not args.topology:
            print("error: --cluster requires --topology", file=sys.stderr)
            return 2
        from repro.cluster import ClusterCoordinator, partition_topology

        with open(args.topology) as handle:
            topology = topology_from_dict(json.load(handle))
        seeds = args.seeds.split(",") if args.seeds else None
        coordinator = ClusterCoordinator(
            partition=partition_topology(topology, args.shards, seeds=seeds),
            config=config,
            tracer=tracer,
            max_workers=args.workers,
        )
        backend = ClusterBackend(coordinator)
    else:
        if args.state:
            schedule = _load_schedule(args.state)
        else:
            with open(args.topology) as handle:
                schedule = empty_schedule(topology_from_dict(json.load(handle)))
        service = AdmissionService(
            ScheduleStore(schedule), config=config, tracer=tracer
        )
        backend = ServiceBackend(service)

    frontend = Frontend(
        backend,
        config=FrontendConfig(
            host=args.host,
            port=args.port,
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            max_pipeline=args.max_pipeline,
            cache_size=0 if args.no_cache else args.cache_size,
            drain_grace_s=args.drain_grace_s,
        ),
        tracer=tracer,
    )

    def announce(started: Frontend) -> None:
        host, port = started.address
        print(json.dumps({"frontend": {
            "host": host, "port": port, "backend": backend.kind,
        }}), flush=True)

    try:
        asyncio.run(serve_until_stopped(frontend, on_started=announce))
    except KeyboardInterrupt:  # pragma: no cover - signal path races
        pass
    finally:
        if coordinator is not None:
            coordinator.shutdown()
    if args.metrics_out:
        payload = frontend.metrics.to_dict()
        backend_metrics = backend.metrics.to_dict()
        payload["backend"] = backend_metrics
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle)
    if args.trace:
        from repro.cli import _dump_trace

        _dump_trace(args.trace, tracer)
    return 0


def run_loadgen_cli(args) -> int:
    from repro.frontend.loadgen import (
        LoadgenConfig,
        make_profiles,
        run_loadgen_sync,
    )

    endpoints = []
    for spec in args.endpoints:
        source, sep, destination = spec.partition(":")
        if not sep or not source or not destination:
            print(f"error: --endpoint must be SRC:DST, got {spec!r}",
                  file=sys.stderr)
            return 2
        endpoints.append((source, destination))
    profiles = make_profiles(
        endpoints,
        distinct=args.distinct,
        infeasible_fraction=args.infeasible_fraction,
        seed=args.seed,
    )
    config = LoadgenConfig(
        host=args.host,
        port=args.port,
        total_requests=args.requests,
        connections=args.connections,
        window=args.window,
        mode=args.mode,
        rate_per_sec=args.rate,
        seed=args.seed,
        timeout_s=args.timeout_s,
    )
    try:
        report = run_loadgen_sync(config, profiles)
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach frontend at "
              f"{args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    print(report.to_json())
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.to_json())
    failed = False
    if args.fail_on_drops and report.dropped:
        print(f"loadgen: {report.dropped} requests dropped",
              file=sys.stderr)
        failed = True
    if args.slo:
        from repro.obs import FRONTEND_TARGETS, evaluate_slos, format_slo_report

        results = evaluate_slos(
            report.metrics.to_dict(), targets=FRONTEND_TARGETS
        )
        print(format_slo_report(results), file=sys.stderr)
        if any(not result.met for result in results):
            failed = True
    return 1 if failed else 0
