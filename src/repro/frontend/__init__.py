"""repro.frontend: the async network face of the admission runtime.

An asyncio JSONL socket server (:class:`Frontend`) in front of an
:class:`~repro.service.admission.AdmissionService` or a sharded
:class:`~repro.cluster.coordinator.ClusterCoordinator`, with bounded
intake and explicit ``server_busy`` backpressure, per-shard-tuned batch
coalescing, an epoch-pinned decision cache, trace propagation, and a
load generator (:mod:`repro.frontend.loadgen`) that drives it hard
enough to mean something.
"""

from repro.frontend.cache import DecisionCache, cacheable
from repro.frontend.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_SERVER_BUSY,
    ERROR_SHUTTING_DOWN,
    decode_request,
    decode_response,
    encode_decision,
    encode_error,
    encode_request,
)
from repro.frontend.server import (
    ClusterBackend,
    Frontend,
    FrontendConfig,
    FrontendThread,
    ServiceBackend,
    serve_until_stopped,
)

__all__ = [
    "ClusterBackend",
    "DecisionCache",
    "ERROR_BAD_REQUEST",
    "ERROR_SERVER_BUSY",
    "ERROR_SHUTTING_DOWN",
    "Frontend",
    "FrontendConfig",
    "FrontendThread",
    "ServiceBackend",
    "cacheable",
    "decode_request",
    "decode_response",
    "encode_decision",
    "encode_error",
    "encode_request",
    "serve_until_stopped",
]
