"""The frontend wire protocol: JSONL, one decision per request.

One request per line, one response per line, responses in request
order per connection (pipelining: a client may write any number of
request lines before reading a single response).  The payloads are the
existing ``repro serve`` dicts (:func:`repro.service.request_from_dict`)
with one optional extra field:

``id``
    An opaque client correlation token, echoed verbatim on the
    response.  Clients that pipeline deeply or multiplex one
    connection across producers use it to match responses; clients
    that rely on ordering may omit it.

Responses are one of:

* ``{"id":..., "ok": true, "cached": bool, "decision": {...}}`` — a
  structured :class:`~repro.service.requests.Decision`
  (:func:`repro.serialization.decision_to_dict` payload).
* ``{"id":..., "ok": false, "error": "server_busy", "detail": ...}`` —
  the 429-style backpressure rejection: the intake queue was full and
  the server refused to buffer unboundedly.  The request was *not*
  decided; the client may retry.
* ``{"id":..., "ok": false, "error": "bad_request", "detail": ...}`` —
  the line did not parse into an admission request.
* ``{"id":..., "ok": false, "error": "shutting_down", "detail": ...}``
  — the server is draining; queued requests are still decided but new
  ones are refused.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from repro.serialization import decision_to_dict
from repro.service.requests import (
    AdmissionRequest,
    Decision,
    request_from_dict,
    request_to_dict,
)

__all__ = [
    "ERROR_BAD_REQUEST",
    "ERROR_SERVER_BUSY",
    "ERROR_SHUTTING_DOWN",
    "decode_request",
    "decode_response",
    "encode_error",
    "encode_decision",
    "encode_request",
]

ERROR_SERVER_BUSY = "server_busy"
ERROR_BAD_REQUEST = "bad_request"
ERROR_SHUTTING_DOWN = "shutting_down"


def encode_request(
    request: AdmissionRequest, request_id: Optional[object] = None
) -> bytes:
    """One request line, newline-terminated."""
    payload = request_to_dict(request)
    if request_id is not None:
        payload["id"] = request_id
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_request(
    line: bytes,
) -> Tuple[Optional[object], AdmissionRequest]:
    """Parse one request line into ``(client id, request)``.

    Raises :class:`ValueError` on malformed JSON or an unknown op (the
    server answers ``bad_request`` rather than dropping the line).
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError(
            f"request line must be a JSON object, got {type(payload).__name__}"
        )
    request_id = payload.get("id")
    return request_id, request_from_dict(payload)


def encode_decision(
    decision: Decision,
    request_id: Optional[object] = None,
    cached: bool = False,
) -> bytes:
    payload = {
        "id": request_id,
        "ok": True,
        "cached": cached,
        "decision": decision_to_dict(decision),
    }
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def encode_error(
    error: str,
    detail: str = "",
    request_id: Optional[object] = None,
) -> bytes:
    payload = {"id": request_id, "ok": False, "error": error}
    if detail:
        payload["detail"] = detail
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_response(line: bytes) -> Dict:
    """Parse one response line into its payload dict."""
    payload = json.loads(line)
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ValueError(f"not a frontend response: {line!r}")
    return payload
