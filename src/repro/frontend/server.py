"""The asyncio admission frontend: sockets in, structured decisions out.

The admission runtime (:class:`~repro.service.admission.AdmissionService`,
:class:`~repro.cluster.coordinator.ClusterCoordinator`) is a synchronous
in-process API.  :class:`Frontend` puts a network face on it that holds
up under event-triggered load:

* **JSONL protocol with pipelining** (:mod:`repro.frontend.protocol`) —
  one request per line, one response per line, responses strictly in
  request order per connection; a client may write thousands of lines
  before reading the first response.
* **Bounded intake, explicit backpressure** — requests land in a
  bounded queue; when it is full the server answers a 429-style
  ``server_busy`` error *immediately* instead of buffering without
  bound.  Per-connection response queues are bounded too: a client
  that stops reading stops being read from (TCP flow control does the
  rest).
* **Batch coalescing, tuned per shard** — a single dispatcher drains
  up to ``max_batch x shard_count`` queued requests per backend call,
  so one executor hop and one service write-lock acquisition amortize
  over a whole burst, and a sharded cluster receives enough work per
  call to fan all shards out in parallel.
* **Decision cache** (:mod:`repro.frontend.cache`) — deterministic
  rejections are replayed for repeated canonical shapes
  (:func:`repro.service.shape.canonical_shape`) pinned to the exact
  store epoch they were proven on, short-circuiting the solver
  entirely; every observed publish invalidates.
* **Observability** — ``frontend.*`` counters and latency histograms
  in a :class:`~repro.service.metrics.MetricsRegistry`, and per-batch
  spans threaded through the existing :class:`TraceContext` ambient
  propagation so backend admission spans join the frontend's trace.
* **Graceful drain** — :meth:`Frontend.stop` (wired to SIGTERM/SIGINT
  by ``repro frontend serve``) stops accepting, decides everything
  already queued, flushes every response, then closes.

Decision semantics under pipelining: a response is computed against
the store snapshot current when the request was *ingested* (cache hit)
or *dispatched* (solver path).  Requests that must observe an earlier
request's effect should wait for its response before being sent —
exactly the closed-loop discipline a CUC uses against a CNC.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.frontend import protocol
from repro.frontend.cache import DecisionCache
from repro.obs.context import TraceContext
from repro.obs.events import NULL_EVENT_LOG, EventLog
from repro.obs.trace import NULL_TRACER, Tracer
from repro.service.admission import AdmissionService
from repro.service.metrics import MetricsRegistry
from repro.service.requests import AdmissionRequest, Decision
from repro.service.shape import canonical_shape

__all__ = [
    "ClusterBackend",
    "Frontend",
    "FrontendConfig",
    "FrontendThread",
    "ServiceBackend",
    "serve_until_stopped",
]

#: Internal error code for a backend failure (kept out of protocol's
#: public vocabulary: clients should treat it as "retry elsewhere").
ERROR_INTERNAL = "internal_error"


@dataclass(frozen=True)
class FrontendConfig:
    """Tunables of one frontend instance."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``Frontend.port``).
    port: int = 0
    #: intake queue bound; a full queue answers ``server_busy``.
    max_queue: int = 1024
    #: requests coalesced per backend call, *per shard* — the dispatcher
    #: drains up to ``max_batch * shard_count`` at once.
    max_batch: int = 32
    #: per-connection pipelined responses awaiting write before the
    #: reader stops consuming new lines from that connection.
    max_pipeline: int = 1024
    #: decision cache capacity; 0 disables the cache entirely.
    cache_size: int = 4096
    #: how long a graceful stop waits for queued work to decide before
    #: answering the remainder with ``shutting_down``.
    drain_grace_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_queue <= 0:
            raise ValueError(f"max_queue must be positive, got {self.max_queue}")
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if self.max_pipeline <= 0:
            raise ValueError(
                f"max_pipeline must be positive, got {self.max_pipeline}"
            )
        if self.cache_size < 0:
            raise ValueError(
                f"cache_size must be >= 0, got {self.cache_size}"
            )


class ServiceBackend:
    """One :class:`AdmissionService` as a frontend backend."""

    kind = "service"

    def __init__(self, service: AdmissionService) -> None:
        self._service = service

    @property
    def shard_count(self) -> int:
        return 1

    def epoch(self):
        """The store version — bumped by every CAS publish."""
        return self._service.store.version

    def submit_many(
        self, requests: Sequence[AdmissionRequest]
    ) -> List[Decision]:
        return self._service.submit_many(requests)

    @property
    def metrics(self) -> MetricsRegistry:
        return self._service.metrics


class ClusterBackend:
    """A sharded :class:`ClusterCoordinator` as a frontend backend."""

    kind = "cluster"

    def __init__(self, coordinator) -> None:
        self._coordinator = coordinator
        self._shard_names = tuple(sorted(coordinator.shard_names()))
        self._stores = tuple(
            coordinator.shard_store(name) for name in self._shard_names
        )

    @property
    def shard_count(self) -> int:
        return len(self._shard_names)

    def epoch(self) -> Tuple[int, ...]:
        """The tuple of shard store versions — any shard's publish
        changes it (versions are monotonic, so no ABA)."""
        return tuple(store.version for store in self._stores)

    def submit_many(
        self, requests: Sequence[AdmissionRequest]
    ) -> List[Decision]:
        return self._coordinator.submit_many(requests)

    @property
    def metrics(self) -> MetricsRegistry:
        return self._coordinator.metrics


@dataclass
class _Pending:
    """One queued request: everything needed to respond later."""

    request: AdmissionRequest
    shape: tuple
    request_id: Optional[object]
    future: "asyncio.Future"
    started: float


_STOP = object()


class Frontend:
    """The asyncio socket server fronting an admission backend.

    Single event loop, single dispatcher; the synchronous backend runs
    on the loop's executor so solves never block the socket plane.
    All cache and counter state is touched from the loop thread only.
    """

    def __init__(
        self,
        backend,
        config: Optional[FrontendConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self._backend = backend
        self._config = config or FrontendConfig()
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._events = events if events is not None else NULL_EVENT_LOG
        self._cache: Optional[DecisionCache] = (
            DecisionCache(self._config.cache_size, metrics=self._metrics)
            if self._config.cache_size else None
        )
        self._coalesce_max = self._config.max_batch * max(
            1, getattr(backend, "shard_count", 1)
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._conn_tasks: set = set()
        self._draining = False

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self._config.max_queue)
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self._config.host, self._config.port
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — resolves an ephemeral port 0."""
        sockets = self._server.sockets if self._server else None
        if not sockets:
            raise RuntimeError("frontend is not started")
        host, port = sockets[0].getsockname()[:2]
        return host, port

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @property
    def cache(self) -> Optional[DecisionCache]:
        return self._cache

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: refuse new work, decide queued work,
        flush every response, close every connection.

        With ``drain=False`` (or after ``drain_grace_s`` expires) the
        still-queued remainder is answered with ``shutting_down``
        instead of being decided.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._draining = True
        if drain and self._queue is not None:
            try:
                await asyncio.wait_for(
                    self._queue.join(), timeout=self._config.drain_grace_s
                )
            except asyncio.TimeoutError:
                self._metrics.counter("frontend.drain_timeouts").inc()
        self._flush_queue_as_shutting_down()
        if self._dispatcher is not None:
            await self._queue.put(_STOP)
            await self._dispatcher
            self._dispatcher = None
        # connections: everything decidable is decided and every future
        # resolved; cancel the readers and let the writers flush
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()

    def _flush_queue_as_shutting_down(self) -> None:
        """Answer whatever is still queued (drain timed out or was
        skipped) so no client is left hanging on a response."""
        if self._queue is None:
            return
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is _STOP:
                self._queue.task_done()
                continue
            self._respond(
                item.future,
                protocol.encode_error(
                    protocol.ERROR_SHUTTING_DOWN,
                    detail="request was queued but the server is stopping",
                    request_id=item.request_id,
                ),
                item.started,
            )
            self._metrics.counter("frontend.rejected_shutdown").inc()
            self._queue.task_done()

    # -- connection plane ----------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._metrics.gauge("frontend.connections").add(1)
        # responses strictly in request order: the reader appends one
        # future per line, the writer awaits and writes them FIFO; the
        # bounded queue stalls the reader when the client stops reading
        pending: asyncio.Queue = asyncio.Queue(
            maxsize=self._config.max_pipeline
        )
        writer_task = asyncio.create_task(self._writer_loop(pending, writer))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                future = self._loop.create_future()
                await pending.put(future)
                self._ingest(line, future)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            # a second cancellation may be delivered at any await below
            # (stop() cancels once, asyncio may re-raise at the next
            # suspension) — cleanup must complete and never let
            # CancelledError escape into asyncio's server bookkeeping
            pending.put_nowait(_STOP)
            try:
                await asyncio.wait_for(
                    writer_task, timeout=self._config.drain_grace_s
                )
            except (asyncio.TimeoutError, asyncio.CancelledError):
                writer_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError, OSError):
                pass
            self._metrics.gauge("frontend.connections").add(-1)
            self._conn_tasks.discard(task)

    async def _writer_loop(self, pending: asyncio.Queue, writer) -> None:
        try:
            while True:
                future = await pending.get()
                if future is _STOP:
                    break
                payload = await future
                writer.write(payload)
                if pending.empty():
                    # coalesce flushes across a pipelined burst: only
                    # pay the drain when there is nothing left to append
                    await writer.drain()
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    # -- ingest (event-loop thread only) -------------------------------
    def _ingest(self, line: bytes, future: "asyncio.Future") -> None:
        started = self._loop.time()
        self._metrics.counter("frontend.requests_total").inc()
        try:
            request_id, request = protocol.decode_request(line)
        except ValueError as exc:
            self._metrics.counter("frontend.rejected_bad_request").inc()
            self._respond(
                future,
                protocol.encode_error(
                    protocol.ERROR_BAD_REQUEST, detail=str(exc)
                ),
                started,
            )
            return
        if self._draining:
            self._metrics.counter("frontend.rejected_shutdown").inc()
            self._respond(
                future,
                protocol.encode_error(
                    protocol.ERROR_SHUTTING_DOWN, request_id=request_id
                ),
                started,
            )
            return
        shape = canonical_shape(request)
        if self._cache is not None:
            cached = self._cache.lookup(self._backend.epoch(), shape)
            if cached is not None:
                self._respond(
                    future,
                    protocol.encode_decision(
                        cached, request_id=request_id, cached=True
                    ),
                    started,
                )
                return
        item = _Pending(
            request=request, shape=shape, request_id=request_id,
            future=future, started=started,
        )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self._metrics.counter("frontend.rejected_busy").inc()
            self._respond(
                future,
                protocol.encode_error(
                    protocol.ERROR_SERVER_BUSY,
                    detail=(
                        f"intake queue is full "
                        f"({self._config.max_queue} requests)"
                    ),
                    request_id=request_id,
                ),
                started,
            )
            return
        self._metrics.gauge("frontend.queue.depth").set(
            self._queue.qsize()
        )

    def _respond(
        self, future: "asyncio.Future", payload: bytes, started: float
    ) -> None:
        if not future.done():
            future.set_result(payload)
        self._metrics.counter("frontend.responses_total").inc()
        self._metrics.histogram("frontend.latency.request_ms").observe(
            (self._loop.time() - started) * 1e3
        )

    # -- dispatch plane ------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            batch = [item]
            while len(batch) < self._coalesce_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self._metrics.gauge("frontend.queue.depth").set(
                self._queue.qsize()
            )
            try:
                await self._run_batch(batch)
            finally:
                for _ in batch:
                    self._queue.task_done()

    async def _run_batch(self, batch: List[_Pending]) -> None:
        started = self._loop.time()
        self._metrics.counter("frontend.batches").inc()
        self._metrics.histogram("frontend.batch.size").observe(len(batch))
        for item in batch:
            self._metrics.histogram("frontend.latency.queue_ms").observe(
                (started - item.started) * 1e3
            )
        epoch_before = self._backend.epoch()
        requests = [item.request for item in batch]
        with self._tracer.span(
            "frontend.batch", size=len(batch), backend=self._backend.kind
        ) as batch_span:
            context = TraceContext.of(batch_span)
            try:
                decisions = await self._loop.run_in_executor(
                    None, self._call_backend, requests, context
                )
            except Exception as exc:  # noqa: BLE001 - keep the server up
                self._metrics.counter("frontend.backend_errors").inc()
                batch_span.set(outcome="error")
                detail = f"{type(exc).__name__}: {exc}"
                for item in batch:
                    self._respond(
                        item.future,
                        protocol.encode_error(
                            ERROR_INTERNAL, detail=detail,
                            request_id=item.request_id,
                        ),
                        item.started,
                    )
                return
            batch_span.set(outcome="ok")
        self._metrics.histogram("frontend.latency.batch_ms").observe(
            (self._loop.time() - started) * 1e3
        )
        epoch_after = self._backend.epoch()
        epoch_stable = epoch_after == epoch_before
        if self._cache is not None and not epoch_stable:
            # a publish (this batch's accept, or a concurrent writer)
            # moved the snapshot: every cached verdict is now for a
            # superseded epoch — drop them all
            self._cache.invalidate()
        if len(decisions) != len(batch):
            # the backend dropped requests (should be unreachable);
            # answer what we can and error the remainder
            self._metrics.counter("frontend.backend_errors").inc()
        for index, item in enumerate(batch):
            if index < len(decisions):
                decision = decisions[index]
                if self._cache is not None and epoch_stable:
                    # only rejections decided on a snapshot that is
                    # *still current* are replayable (see cache module)
                    self._cache.store(epoch_after, item.shape, decision)
                payload = protocol.encode_decision(
                    decision, request_id=item.request_id, cached=False
                )
            else:
                payload = protocol.encode_error(
                    ERROR_INTERNAL,
                    detail="backend returned too few decisions",
                    request_id=item.request_id,
                )
            self._respond(item.future, payload, item.started)

    def _call_backend(
        self,
        requests: List[AdmissionRequest],
        context: Optional[TraceContext],
    ) -> List[Decision]:
        """Runs on the executor thread; re-enters the frontend batch
        span's context so backend spans join the frontend trace."""
        with self._tracer.use_context(context):
            return self._backend.submit_many(requests)


async def serve_until_stopped(
    frontend: Frontend,
    stop_event: Optional["asyncio.Event"] = None,
    install_signals: bool = True,
    on_started: Optional[Callable[[Frontend], None]] = None,
) -> None:
    """Run ``frontend`` until SIGTERM/SIGINT (or ``stop_event``), then
    drain gracefully — the body of ``repro frontend serve``."""
    await frontend.start()
    if on_started is not None:
        on_started(frontend)
    event = stop_event if stop_event is not None else asyncio.Event()
    if install_signals:
        import signal as signal_module

        loop = asyncio.get_running_loop()
        for signum in (signal_module.SIGTERM, signal_module.SIGINT):
            try:
                loop.add_signal_handler(signum, event.set)
            except (NotImplementedError, RuntimeError):
                # platform without signal support on the loop: rely on
                # KeyboardInterrupt / stop_event instead
                break
    await event.wait()
    await frontend.stop(drain=True)


class FrontendThread:
    """A frontend running its own event loop on a daemon thread.

    The sync-world handle the load generator benchmark and the tests
    use: ``start()`` blocks until the socket is bound and returns the
    (host, port); ``stop()`` drains gracefully and joins the thread.
    """

    def __init__(self, frontend: Frontend) -> None:
        self._frontend = frontend
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._finished = threading.Event()
        self._address: Optional[Tuple[str, int]] = None
        self._error: Optional[BaseException] = None

    @property
    def frontend(self) -> Frontend:
        return self._frontend

    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise RuntimeError("frontend thread is not started")
        return self._address

    def start(self, timeout_s: float = 30.0) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-frontend", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("frontend thread failed to start in time")
        if self._error is not None:
            raise RuntimeError(
                f"frontend failed to start: {self._error}"
            ) from self._error
        return self.address

    def stop(self, timeout_s: float = 30.0) -> None:
        if self._loop is None or self._stop_event is None:
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._finished.wait(timeout_s)
        if self._thread is not None:
            self._thread.join(timeout_s)

    def _run(self) -> None:
        async def body() -> None:
            self._stop_event = asyncio.Event()
            try:
                await self._frontend.start()
                self._address = self._frontend.address
            except BaseException as exc:  # noqa: BLE001 - reported to starter
                self._error = exc
                self._started.set()
                return
            self._loop = asyncio.get_running_loop()
            self._started.set()
            await self._stop_event.wait()
            await self._frontend.stop(drain=True)

        try:
            asyncio.run(body())
        finally:
            self._finished.set()
