"""The frontend decision cache: epoch-pinned replay of structured verdicts.

Industrial admission traffic repeats: a handful of stream profiles
(shapes) arrive over and over under fresh names.  Between two store
publishes the admission service is a *pure function* of
``(snapshot, shape)`` for every deterministic verdict, so the frontend
can answer a repeated shape from a cache without touching the solver —
*if and only if* the cache key pins the exact snapshot the verdict was
proven on.

:class:`DecisionCache` therefore keys every entry on
``(epoch, canonical shape)`` where the epoch is the store version (or
the tuple of shard store versions in cluster mode).  A publish bumps
the epoch, so stale entries can never hit; :meth:`invalidate` clears
them eagerly on every observed publish so memory is reclaimed and the
``frontend.cache.invalidations`` counter tracks churn.

Not every decision is replayable.  :func:`cacheable` admits only
**deterministic rejections**:

* an *accept* publishes a new snapshot, which invalidates the very
  epoch it was proven on — by construction an accept entry could never
  be served, so none is stored;
* a *name-dependent* rejection (``name_in_use``, "already in use", a
  concurrent in-flight claim) depends on the one field the shape
  deliberately ignores — replaying it for a same-shaped request under
  a fresh name would be wrong;
* a *transient* rejection (rung timeout, CAS exhaustion, a raced
  portfolio budget) is wall-clock dependent — a fresh attempt on the
  same snapshot could legitimately decide differently.

What remains — screening rejects, analytic fast-path rejects, and
deterministic infeasibility verdicts — is exactly the class for which
"cached decision never disagrees with a fresh
:meth:`AdmissionService.submit` on the same snapshot" holds (the
hypothesis property in ``tests/frontend``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro.service.metrics import MetricsRegistry
from repro.service.requests import Decision

__all__ = ["DecisionCache", "cacheable"]

#: Reason substrings that mark a rejection as name-dependent or
#: transient — never replayable for a different request.  Matched
#: against ``Decision.reason`` plus every per-rung attempt detail.
_UNCACHEABLE_MARKERS = (
    "already in use",        # screening: name collision
    "name_in_use",           # cluster-wide name claim
    "in flight",             # concurrent claim on the same name
    "already touched",       # batch-mate name interaction
    "already admitted",      # cluster name claim detail
    "cas_exhausted",         # lost CAS races: contention, not shape
    "rebase",                # ditto
    "exceeded",              # rung wall-clock budgets ("solve exceeded")
    "server_busy",           # frontend backpressure, never a verdict
)


def cacheable(decision: Decision) -> bool:
    """True when ``decision`` is a deterministic, name-independent
    rejection — the only class the cache may replay."""
    if decision.accepted:
        return False
    texts = [decision.reason or ""]
    texts.extend(decision.attempts.values())
    blob = " ".join(texts)
    return not any(marker in blob for marker in _UNCACHEABLE_MARKERS)


class DecisionCache:
    """Bounded LRU of ``(epoch, shape) -> Decision`` replay entries.

    Single-threaded by design: the frontend consults and fills it from
    the asyncio event loop only, so there is no lock (and nothing for
    the lock sanitizer to order).  ``metrics`` receives the
    ``frontend.cache.{hits,misses,invalidations}`` counters and the
    ``frontend.cache.size`` gauge.
    """

    def __init__(
        self,
        capacity: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[Tuple[Hashable, Hashable], Decision]" = (
            OrderedDict()
        )
        self._metrics = metrics if metrics is not None else MetricsRegistry()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    def lookup(
        self, epoch: Hashable, shape: Hashable
    ) -> Optional[Decision]:
        """The cached decision for ``shape`` at ``epoch``, or ``None``.

        A hit refreshes the entry's LRU position.  The epoch is part of
        the key, so an entry cached on an older snapshot simply misses
        — soundness does not depend on eager invalidation.
        """
        key = (epoch, shape)
        decision = self._entries.get(key)
        if decision is None:
            self._metrics.counter("frontend.cache.misses").inc()
            return None
        self._entries.move_to_end(key)
        self._metrics.counter("frontend.cache.hits").inc()
        return decision

    def store(
        self, epoch: Hashable, shape: Hashable, decision: Decision
    ) -> bool:
        """Remember ``decision`` for ``shape`` at ``epoch``.

        Returns ``False`` (and stores nothing) when the decision is not
        :func:`cacheable`; evicts the least-recently-used entry when
        full.
        """
        if not cacheable(decision):
            return False
        key = (epoch, shape)
        self._entries[key] = decision
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self._metrics.counter("frontend.cache.evictions").inc()
        self._metrics.gauge("frontend.cache.size").set(len(self._entries))
        return True

    def invalidate(self) -> int:
        """Drop every entry (a publish moved the epoch); returns the
        number of entries dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self._metrics.counter(
                "frontend.cache.invalidations"
            ).inc()
            self._metrics.counter(
                "frontend.cache.entries_dropped"
            ).inc(dropped)
        self._metrics.gauge("frontend.cache.size").set(0)
        return dropped
