"""The frontend load generator: sustained admission load over sockets.

``repro loadgen`` (and the frontend benchmark) drive a running
:class:`~repro.frontend.server.Frontend` with a seeded, shape-mixed
request stream and measure what a CUC would feel: end-to-end
request/response round-trip latency, throughput, backpressure drops,
and cache effectiveness.

* **Closed loop** (default): each connection keeps a fixed window of
  pipelined requests outstanding and sends the next as responses
  arrive — throughput is whatever the server sustains, and the
  latency distribution is honest (no coordinated omission from an
  unbounded send queue).
* **Open loop**: requests are launched on a fixed schedule
  (``rate_per_sec`` across all connections) regardless of response
  progress, which surfaces ``server_busy`` backpressure under
  overload.
* **Shape mix**: a seeded generator draws each request from a small
  set of recurring stream profiles under ever-fresh names — the
  industrial arrival pattern the decision cache exists for.  Profiles
  marked infeasible carry an end-to-end budget below the route's wire
  time, so they produce deterministic (cacheable) screening rejects.

Results land in a :class:`LoadgenReport` with p50/p99/p999 from the
:mod:`repro.obs` histogram and a JSON-able summary the benchmark
persists as ``BENCH_frontend.json``.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.frontend import protocol
from repro.model.stream import TctRequirement
from repro.service.metrics import MetricsRegistry
from repro.service.requests import AdmitTct

__all__ = [
    "LoadgenConfig",
    "LoadgenReport",
    "ShapeProfile",
    "make_profiles",
    "run_loadgen",
    "run_loadgen_sync",
]


@dataclass(frozen=True)
class ShapeProfile:
    """One recurring stream profile: a shape the mix draws from."""

    source: str
    destination: str
    period_ns: int
    length_bytes: int
    e2e_ns: Optional[int] = None
    share: bool = False

    def request(self, name: str) -> AdmitTct:
        return AdmitTct(TctRequirement(
            name=name,
            source=self.source,
            destination=self.destination,
            period_ns=self.period_ns,
            length_bytes=self.length_bytes,
            e2e_ns=self.e2e_ns,
            share=self.share,
        ))


def make_profiles(
    endpoints: Sequence[Tuple[str, str]],
    distinct: int = 8,
    infeasible_fraction: float = 1.0,
    seed: int = 7,
) -> List[ShapeProfile]:
    """A seeded profile set over ``endpoints`` (source, destination)
    pairs.

    ``infeasible_fraction`` of the profiles get an end-to-end budget of
    1 ns — far below any route's wire time, so screening rejects them
    deterministically (the cacheable class).  The rest are ordinary
    feasible profiles.
    """
    if not endpoints:
        raise ValueError("need at least one (source, destination) pair")
    if distinct <= 0:
        raise ValueError(f"distinct must be positive, got {distinct}")
    rng = random.Random(seed)
    periods_ns = (1_000_000, 2_000_000, 4_000_000, 8_000_000)
    profiles: List[ShapeProfile] = []
    infeasible_count = round(distinct * infeasible_fraction)
    for index in range(distinct):
        source, destination = endpoints[index % len(endpoints)]
        period_ns = periods_ns[rng.randrange(len(periods_ns))]
        length_bytes = rng.choice((64, 128, 256, 512))
        infeasible = index < infeasible_count
        profiles.append(ShapeProfile(
            source=source,
            destination=destination,
            period_ns=period_ns,
            length_bytes=length_bytes,
            # 1 ns can never cover even one hop's wire time -> the
            # fast path's e2e floor screens it out deterministically
            e2e_ns=1 if infeasible else None,
        ))
    return profiles


@dataclass(frozen=True)
class LoadgenConfig:
    """Tunables of one load-generation run."""

    host: str = "127.0.0.1"
    port: int = 0
    total_requests: int = 10_000
    connections: int = 4
    #: closed loop: outstanding pipelined requests per connection.
    window: int = 64
    #: "closed" or "open".
    mode: str = "closed"
    #: open loop only: aggregate request launch rate.
    rate_per_sec: float = 10_000.0
    seed: int = 7
    #: client-side guard against a wedged server.
    timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.total_requests <= 0:
            raise ValueError(
                f"total_requests must be positive, got {self.total_requests}"
            )
        if self.connections <= 0:
            raise ValueError(
                f"connections must be positive, got {self.connections}"
            )
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.mode not in ("closed", "open"):
            raise ValueError(
                f"mode must be 'closed' or 'open', got {self.mode!r}"
            )
        if self.rate_per_sec <= 0:
            raise ValueError(
                f"rate_per_sec must be positive, got {self.rate_per_sec}"
            )


@dataclass
class LoadgenReport:
    """What one run measured, JSON-able for ``BENCH_frontend.json``."""

    sent: int = 0
    ok: int = 0
    accepted: int = 0
    rejected: int = 0
    cached: int = 0
    busy: int = 0
    shutting_down: int = 0
    bad: int = 0
    transport_errors: int = 0
    elapsed_s: float = 0.0
    requests_per_sec: float = 0.0
    rtt_p50_ms: float = 0.0
    rtt_p99_ms: float = 0.0
    rtt_p999_ms: float = 0.0
    cache_hit_rate: float = 0.0
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def dropped(self) -> int:
        """Requests that never received a decision: backpressure
        rejections, drain refusals, and transport failures."""
        return self.busy + self.shutting_down + self.transport_errors

    def finalize(self, elapsed_s: float) -> "LoadgenReport":
        self.elapsed_s = elapsed_s
        self.requests_per_sec = (
            self.sent / elapsed_s if elapsed_s > 0 else 0.0
        )
        summary = self.metrics.histogram("loadgen.rtt_ms").summary()
        self.rtt_p50_ms = summary.get("p50") or 0.0
        self.rtt_p99_ms = summary.get("p99") or 0.0
        self.rtt_p999_ms = summary.get("p999") or 0.0
        self.cache_hit_rate = self.cached / self.ok if self.ok else 0.0
        return self

    def to_dict(self) -> Dict:
        return {
            "sent": self.sent,
            "ok": self.ok,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "cached": self.cached,
            "busy": self.busy,
            "shutting_down": self.shutting_down,
            "bad": self.bad,
            "transport_errors": self.transport_errors,
            "dropped": self.dropped,
            "elapsed_s": self.elapsed_s,
            "requests_per_sec": self.requests_per_sec,
            "rtt_p50_ms": self.rtt_p50_ms,
            "rtt_p99_ms": self.rtt_p99_ms,
            "rtt_p999_ms": self.rtt_p999_ms,
            "cache_hit_rate": self.cache_hit_rate,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class _Tally:
    """Shared counters across client connections (event-loop only)."""

    def __init__(self, report: LoadgenReport) -> None:
        self.report = report
        self.rtt = report.metrics.histogram("loadgen.rtt_ms")

    def record(self, payload: Dict, rtt_ms: float) -> None:
        report = self.report
        self.rtt.observe(rtt_ms)
        if payload.get("ok"):
            report.ok += 1
            if payload.get("cached"):
                report.cached += 1
            if payload.get("decision", {}).get("accepted"):
                report.accepted += 1
            else:
                report.rejected += 1
            return
        error = payload.get("error")
        if error == protocol.ERROR_SERVER_BUSY:
            report.busy += 1
        elif error == protocol.ERROR_SHUTTING_DOWN:
            report.shutting_down += 1
        else:
            report.bad += 1


async def _reader_loop(
    reader: "asyncio.StreamReader",
    expected: int,
    sent_at: Dict[object, float],
    tally: _Tally,
    clock,
    window: Optional["asyncio.Semaphore"] = None,
) -> None:
    received = 0
    while received < expected:
        line = await reader.readline()
        if not line:
            tally.report.transport_errors += expected - received
            return
        payload = protocol.decode_response(line)
        started = sent_at.pop(payload.get("id"), None)
        rtt_ms = ((clock() - started) * 1e3) if started is not None else 0.0
        tally.record(payload, rtt_ms)
        received += 1
        if window is not None:
            window.release()


async def _closed_loop_connection(
    config: LoadgenConfig,
    conn_index: int,
    quota: int,
    profiles: Sequence[ShapeProfile],
    tally: _Tally,
) -> None:
    if quota <= 0:
        return
    loop = asyncio.get_running_loop()
    rng = random.Random(config.seed * 1_000_003 + conn_index)
    reader, writer = await asyncio.open_connection(config.host, config.port)
    sent_at: Dict[object, float] = {}
    # the reader releases one window slot per response, so at most
    # `window` requests are ever outstanding on this connection
    window = asyncio.Semaphore(config.window)
    reader_task = asyncio.create_task(
        _reader_loop(reader, quota, sent_at, tally, loop.time, window)
    )
    try:
        for seq in range(quota):
            await window.acquire()
            profile = profiles[rng.randrange(len(profiles))]
            request_id = f"{conn_index}-{seq}"
            request = profile.request(f"lg-{request_id}")
            sent_at[request_id] = loop.time()
            writer.write(protocol.encode_request(request, request_id))
            tally.report.sent += 1
            if seq % config.window == 0:
                await writer.drain()
        await writer.drain()
        await asyncio.wait_for(reader_task, timeout=config.timeout_s)
    except (asyncio.TimeoutError, ConnectionError, OSError):
        reader_task.cancel()
        tally.report.transport_errors += len(sent_at)
    finally:
        if not reader_task.done():
            reader_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _open_loop_connection(
    config: LoadgenConfig,
    conn_index: int,
    quota: int,
    profiles: Sequence[ShapeProfile],
    tally: _Tally,
) -> None:
    if quota <= 0:
        return
    loop = asyncio.get_running_loop()
    rng = random.Random(config.seed * 1_000_003 + conn_index)
    reader, writer = await asyncio.open_connection(config.host, config.port)
    sent_at: Dict[object, float] = {}
    reader_task = asyncio.create_task(
        _reader_loop(reader, quota, sent_at, tally, loop.time)
    )
    per_conn_rate = config.rate_per_sec / config.connections
    interval_s = 1.0 / per_conn_rate
    epoch = loop.time()
    try:
        for seq in range(quota):
            due = epoch + seq * interval_s
            delay_s = due - loop.time()
            if delay_s > 0:
                await asyncio.sleep(delay_s)
            profile = profiles[rng.randrange(len(profiles))]
            request_id = f"{conn_index}-{seq}"
            request = profile.request(f"lg-{request_id}")
            sent_at[request_id] = loop.time()
            writer.write(protocol.encode_request(request, request_id))
            tally.report.sent += 1
            await writer.drain()
        await asyncio.wait_for(reader_task, timeout=config.timeout_s)
    except (asyncio.TimeoutError, ConnectionError, OSError):
        reader_task.cancel()
        tally.report.transport_errors += len(sent_at)
    finally:
        if not reader_task.done():
            reader_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_loadgen(
    config: LoadgenConfig,
    profiles: Sequence[ShapeProfile],
) -> LoadgenReport:
    """Drive the frontend at ``config.host:config.port`` and measure."""
    if not profiles:
        raise ValueError("need at least one shape profile")
    report = LoadgenReport()
    tally = _Tally(report)
    loop = asyncio.get_running_loop()
    base = config.total_requests // config.connections
    remainder = config.total_requests % config.connections
    quotas = [
        base + (1 if index < remainder else 0)
        for index in range(config.connections)
    ]
    runner = (
        _closed_loop_connection if config.mode == "closed"
        else _open_loop_connection
    )
    started = loop.time()
    await asyncio.gather(*(
        runner(config, index, quota, profiles, tally)
        for index, quota in enumerate(quotas)
    ))
    return report.finalize(loop.time() - started)


def run_loadgen_sync(
    config: LoadgenConfig,
    profiles: Sequence[ShapeProfile],
) -> LoadgenReport:
    """:func:`run_loadgen` from synchronous code (CLI, benchmarks)."""
    return asyncio.run(run_loadgen(config, profiles))
