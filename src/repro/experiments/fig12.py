"""Paper Fig. 12: the resource cost of PERIOD.

PERIOD is allowed 1x / 2x / 4x / 8x as many dedicated time-slots as
E-TSN reserves; even at 8x its worst-case latency stays a multiple of
E-TSN's while the dedicated slots devour link bandwidth.  The bandwidth
column reports the share of the ECT path's bottleneck link consumed by
the dedicated reservation alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis import format_table, stats_row
from repro.experiments.runner import run_method
from repro.experiments.scenarios import testbed_workload
from repro.model.units import milliseconds
from repro.sim.recorder import LatencyStats

ECT_NAME = "ect1"


@dataclass
class Fig12Config:
    load: float = 0.50
    methods: Sequence[str] = ("etsn", "period", "period_x2", "period_x4", "period_x8")
    duration_ns: int = milliseconds(4_000)
    seed: int = 1


@dataclass
class Fig12Result:
    config: Fig12Config
    stats: Dict[str, LatencyStats] = field(default_factory=dict)
    cdfs: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    #: fraction of the ECT path bottleneck link consumed by dedicated
    #: ECT slots (0 for e-tsn, whose reservation is shared)
    dedicated_bandwidth: Dict[str, float] = field(default_factory=dict)


def run(config: Fig12Config = None) -> Fig12Result:
    config = config or Fig12Config()
    result = Fig12Result(config=config)
    workload = testbed_workload(config.load, seed=config.seed)
    ect = workload.ect_streams[0]
    for method in config.methods:
        outcome = run_method(
            workload.topology,
            workload.tct_streams,
            workload.ect_streams,
            method,
            duration_ns=config.duration_ns,
            seed=config.seed,
        )
        result.stats[method] = outcome.stats[ECT_NAME]
        result.cdfs[method] = outcome.cdf(ECT_NAME)
        result.dedicated_bandwidth[method] = _dedicated_fraction(
            outcome.schedule, ect, method
        )
    return result


def _dedicated_fraction(schedule, ect, method: str) -> float:
    """Bandwidth share of dedicated ECT slots on the bottleneck path link."""
    if not method.startswith("period"):
        return 0.0
    proxies = schedule.meta.get("ect_proxies", {})
    proxy_names = [p for p, e in proxies.items() if e == ect.name]
    worst = 0.0
    for link in ect.route(schedule.topology):
        reserved = 0
        for name in proxy_names:
            for slot in schedule.slots.get((name, link.key), ()):  # per period
                reserved += slot.duration_ns / slot.period_ns
        worst = max(worst, reserved)
    return worst


def format_result(result: Fig12Result) -> str:
    rows = []
    for method in result.config.methods:
        stats = result.stats[method]
        row = stats_row(stats)
        rows.append([
            method, row["count"], row["avg_us"], row["max_us"],
            row["jitter_us"], f"{result.dedicated_bandwidth[method]:.1%}",
        ])
    return format_table(
        ["method", "events", "avg_us", "worst_us", "jitter_us", "dedicated_bw"],
        rows,
        title=(
            f"Fig. 12 — PERIOD slot-multiplier cost at "
            f"{result.config.load:.0%} load"
        ),
    )
