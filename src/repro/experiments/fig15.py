"""Paper Fig. 15: impact of ECT on TCT streams under E-TSN.

Ten of the forty TCT streams are marked more important than ECT and do
not share their slots.  Each scenario runs twice — without ECT traffic
and with randomly generated ECT — and compares per-stream TCT latency:

* non-shared streams (s1t-s3t) must be byte-for-byte unaffected;
* shared streams (s4t-s6t) may see higher latency and jitter, but their
  worst case must stay below the allowed maximum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis import format_table
from repro.experiments.runner import run_method
from repro.experiments.scenarios import simulation_workload
from repro.model.units import milliseconds, ns_to_us
from repro.sim.recorder import LatencyStats

NUM_NONSHARED = 10


@dataclass
class Fig15Config:
    load: float = 0.50
    duration_ns: int = milliseconds(3_000)
    seed: int = 1
    num_reported: int = 3  #: streams per group shown in the figure


@dataclass
class StreamImpact:
    stream: str
    shared: bool
    e2e_budget_ns: int
    without_ect: LatencyStats
    with_ect: LatencyStats

    @property
    def worst_within_budget(self) -> bool:
        return self.with_ect.maximum_ns <= self.e2e_budget_ns

    @property
    def unaffected(self) -> bool:
        return (
            self.without_ect.average_ns == self.with_ect.average_ns
            and self.without_ect.maximum_ns == self.with_ect.maximum_ns
            and self.without_ect.minimum_ns == self.with_ect.minimum_ns
        )


@dataclass
class Fig15Result:
    config: Fig15Config
    impacts: List[StreamImpact] = field(default_factory=list)

    def nonshared(self) -> List[StreamImpact]:
        return [i for i in self.impacts if not i.shared]

    def shared(self) -> List[StreamImpact]:
        return [i for i in self.impacts if i.shared]


def run(config: Fig15Config = None) -> Fig15Result:
    config = config or Fig15Config()
    workload = simulation_workload(
        config.load, seed=config.seed, num_nonshared=NUM_NONSHARED
    )
    # Both runs use the *same* E-TSN schedule inputs; only the event
    # traffic differs (none vs stochastic).
    quiet = run_method(
        workload.topology, workload.tct_streams, workload.ect_streams,
        "etsn", duration_ns=config.duration_ns, seed=config.seed,
        ect_event_times={e.name: [] for e in workload.ect_streams},
    )
    noisy = run_method(
        workload.topology, workload.tct_streams, workload.ect_streams,
        "etsn", duration_ns=config.duration_ns, seed=config.seed,
    )
    streams = {s.name: s for s in workload.tct_streams}
    nonshared = [s for s in workload.tct_streams if not s.share]
    shared = [s for s in workload.tct_streams if s.share]
    # The paper's figure shows streams where the encroachment is visible
    # (s4t-s6t); report the shared streams most affected in this run.
    # Collisions are stochastic — a few streams out of forty absorb the
    # events in any given run.
    def impact_of(stream):
        return (noisy.stats[stream.name].maximum_ns
                - quiet.stats[stream.name].maximum_ns)

    shared_report = sorted(shared, key=impact_of, reverse=True)
    chosen = nonshared[: config.num_reported] + shared_report[: config.num_reported]
    result = Fig15Result(config=config)
    for stream in chosen:
        result.impacts.append(
            StreamImpact(
                stream=stream.name,
                shared=stream.share,
                e2e_budget_ns=streams[stream.name].e2e_ns,
                without_ect=quiet.stats[stream.name],
                with_ect=noisy.stats[stream.name],
            )
        )
    return result


def format_result(result: Fig15Result) -> str:
    rows = []
    for impact in result.impacts:
        rows.append([
            impact.stream,
            "shared" if impact.shared else "non-shared",
            ns_to_us(impact.without_ect.average_ns),
            ns_to_us(impact.without_ect.maximum_ns),
            ns_to_us(impact.with_ect.average_ns),
            ns_to_us(impact.with_ect.maximum_ns),
            ns_to_us(impact.e2e_budget_ns),
            "yes" if impact.worst_within_budget else "NO",
        ])
    return format_table(
        [
            "stream", "class", "avg_noECT_us", "max_noECT_us",
            "avg_ECT_us", "max_ECT_us", "budget_us", "within",
        ],
        rows,
        title="Fig. 15 — TCT latency with vs without ECT (E-TSN)",
    )
