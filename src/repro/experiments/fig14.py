"""Paper Fig. 14: ECT latency and jitter in the simulation network.

Panels (a)-(c): average latency, worst-case latency, and the same under
growing message length.  Panels (d)-(f): the corresponding jitter.  Two
sweeps drive all six panels:

* network load in {25, 50, 75} % with a 1-MTU ECT message;
* ECT message length in 1..5 MTU at 50 % load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.analysis import format_table, stats_row
from repro.experiments.runner import run_method
from repro.experiments.scenarios import simulation_workload
from repro.model.units import ETHERNET_MTU_BYTES, milliseconds
from repro.sim.recorder import LatencyStats

ECT_NAME = "s1e"


@dataclass
class Fig14Config:
    """Defaults deviate from the paper in one place: the message-length
    sweep runs 1..4 MTU at 25 % load instead of 1..5 MTU at 50 %.
    Prudent reservation (Alg. 1) reserves ``s_e.l`` extra MTU-sized slots
    per sharing stream per ECT-path link, and on the Fig. 13 network the
    5-MTU reservation alone exceeds backbone link capacity (>100 %
    allocated) — the workload is unschedulable under the paper's own
    accounting.  See EXPERIMENTS.md."""

    loads: Sequence[float] = (0.25, 0.50, 0.75)
    lengths_mtu: Sequence[int] = (1, 2, 3, 4)
    length_sweep_load: float = 0.25
    methods: Sequence[str] = ("etsn", "period", "avb")
    duration_ns: int = milliseconds(3_000)
    seed: int = 1


@dataclass
class Fig14Result:
    config: Fig14Config
    #: ("load", value, method) and ("length", value, method) -> stats
    stats: Dict[Tuple[str, float, str], LatencyStats] = field(default_factory=dict)


def run(config: Fig14Config = None) -> Fig14Result:
    config = config or Fig14Config()
    result = Fig14Result(config=config)
    for load in config.loads:
        workload = simulation_workload(load, seed=config.seed)
        for method in config.methods:
            outcome = run_method(
                workload.topology, workload.tct_streams, workload.ect_streams,
                method, duration_ns=config.duration_ns, seed=config.seed,
            )
            result.stats[("load", load, method)] = outcome.stats[ECT_NAME]
    for mtus in config.lengths_mtu:
        workload = simulation_workload(
            config.length_sweep_load,
            seed=config.seed,
            ect_length_bytes=mtus * ETHERNET_MTU_BYTES,
        )
        for method in config.methods:
            outcome = run_method(
                workload.topology, workload.tct_streams, workload.ect_streams,
                method, duration_ns=config.duration_ns, seed=config.seed,
            )
            result.stats[("length", mtus, method)] = outcome.stats[ECT_NAME]
    return result


def format_result(result: Fig14Result) -> str:
    sections = []
    load_rows = []
    for (kind, value, method), stats in sorted(result.stats.items()):
        if kind != "load":
            continue
        row = stats_row(stats)
        load_rows.append([
            f"{value:.0%}", method, row["avg_us"], row["max_us"], row["jitter_us"],
        ])
    sections.append(format_table(
        ["load", "method", "avg_us", "worst_us", "jitter_us"],
        load_rows,
        title="Fig. 14(a)(b)(d)(e) — ECT latency/jitter vs network load (1 MTU)",
    ))
    length_rows = []
    for (kind, value, method), stats in sorted(result.stats.items()):
        if kind != "length":
            continue
        row = stats_row(stats)
        length_rows.append([
            f"{value} MTU", method, row["avg_us"], row["max_us"], row["jitter_us"],
        ])
    sections.append(format_table(
        ["length", "method", "avg_us", "worst_us", "jitter_us"],
        length_rows,
        title=(
            f"Fig. 14(c)(f) — ECT latency/jitter vs message length at "
            f"{result.config.length_sweep_load:.0%} load"
        ),
    ))
    return "\n\n".join(sections)


def average_reductions(result: Fig14Result) -> Dict[str, float]:
    """Sec. VI-C1's aggregate claims: mean % reduction of E-TSN vs each
    baseline across all runs (latency, worst case, jitter)."""
    sums: Dict[str, list] = {}
    keys = {(kind, value) for (kind, value, _method) in result.stats}
    for kind, value in keys:
        etsn = result.stats[(kind, value, "etsn")]
        for method in result.config.methods:
            if method == "etsn":
                continue
            other = result.stats[(kind, value, method)]
            sums.setdefault(f"{method}_avg", []).append(
                1 - etsn.average_ns / other.average_ns
            )
            sums.setdefault(f"{method}_worst", []).append(
                1 - etsn.maximum_ns / other.maximum_ns
            )
            sums.setdefault(f"{method}_jitter", []).append(
                1 - etsn.stddev_ns / max(other.stddev_ns, 1e-9)
            )
    return {name: 100.0 * sum(vals) / len(vals) for name, vals in sums.items()}
