"""Workload builders for the two evaluation scenarios (Secs. VI-B, VI-C)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.experiments.topologies import simulation_topology, testbed_topology
from repro.model.stream import EctStream, Stream
from repro.model.topology import Topology
from repro.model.units import ETHERNET_MTU_BYTES, MBPS_100, milliseconds
from repro.traffic import TrafficConfig, generate_tct

#: Number of probabilistic possibilities (N) per ECT stream across the
#: evaluation.  The paper does not report its N; N=4 makes the PERIOD
#: baseline (whose dedicated-slot period is min_interevent / N) land in
#: the paper's reported ratio range — E-TSN's *run-time* latency is
#: insensitive to N because prioritized slot sharing does not wait for
#: the reserved possibility slots.
DEFAULT_POSSIBILITIES = 4


@dataclass
class Workload:
    """One fully-specified scenario instance."""

    topology: Topology
    tct_streams: List[Stream]
    ect_streams: List[EctStream]
    achieved_load: float
    payload_bytes: int


def testbed_workload(
    load: float,
    seed: int = 1,
    ect_length_bytes: int = ETHERNET_MTU_BYTES,
    possibilities: int = DEFAULT_POSSIBILITIES,
) -> Workload:
    """Sec. VI-B: 10 TCT streams on the Fig. 10 testbed + ECT D2 -> D4.

    Periods drawn from {4, 8, 16} ms; every TCT stream shares its slots
    with ECT; the ECT message is one MTU with 16 ms minimum inter-event
    time, occurrence uniformly distributed.
    """
    topology = testbed_topology()
    traffic = generate_tct(
        topology,
        TrafficConfig(
            num_streams=10,
            periods_ns=[milliseconds(4), milliseconds(8), milliseconds(16)],
            target_load=load,
            seed=seed,
            share=True,
        ),
    )
    ect = EctStream(
        name="ect1",
        source="D2",
        destination="D4",
        min_interevent_ns=milliseconds(16),
        length_bytes=ect_length_bytes,
        possibilities=possibilities,
    )
    return Workload(
        topology=topology,
        tct_streams=traffic.streams,
        ect_streams=[ect],
        achieved_load=traffic.achieved_load,
        payload_bytes=traffic.payload_bytes,
    )


def ring_topology() -> Topology:
    """Four switches in a ring, dual-homed talker A and listener B.

    The one evaluation topology with two link-disjoint A -> B routes, so
    it is where 802.1CB replication (:mod:`repro.core.frer`) is
    exercised — the robustness campaigns' FRER on/off axis runs here.
    """
    topo = Topology()
    switches = ["SW1", "SW2", "SW3", "SW4"]
    for switch in switches:
        topo.add_switch(switch)
    for a, b in zip(switches, switches[1:] + switches[:1]):
        topo.add_link(a, b, bandwidth_bps=MBPS_100)
    topo.add_device("A")
    topo.add_link("A", "SW1", bandwidth_bps=MBPS_100)
    topo.add_link("A", "SW3", bandwidth_bps=MBPS_100)
    topo.add_device("B")
    topo.add_link("B", "SW2", bandwidth_bps=MBPS_100)
    topo.add_link("B", "SW4", bandwidth_bps=MBPS_100)
    return topo


def ring_workload(
    load: float,
    seed: int = 1,
    ect_length_bytes: int = ETHERNET_MTU_BYTES,
    possibilities: int = DEFAULT_POSSIBILITIES,
) -> Workload:
    """Dual-homed ring: 4 sharing TCT streams + the ``alarm`` ECT stream.

    The ECT message is one MTU (by default) with 16 ms minimum
    inter-event time, A -> B; schedulable plain or with FRER members on
    the two disjoint ring paths.
    """
    topology = ring_topology()
    traffic = generate_tct(
        topology,
        TrafficConfig(
            num_streams=4,
            periods_ns=[milliseconds(4), milliseconds(8), milliseconds(16)],
            target_load=load,
            seed=seed,
            share=True,
        ),
    )
    ect = EctStream(
        name="alarm",
        source="A",
        destination="B",
        min_interevent_ns=milliseconds(16),
        length_bytes=ect_length_bytes,
        possibilities=possibilities,
    )
    return Workload(
        topology=topology,
        tct_streams=traffic.streams,
        ect_streams=[ect],
        achieved_load=traffic.achieved_load,
        payload_bytes=traffic.payload_bytes,
    )


def simulation_workload(
    load: float,
    seed: int = 1,
    ect_length_bytes: int = ETHERNET_MTU_BYTES,
    num_nonshared: int = 0,
    num_ect: int = 1,
    possibilities: int = DEFAULT_POSSIBILITIES,
) -> Workload:
    """Sec. VI-C: 40 TCT streams on the Fig. 13 network.

    Periods drawn from {5, 10, 20} ms.  The primary ECT stream runs
    D1 -> D12 with 10 ms minimum inter-event time; ``num_ect > 1`` adds
    the extra random-endpoint streams of the Fig. 16 experiment.
    ``num_nonshared`` marks that many TCT streams as more important than
    ECT (the Fig. 15 setting).
    """
    if num_ect < 1:
        raise ValueError("need at least the primary ECT stream")
    topology = simulation_topology()
    traffic = generate_tct(
        topology,
        TrafficConfig(
            num_streams=40,
            periods_ns=[milliseconds(5), milliseconds(10), milliseconds(20)],
            target_load=load,
            seed=seed,
            share=True,
            num_nonshared=num_nonshared,
        ),
    )
    ects = [
        EctStream(
            name="s1e",
            source="D1",
            destination="D12",
            min_interevent_ns=milliseconds(10),
            length_bytes=ect_length_bytes,
            possibilities=possibilities,
        )
    ]
    rng = random.Random(seed * 31 + 7)
    devices = [d.name for d in topology.devices]
    for index in range(2, num_ect + 1):
        src, dst = rng.sample(devices, 2)
        ects.append(
            EctStream(
                name=f"s{index}e",
                source=src,
                destination=dst,
                min_interevent_ns=milliseconds(10),
                length_bytes=ect_length_bytes,
                possibilities=possibilities,
            )
        )
    return Workload(
        topology=topology,
        tct_streams=traffic.streams,
        ect_streams=ects,
        achieved_load=traffic.achieved_load,
        payload_bytes=traffic.payload_bytes,
    )
