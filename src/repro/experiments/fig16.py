"""Paper Fig. 16: four concurrent ECT streams at 50 % network load.

Besides the primary D1 -> D12 stream, three ECT streams with random
endpoints fire independently.  E-TSN must deliver the lowest latency and
jitter for *all* of them simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.analysis import format_table, stats_row
from repro.experiments.runner import run_method
from repro.experiments.scenarios import simulation_workload
from repro.model.units import milliseconds
from repro.sim.recorder import LatencyStats

NUM_ECT = 4


@dataclass
class Fig16Config:
    load: float = 0.50
    methods: Sequence[str] = ("etsn", "period", "avb")
    duration_ns: int = milliseconds(3_000)
    seed: int = 1


@dataclass
class Fig16Result:
    config: Fig16Config
    #: (method, ect stream) -> stats
    stats: Dict[Tuple[str, str], LatencyStats] = field(default_factory=dict)
    ect_names: Sequence[str] = ()


def run(config: Fig16Config = None) -> Fig16Result:
    config = config or Fig16Config()
    workload = simulation_workload(config.load, seed=config.seed, num_ect=NUM_ECT)
    result = Fig16Result(
        config=config, ect_names=[e.name for e in workload.ect_streams]
    )
    for method in config.methods:
        outcome = run_method(
            workload.topology, workload.tct_streams, workload.ect_streams,
            method, duration_ns=config.duration_ns, seed=config.seed,
        )
        for ect in workload.ect_streams:
            result.stats[(method, ect.name)] = outcome.stats[ect.name]
    return result


def format_result(result: Fig16Result) -> str:
    rows = []
    for method in result.config.methods:
        for name in result.ect_names:
            stats = result.stats[(method, name)]
            row = stats_row(stats)
            rows.append([
                method, name, row["count"], row["avg_us"],
                row["max_us"], row["jitter_us"],
            ])
    return format_table(
        ["method", "stream", "events", "avg_us", "worst_us", "jitter_us"],
        rows,
        title=f"Fig. 16 — four ECT streams at {result.config.load:.0%} load",
    )


def average_reductions(result: Fig16Result) -> Dict[str, float]:
    """Sec. VI-C3's aggregate: mean latency/jitter reduction vs baselines."""
    out: Dict[str, float] = {}
    for method in result.config.methods:
        if method == "etsn":
            continue
        latency, jitter = [], []
        for name in result.ect_names:
            etsn = result.stats[("etsn", name)]
            other = result.stats[(method, name)]
            latency.append(1 - etsn.average_ns / other.average_ns)
            jitter.append(1 - etsn.stddev_ns / max(other.stddev_ns, 1e-9))
        out[f"{method}_latency"] = 100.0 * sum(latency) / len(latency)
        out[f"{method}_jitter"] = 100.0 * sum(jitter) / len(jitter)
    return out
