"""The two evaluation networks of the paper, plus cluster-scale shapes.

* :func:`testbed_topology` — paper Fig. 10: two switches, four devices,
  100 Mb/s links.  The ECT stream of Sec. VI-B runs D2 -> D4 (3 hops).
* :func:`simulation_topology` — paper Fig. 13: four switches in a chain,
  twelve devices (three per switch), 100 Mb/s.  The ECT stream of
  Sec. VI-C runs D1 -> D12 (5 hops).
* :func:`line_of_rings` — production-cell shape for the sharded
  admission benchmarks: several switch rings (one per cell) joined in a
  line by single trunk links, devices hanging off every switch.  The
  trunks are the natural shard boundary.
"""

from __future__ import annotations

from repro.model.topology import Topology
from repro.model.units import MBPS_100

#: Default physical propagation + switch processing delay per link; the
#: schedulers bound it via Eq. 7 and the simulator applies it on delivery.
DEFAULT_PROPAGATION_NS = 500


def testbed_topology(
    bandwidth_bps: int = MBPS_100, propagation_ns: int = DEFAULT_PROPAGATION_NS
) -> Topology:
    """Paper Fig. 10: D1, D2 - SW1 - SW2 - D3, D4."""
    topo = Topology()
    topo.add_switch("SW1")
    topo.add_switch("SW2")
    for device in ("D1", "D2"):
        topo.add_device(device)
        topo.add_link(device, "SW1", bandwidth_bps, propagation_ns)
    for device in ("D3", "D4"):
        topo.add_device(device)
        topo.add_link(device, "SW2", bandwidth_bps, propagation_ns)
    topo.add_link("SW1", "SW2", bandwidth_bps, propagation_ns)
    return topo


def simulation_topology(
    bandwidth_bps: int = MBPS_100, propagation_ns: int = DEFAULT_PROPAGATION_NS
) -> Topology:
    """Paper Fig. 13: a chain of four switches with three devices each."""
    topo = Topology()
    switches = [f"SW{i}" for i in range(1, 5)]
    for switch in switches:
        topo.add_switch(switch)
    for a, b in zip(switches, switches[1:]):
        topo.add_link(a, b, bandwidth_bps, propagation_ns)
    device = 1
    for switch in switches:
        for _ in range(3):
            name = f"D{device}"
            topo.add_device(name)
            topo.add_link(name, switch, bandwidth_bps, propagation_ns)
            device += 1
    return topo


def line_of_rings(
    rings: int = 4,
    ring_size: int = 4,
    devices_per_switch: int = 2,
    bandwidth_bps: int = MBPS_100,
    propagation_ns: int = DEFAULT_PROPAGATION_NS,
) -> Topology:
    """``rings`` switch rings chained by single trunk links.

    Ring ``r`` has switches ``R<r>S0 .. R<r>S<ring_size-1>`` closed into
    a cycle (for ``ring_size >= 3``; smaller rings degenerate to a
    segment), each carrying ``devices_per_switch`` devices named
    ``R<r>S<s>D<d>``.  Ring ``r``'s switch 0 trunks to ring ``r+1``'s
    switch 0 — the line's only inter-ring links, so a per-ring partition
    cuts exactly ``rings - 1`` full-duplex boundary links.
    """
    if rings < 1 or ring_size < 1:
        raise ValueError("need at least one ring with at least one switch")
    topo = Topology()
    for ring in range(rings):
        names = [f"R{ring}S{s}" for s in range(ring_size)]
        for name in names:
            topo.add_switch(name)
        for a, b in zip(names, names[1:]):
            topo.add_link(a, b, bandwidth_bps, propagation_ns)
        if ring_size >= 3:
            topo.add_link(names[-1], names[0], bandwidth_bps, propagation_ns)
        for name in names:
            for d in range(devices_per_switch):
                device = f"{name}D{d}"
                topo.add_device(device)
                topo.add_link(device, name, bandwidth_bps, propagation_ns)
    for ring in range(rings - 1):
        topo.add_link(
            f"R{ring}S0", f"R{ring + 1}S0", bandwidth_bps, propagation_ns
        )
    return topo
