"""The two evaluation networks of the paper.

* :func:`testbed_topology` — paper Fig. 10: two switches, four devices,
  100 Mb/s links.  The ECT stream of Sec. VI-B runs D2 -> D4 (3 hops).
* :func:`simulation_topology` — paper Fig. 13: four switches in a chain,
  twelve devices (three per switch), 100 Mb/s.  The ECT stream of
  Sec. VI-C runs D1 -> D12 (5 hops).
"""

from __future__ import annotations

from repro.model.topology import Topology
from repro.model.units import MBPS_100

#: Default physical propagation + switch processing delay per link; the
#: schedulers bound it via Eq. 7 and the simulator applies it on delivery.
DEFAULT_PROPAGATION_NS = 500


def testbed_topology(
    bandwidth_bps: int = MBPS_100, propagation_ns: int = DEFAULT_PROPAGATION_NS
) -> Topology:
    """Paper Fig. 10: D1, D2 - SW1 - SW2 - D3, D4."""
    topo = Topology()
    topo.add_switch("SW1")
    topo.add_switch("SW2")
    for device in ("D1", "D2"):
        topo.add_device(device)
        topo.add_link(device, "SW1", bandwidth_bps, propagation_ns)
    for device in ("D3", "D4"):
        topo.add_device(device)
        topo.add_link(device, "SW2", bandwidth_bps, propagation_ns)
    topo.add_link("SW1", "SW2", bandwidth_bps, propagation_ns)
    return topo


def simulation_topology(
    bandwidth_bps: int = MBPS_100, propagation_ns: int = DEFAULT_PROPAGATION_NS
) -> Topology:
    """Paper Fig. 13: a chain of four switches with three devices each."""
    topo = Topology()
    switches = [f"SW{i}" for i in range(1, 5)]
    for switch in switches:
        topo.add_switch(switch)
    for a, b in zip(switches, switches[1:]):
        topo.add_link(a, b, bandwidth_bps, propagation_ns)
    device = 1
    for switch in switches:
        for _ in range(3):
            name = f"D{device}"
            topo.add_device(name)
            topo.add_link(name, switch, bandwidth_bps, propagation_ns)
            device += 1
    return topo
