"""Per-figure experiment configurations (paper Sec. VI).

One module per table/figure of the evaluation; each exposes ``run()``
returning a structured result and ``format_result()`` rendering the
paper's rows.  The benchmark harness under ``benchmarks/`` drives these.
"""

from repro.experiments import fig11, fig12, fig14, fig15, fig16
from repro.experiments.runner import METHODS, MethodResult, build_schedule, run_method
from repro.experiments.scenarios import (
    DEFAULT_POSSIBILITIES,
    Workload,
    ring_topology,
    ring_workload,
    simulation_workload,
    testbed_workload,
)
from repro.experiments.topologies import (
    line_of_rings,
    simulation_topology,
    testbed_topology,
)

__all__ = [
    "DEFAULT_POSSIBILITIES",
    "METHODS",
    "MethodResult",
    "Workload",
    "build_schedule",
    "fig11",
    "fig12",
    "fig14",
    "fig15",
    "fig16",
    "ring_topology",
    "ring_workload",
    "run_method",
    "line_of_rings",
    "simulation_topology",
    "simulation_workload",
    "testbed_topology",
    "testbed_workload",
]
