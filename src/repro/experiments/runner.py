"""Shared machinery for the per-figure experiments.

``run_method`` is the one entry point every figure module uses: given a
network, a TCT population, the ECT streams, and a method name, it builds
the schedule, synthesizes the GCL, runs the simulation, and returns the
per-stream statistics the paper's plots are made of.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import build_gcl
from repro.core.baselines import build_schedule
from repro.core.schedule import NetworkSchedule
from repro.model.stream import EctStream, Stream
from repro.model.topology import Topology
from repro.sim import SimConfig, SimReport, TsnSimulation
from repro.sim.recorder import LatencyStats

#: Methods compared throughout the evaluation.  ``period_x{m}`` variants
#: reserve ``m`` times as many dedicated slots (paper Fig. 12).
METHODS = ("etsn", "etsn-strict", "period", "period_x2", "period_x4", "period_x8", "avb")


@dataclass
class MethodResult:
    """Everything one (method, scenario) run produced."""

    method: str
    schedule: NetworkSchedule
    report: SimReport
    #: per-stream latency summaries (ECT streams and TCT streams alike)
    stats: Dict[str, LatencyStats]

    def ect_stats(self) -> Dict[str, LatencyStats]:
        names = {e.name for e in self.schedule.ect_streams}
        return {n: s for n, s in self.stats.items() if n in names}

    def cdf(self, stream: str) -> List[Tuple[int, float]]:
        return self.report.recorder.cdf(stream)


def run_method(
    topology: Topology,
    tct_streams: Sequence[Stream],
    ect_streams: Sequence[EctStream],
    method: str,
    duration_ns: int,
    seed: int = 0,
    backend: str = "heuristic",
    ect_event_times: Optional[Dict[str, List[int]]] = None,
) -> MethodResult:
    """Schedule, synthesize the GCL, simulate, and summarize one method."""
    schedule, mode = build_schedule(topology, tct_streams, ect_streams, method, backend)
    gcl = build_gcl(schedule, mode=mode, ect_proxies=schedule.meta.get("ect_proxies"))
    config = SimConfig(
        duration_ns=duration_ns,
        seed=seed,
        cbs_on_ect=(mode == "avb"),
        ect_event_times=ect_event_times or {},
    )
    simulation = TsnSimulation(schedule, gcl, config)
    report = simulation.run()
    stats = {
        stream: report.recorder.stats(stream)
        for stream in report.recorder.streams()
    }
    return MethodResult(method=method, schedule=schedule, report=report, stats=stats)
