"""Paper Fig. 11: CDFs of ECT latency on the testbed, by method and load.

Also yields the headline numbers of Sec. VI-B: at 75 % load, E-TSN's
average (~423 us over 3 hops), worst case (~515 us), and jitter (~39 us),
each at least an order of magnitude better than PERIOD and AVB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis import format_table, stats_row
from repro.experiments.runner import run_method
from repro.experiments.scenarios import testbed_workload
from repro.model.units import milliseconds, ns_to_us
from repro.sim.recorder import LatencyStats

ECT_NAME = "ect1"


@dataclass
class Fig11Config:
    loads: Sequence[float] = (0.25, 0.50, 0.75)
    methods: Sequence[str] = ("etsn", "period", "avb")
    duration_ns: int = milliseconds(4_000)
    seed: int = 1


@dataclass
class Fig11Result:
    config: Fig11Config
    #: (load, method) -> latency stats of the ECT stream
    stats: Dict[Tuple[float, str], LatencyStats] = field(default_factory=dict)
    #: (load, method) -> CDF points of the ECT stream
    cdfs: Dict[Tuple[float, str], List[Tuple[int, float]]] = field(default_factory=dict)
    achieved_loads: Dict[float, float] = field(default_factory=dict)


def run(config: Fig11Config = None) -> Fig11Result:
    config = config or Fig11Config()
    result = Fig11Result(config=config)
    for load in config.loads:
        workload = testbed_workload(load, seed=config.seed)
        result.achieved_loads[load] = workload.achieved_load
        for method in config.methods:
            outcome = run_method(
                workload.topology,
                workload.tct_streams,
                workload.ect_streams,
                method,
                duration_ns=config.duration_ns,
                seed=config.seed,
            )
            result.stats[(load, method)] = outcome.stats[ECT_NAME]
            result.cdfs[(load, method)] = outcome.cdf(ECT_NAME)
    return result


def format_result(result: Fig11Result) -> str:
    rows = []
    for (load, method), stats in sorted(result.stats.items()):
        row = stats_row(stats)
        rows.append([
            f"{load:.0%}", method, row["count"],
            row["avg_us"], row["max_us"], row["jitter_us"],
        ])
    return format_table(
        ["load", "method", "events", "avg_us", "worst_us", "jitter_us"],
        rows,
        title="Fig. 11 — ECT latency on the testbed (D2->D4, 3 hops)",
    )


def headline_numbers(result: Fig11Result, load: float = 0.75) -> Dict[str, float]:
    """The Sec. VI-B comparison at one load (defaults to 75 %)."""
    etsn = result.stats[(load, "etsn")]
    numbers = {
        "etsn_avg_us": ns_to_us(etsn.average_ns),
        "etsn_worst_us": ns_to_us(etsn.maximum_ns),
        "etsn_jitter_us": ns_to_us(etsn.stddev_ns),
    }
    for method in result.config.methods:
        if method == "etsn":
            continue
        other = result.stats[(load, method)]
        numbers[f"{method}_avg_ratio"] = other.average_ns / etsn.average_ns
        numbers[f"{method}_worst_ratio"] = other.maximum_ns / etsn.maximum_ns
        numbers[f"{method}_jitter_ratio"] = other.stddev_ns / max(etsn.stddev_ns, 1)
    return numbers
