"""The cluster coordinator: sharded multi-tenant admission.

One :class:`ClusterCoordinator` fronts a fleet of per-shard
:class:`~repro.service.admission.AdmissionService` +
:class:`~repro.service.store.ScheduleStore` pairs, one per shard of a
:class:`~repro.cluster.partition.NetworkPartition`:

* **Shard-local requests** (the common case — industrial cells mostly
  talk within themselves) are routed to their shard and admitted fully
  in parallel on a thread pool; shards never contend on a shared store,
  which is where the throughput multiple over the single-store service
  comes from — each shard's incremental solve walks a schedule a
  fraction of the global size.
* **Cross-shard requests** split into per-shard route segments at the
  partition's boundary links and go through the two-phase publish of
  :mod:`repro.cluster.twophase`: prepare pins each shard's CAS version
  and solves the segments against the pinned snapshots, commit
  publishes all shards via ``expected_version`` CAS, and any conflict
  aborts and rolls back already-published shards.
* The **merged global view** (:meth:`ClusterCoordinator.global_schedule`)
  stitches the per-shard snapshots back into one
  :class:`~repro.core.schedule.NetworkSchedule` over the global
  topology; :meth:`ClusterCoordinator.audit` runs GCL synthesis plus
  :func:`~repro.core.gcl_audit.audit_gcl` on the stitched result, so a
  half-committed cross-shard stream can never hide.

Timing across a boundary is store-and-forward: each shard times its
segment on its own axis and the border switch buffers until the next
shard's slot opens (the per-domain stitching used by cycle-based
TSN deployments).  A cross-shard stream's end-to-end budget is split
across its segments proportionally to hop count (the splits sum exactly
to the budget), so each shard validates its segment against a share of
the deadline rather than the whole of it.  Per-link gate consistency —
what the audit checks — holds exactly, because every directed link is
scheduled by exactly one shard.  Cross-shard **ECT** admission is
rejected as a structured decision (reason
``cross_shard_ect_unsupported``): splitting an event's probabilistic
possibilities across independently-timed shards has no sound semantics
in the paper's model.  A route that leaves a shard and re-enters it
(possible with shortest paths on ring-containing topologies) is
rejected as ``reentrant_route_unsupported``: two disjoint sub-paths in
one shard cannot be expressed as a single source→destination
sub-admit.

Stream names are unique **cluster-wide**, not merely per shard: an
admit claims its name under the coordinator lock and is rejected with
``name_in_use`` when any shard already holds it (or a concurrent admit
is in flight for it) — otherwise two same-named streams on different
shards would corrupt the stitched global view and a ``Remove`` would
retire both.

All traffic for a shard must flow through the coordinator: its
per-shard locks are what let an aborting cross-shard commit roll back
with a guaranteed CAS, and its name claims are what keep stream names
unique across shards.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.gcl import NetworkGcl, build_gcl
from repro.core.gcl_audit import audit_gcl
from repro.core.schedule import NetworkSchedule
from repro.model.stream import Stream, StreamError, TctRequirement
from repro.model.topology import TopologyError
from repro.check.sanitizer import make_lock
from repro.obs.context import TraceContext
from repro.obs.events import NULL_EVENT_LOG, EventLog
from repro.obs.export import cluster_to_prometheus
from repro.obs.trace import NULL_TRACER, Tracer
from repro.service import fastpath as fastpath_module
from repro.service.admission import AdmissionService, ServiceConfig, empty_schedule
from repro.service.metrics import MetricsRegistry
from repro.service.requests import (
    AdmissionRequest,
    AdmitEct,
    AdmitTct,
    Decision,
    Remove,
)
from repro.service.store import ScheduleStore
from repro.cluster.partition import NetworkPartition, partition_topology
from repro.cluster.twophase import (
    CrossShardPublish,
    Participant,
    PrepareFailure,
)

#: Decision.rung value for accepted cross-shard requests.
RUNG_TWOPHASE = "twophase"

#: Structured rejection reasons the coordinator itself produces.
REASON_CROSS_ECT = "cross_shard_ect_unsupported"
REASON_UNROUTABLE = "unroutable"
REASON_UNKNOWN_STREAM = "unknown_stream"
REASON_NAME_IN_USE = "name_in_use"
REASON_REENTRANT = "reentrant_route_unsupported"


@dataclass
class _ShardRuntime:
    """One shard's store/service pair and its commit lock."""

    shard_name: str
    store: ScheduleStore
    service: AdmissionService
    lock: threading.Lock


@dataclass(frozen=True)
class _Placement:
    """Where one request goes: its shards, or an immediate rejection."""

    shards: Tuple[str, ...] = ()
    reject_reason: Optional[str] = None

    @property
    def is_local(self) -> bool:
        return len(self.shards) == 1 and self.reject_reason is None

    @property
    def is_cross(self) -> bool:
        return len(self.shards) > 1 and self.reject_reason is None


class ClusterCoordinator:
    """Routes admission traffic across a sharded store fleet."""

    def __init__(
        self,
        topology=None,
        partition: Optional[NetworkPartition] = None,
        shard_count: int = 4,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventLog] = None,
        max_workers: Optional[int] = None,
        max_commit_attempts: int = 4,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if partition is None:
            if topology is None:
                raise ValueError("need a topology or a partition")
            partition = partition_topology(topology, shard_count)
        self._partition = partition
        self._config = config or ServiceConfig()
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        # One tracer and one event journal are shared by the coordinator
        # and every shard service, so a cross-shard admission is a single
        # trace and the journal interleaves all shards chronologically.
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._events = events if events is not None else NULL_EVENT_LOG
        self._clock = clock
        self._max_commit_attempts = max_commit_attempts
        self._runtimes: Dict[str, _ShardRuntime] = {}
        for shard in partition.shards:
            store = ScheduleStore(empty_schedule(shard.topology))
            self._runtimes[shard.name] = _ShardRuntime(
                shard_name=shard.name,
                store=store,
                service=AdmissionService(
                    store, config=self._config, tracer=self._tracer,
                    events=self._events,
                ),
                lock=make_lock(
                    "_ShardRuntime.lock",
                    group="cluster.shards", key=shard.name,
                ),
            )
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers or len(partition.shards),
            thread_name_prefix="repro-cluster",
        )
        self._metrics.gauge("cluster.shards").set(len(partition.shards))
        self._lock = make_lock("ClusterCoordinator._lock")
        self._request_counter = 0
        #: names claimed by admits between placement and decision,
        #: guarded by ``_lock`` — closes the window in which two
        #: concurrent admits could land the same name on two shards.
        self._inflight_names: set = set()

    # -- public surface ------------------------------------------------
    @property
    def partition(self) -> NetworkPartition:
        return self._partition

    @property
    def metrics(self) -> MetricsRegistry:
        """Cluster-level metrics (``cluster.*``); per-shard service and
        store metrics live on each shard's own registry."""
        return self._metrics

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    @property
    def events(self) -> EventLog:
        return self._events

    def prometheus(self, namespace: str = "repro") -> str:
        """One Prometheus exposition for the whole cluster.

        Every shard registry's samples carry a ``shard`` label (per-rung
        admission latency per shard, ready to scrape); the coordinator's
        own ``cluster.*`` series ride along unlabelled.
        """
        return cluster_to_prometheus(
            {
                name: runtime.store.metrics.to_dict()
                for name, runtime in self._runtimes.items()
            },
            cluster_snapshot=self._metrics.to_dict(),
            namespace=namespace,
        )

    def shard_service(self, name: str) -> AdmissionService:
        return self._runtime(name).service

    def shard_store(self, name: str) -> ScheduleStore:
        return self._runtime(name).store

    def shard_names(self) -> List[str]:
        return [shard.name for shard in self._partition.shards]

    def submit(self, request: AdmissionRequest) -> Decision:
        """Decide one request (local fast path or two-phase)."""
        return self.submit_many([request])[0]

    def submit_many(
        self, requests: Sequence[AdmissionRequest]
    ) -> List[Decision]:
        """Decide a request batch; shard-local work runs in parallel.

        Decisions come back in submission order.  Requests for
        different shards admit concurrently on the pool; requests for
        the same shard keep their relative order; cross-shard requests
        run after the local wave (their CAS would otherwise duel the
        very batches submitted next to them).  A repeated stream name
        splits the batch into sequential waves, so a remove (or
        re-admit) sees the effect of the earlier request it follows.
        """
        started = self._clock()
        with self._tracer.span(
            "cluster.batch", size=len(requests)
        ) as batch_span:
            decisions: List[Optional[Decision]] = [None] * len(requests)
            local_total = cross_total = 0
            for wave in self._waves(requests):
                local, cross = self._run_wave(requests, wave, decisions,
                                              batch_span)
                local_total += local
                cross_total += cross
            batch_span.set(local=local_total, cross=cross_total)
        self._metrics.histogram("cluster.latency.batch_ms").observe(
            (self._clock() - started) * 1e3
        )
        if self._tracer.enabled:
            self._metrics.gauge("tracer.spans_dropped").set(
                self._tracer.dropped
            )
        if self._events.enabled:
            self._metrics.gauge("events.dropped").set(self._events.dropped)
        return [d for d in decisions if d is not None]

    @staticmethod
    def _waves(requests: Sequence[AdmissionRequest]) -> List[List[int]]:
        """Split a batch into waves at repeated stream names.

        Placement consults live shard state (a remove routes to the
        shards holding the stream), so a request naming a stream an
        earlier batch-mate touches must wait until that wave lands.
        """
        waves: List[List[int]] = []
        current: List[int] = []
        names: set = set()
        for index, request in enumerate(requests):
            if request.stream_name in names:
                waves.append(current)
                current, names = [], set()
            current.append(index)
            names.add(request.stream_name)
        if current:
            waves.append(current)
        return waves

    def _run_wave(
        self,
        requests: Sequence[AdmissionRequest],
        wave: List[int],
        decisions: List[Optional[Decision]],
        batch_span,
    ) -> Tuple[int, int]:
        """Place and decide one wave; returns (local, cross) counts."""
        by_shard: Dict[str, List[int]] = {}
        cross: List[int] = []
        claimed: List[str] = []
        try:
            for index in wave:
                request = requests[index]
                self._metrics.counter("cluster.requests_total").inc()
                if isinstance(request, (AdmitTct, AdmitEct)):
                    problem = self._claim_name(request.stream_name)
                    if problem is not None:
                        self._metrics.counter(
                            "cluster.rejected_name_in_use"
                        ).inc()
                        decisions[index] = self._reject(request, problem)
                        continue
                    claimed.append(request.stream_name)
                placement = self._place(request)
                if placement.reject_reason is not None:
                    decisions[index] = self._reject(
                        request, placement.reject_reason
                    )
                elif placement.is_local:
                    by_shard.setdefault(placement.shards[0], []).append(index)
                else:
                    cross.append(index)

            # The pool workers' thread-local span stacks are empty, so
            # without an explicit hand-over every shard batch would
            # start a disconnected trace; capturing the batch span's
            # context here and re-entering it in the worker keeps the
            # whole fan-out under one trace_id.
            context = TraceContext.of(batch_span)
            futures = {}
            for shard_name, indices in by_shard.items():
                self._metrics.counter(
                    "cluster.requests_local"
                ).inc(len(indices))
                futures[shard_name] = self._pool.submit(
                    self._run_shard_batch,
                    shard_name,
                    [requests[i] for i in indices],
                    context,
                )
            for shard_name, indices in by_shard.items():
                for i, decision in zip(indices, futures[shard_name].result()):
                    decisions[i] = decision

            for index in cross:
                self._metrics.counter("cluster.requests_cross").inc()
                decisions[index] = self._submit_cross(
                    requests[index], batch_span
                )
        finally:
            # claims cover placement through publish; once the wave's
            # decisions are in, the stores themselves hold the names
            if claimed:
                with self._lock:
                    self._inflight_names.difference_update(claimed)
        return sum(len(v) for v in by_shard.values()), len(cross)

    def global_schedule(self) -> NetworkSchedule:
        """Stitch the per-shard snapshots into one global schedule.

        Cross-shard streams reappear whole: their per-shard segment
        streams chain back together at the border switches, and the
        merged slot table keys every directed link exactly once (each
        is scheduled by exactly one shard).
        """
        snapshots = {
            name: runtime.store.snapshot()
            for name, runtime in self._runtimes.items()
        }
        slots: Dict[Tuple[str, Tuple[str, str]], List] = {}
        by_name: Dict[str, List[Stream]] = {}
        ect_streams: List = []
        for name in sorted(snapshots):
            schedule = snapshots[name].schedule
            for key, frame_slots in schedule.slots.items():
                slots[key] = list(frame_slots)
            for stream in schedule.streams:
                by_name.setdefault(stream.name, []).append(stream)
            ect_streams.extend(schedule.ect_streams)
        streams = [
            _stitch_segments(name, segments)
            for name, segments in by_name.items()
        ]
        return NetworkSchedule(
            topology=self._partition.topology,
            streams=streams,
            slots=slots,
            ect_streams=ect_streams,
            meta={
                "cluster": {
                    "shard_versions": {
                        name: snapshots[name].version for name in snapshots
                    }
                }
            },
        )

    def audit(self, mode: Optional[str] = None) -> Optional[NetworkGcl]:
        """Synthesize and audit the GCL of the stitched global view.

        Raises :class:`~repro.core.gcl_audit.GclAuditError` if any gate
        program contradicts the stitched schedule — the invariant a
        two-phase abort must never break.  Returns ``None`` while the
        cluster is empty (there is no GCL for an empty schedule).

        The audit covers per-link gate consistency, which is exact
        (every directed link is scheduled by one shard).  Whole-path
        latency is *not* re-validated here: segments across a border
        run on independent shard time axes under store-and-forward
        hand-over, so adjacent-link ordering does not hold across
        borders by construction; each segment's deadline share was
        already validated by its shard at admission.
        """
        schedule = self.global_schedule()
        if not schedule.streams and not schedule.ect_streams:
            return None
        gcl = build_gcl(schedule, mode=mode or self._config.gcl_mode)
        audit_gcl(schedule, gcl)
        self._metrics.counter("cluster.audits").inc()
        return gcl

    def status(self) -> Dict:
        """JSON-able cluster summary: shards, versions, populations."""
        shards = {}
        for shard in self._partition.shards:
            runtime = self._runtimes[shard.name]
            snapshot = runtime.store.snapshot()
            shards[shard.name] = {
                "version": snapshot.version,
                "streams": len(snapshot.schedule.streams),
                "ect_streams": len(snapshot.schedule.ect_streams),
                "switches": list(shard.switches),
                "devices": list(shard.devices),
                "border_nodes": list(shard.border_nodes),
            }
        return {
            "shards": shards,
            "boundary_links": [list(k) for k in self._partition.boundary_links],
            "metrics": self._metrics.to_dict(),
        }

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    # -- placement -----------------------------------------------------
    def _place(self, request: AdmissionRequest) -> _Placement:
        if isinstance(request, Remove):
            holders = tuple(
                name for name, runtime in sorted(self._runtimes.items())
                if self._holds_stream(runtime, request.name)
            )
            if not holders:
                return _Placement(reject_reason=REASON_UNKNOWN_STREAM)
            return _Placement(shards=holders)
        try:
            if isinstance(request, AdmitTct):
                requirement = request.requirement
                path = self._partition.topology.shortest_path(
                    requirement.source, requirement.destination
                )
            elif isinstance(request, AdmitEct):
                path = list(request.ect.route(self._partition.topology))
            else:
                return _Placement(
                    reject_reason=(
                        f"unsupported request type {type(request).__name__}"
                    )
                )
        except (TopologyError, ValueError, KeyError) as exc:
            return _Placement(reject_reason=f"{REASON_UNROUTABLE}: {exc}")
        order = [s.shard for s in self._partition.split_route(path)]
        shards = tuple(dict.fromkeys(order))
        if isinstance(request, AdmitEct) and len(shards) > 1:
            self._metrics.counter("cluster.rejected_cross_ect").inc()
            return _Placement(reject_reason=REASON_CROSS_ECT)
        if len(order) != len(shards):
            # the route left a shard and came back (shortest paths can
            # do that on ring-containing topologies); two disjoint
            # sub-paths in one shard cannot be expressed as a single
            # source->destination sub-admit, so reject rather than
            # mis-solve
            self._metrics.counter("cluster.rejected_reentrant").inc()
            return _Placement(reject_reason=REASON_REENTRANT)
        return _Placement(shards=shards)

    def _claim_name(self, name: str) -> Optional[str]:
        """Atomically claim an admit's stream name, cluster-wide.

        Returns a rejection reason when any shard already holds the
        name or another in-flight admit claimed it; on ``None`` the
        name stays claimed until the wave releases it.
        """
        with self._lock:
            if name in self._inflight_names:
                return (
                    f"{REASON_NAME_IN_USE}: stream name {name!r} has a "
                    f"concurrent admit in flight"
                )
            for shard_name, runtime in sorted(self._runtimes.items()):
                if self._holds_stream(runtime, name):
                    return (
                        f"{REASON_NAME_IN_USE}: stream name {name!r} is "
                        f"already admitted on {shard_name}"
                    )
            self._inflight_names.add(name)
            return None

    @staticmethod
    def _holds_stream(runtime: _ShardRuntime, name: str) -> bool:
        schedule = runtime.store.schedule
        return any(s.name == name for s in schedule.streams) or any(
            e.name == name for e in schedule.ect_streams
        )

    # -- local path ----------------------------------------------------
    def _run_shard_batch(
        self,
        shard_name: str,
        requests: List[AdmissionRequest],
        context: Optional[TraceContext] = None,
    ) -> List[Decision]:
        """Run one shard's sub-batch on a pool worker.

        ``context`` is the coordinator batch span's trace context; the
        worker re-enters it so the shard batch (and every admission
        span the shard service opens beneath it) joins the caller's
        trace instead of rooting a new one.
        """
        runtime = self._runtime(shard_name)
        started = self._clock()
        with self._tracer.use_context(context):
            with self._tracer.span(
                "cluster.shard_batch", shard=shard_name, size=len(requests)
            ):
                with runtime.lock:
                    decisions = runtime.service.submit_many(requests)
        self._metrics.histogram("cluster.latency.shard_batch_ms").observe(
            (self._clock() - started) * 1e3
        )
        return decisions

    # -- cross-shard path ----------------------------------------------
    def _submit_cross(
        self, request: AdmissionRequest, parent_span
    ) -> Decision:
        """Admit or remove one cross-shard stream via two-phase publish."""
        started = self._clock()
        attempts: Dict[str, str] = {}
        if isinstance(request, AdmitTct) and self._config.fastpath:
            # Screen the *global* route before the two-phase machinery
            # spins up: the wire-time floor over the whole path is a
            # necessary condition regardless of how the e2e budget is
            # split across shard segments (store-and-forward can only
            # add latency), so a conclusive reject here saves a
            # prepare/abort round across every participant shard.
            reason = None
            try:
                stream = request.requirement.resolve(
                    self._partition.topology
                )
                reason = fastpath_module.screen_route(stream)
            except (StreamError, ValueError, KeyError):
                pass  # routing problems get their structured reason below
            if reason is not None:
                self._metrics.counter("cluster.fastpath_rejects").inc()
                attempts["fastpath"] = reason
                return self._reject(request, reason, attempts=attempts)
        try:
            participants = self._participants_for(request, attempts)
        except PrepareFailure as exc:
            return self._reject(request, str(exc), attempts=attempts)
        publish = CrossShardPublish(
            participants,
            metrics=self._metrics,
            tracer=self._tracer,
            parent_span=parent_span,
            events=self._events,
        )
        outcome = publish.execute(max_attempts=self._max_commit_attempts)
        self._metrics.histogram("cluster.latency.cross_ms").observe(
            (self._clock() - started) * 1e3
        )
        if not outcome.committed:
            return self._reject(request, outcome.reason, attempts=attempts)
        return self._decide_cross(request, outcome.versions, attempts)

    def _participants_for(
        self, request: AdmissionRequest, attempts: Dict[str, str]
    ) -> List[Participant]:
        """One participant per involved shard, each with a solve
        closure over that shard's sub-requests."""
        per_shard: Dict[str, List[AdmissionRequest]] = {}
        if isinstance(request, Remove):
            for name, runtime in sorted(self._runtimes.items()):
                if self._holds_stream(runtime, request.name):
                    per_shard[name] = [Remove(request.name)]
        elif isinstance(request, AdmitTct):
            for segment_request, shard_name in self._segment_requests(
                request.requirement, attempts
            ):
                per_shard.setdefault(shard_name, []).append(segment_request)
        else:
            raise PrepareFailure(REASON_CROSS_ECT)
        participants = []
        for shard_name, sub_requests in per_shard.items():
            runtime = self._runtime(shard_name)
            participants.append(Participant(
                name=shard_name,
                store=runtime.store,
                solve=self._solver_for(runtime, sub_requests, attempts),
                lock=runtime.lock,
            ))
        return participants

    def _segment_requests(
        self, requirement: TctRequirement, attempts: Dict[str, str]
    ) -> List[Tuple[AdmitTct, str]]:
        """Split a TCT requirement into one per-shard segment admit.

        Each segment keeps the stream's name, period, length and
        priority; the endpoints and the deadline change — a segment
        starts and ends on this shard's devices or border switches,
        and the stream's end-to-end budget is split across segments
        proportionally to hop count.  The shares sum exactly to the
        budget, so independently-timed segments that each meet their
        share keep the stitched stream inside its deadline up to the
        store-and-forward hand-over at the borders; the split is
        recorded in the decision's ``attempts["e2e_split"]`` so the
        caveat is visible to the caller.
        """
        path = self._partition.topology.shortest_path(
            requirement.source, requirement.destination
        )
        segments = self._partition.split_route(path)
        e2e = (requirement.e2e_ns if requirement.e2e_ns is not None
               else requirement.period_ns)
        total_hops = sum(len(segment.links) for segment in segments)
        budgets = [
            e2e * len(segment.links) // total_hops for segment in segments
        ]
        budgets[-1] += e2e - sum(budgets)  # rounding dust: exact sum
        if min(budgets) <= 0:
            raise PrepareFailure(
                f"e2e budget {e2e}ns cannot cover {len(segments)} shard "
                f"segments over {total_hops} hops"
            )
        attempts["e2e_split"] = " + ".join(
            f"{segment.shard}:{budget}ns"
            for segment, budget in zip(segments, budgets)
        ) + " (store-and-forward at borders)"
        return [
            (
                AdmitTct(replace(
                    requirement,
                    source=segment.source,
                    destination=segment.destination,
                    e2e_ns=budget,
                )),
                segment.shard,
            )
            for segment, budget in zip(segments, budgets)
        ]

    def _solver_for(
        self,
        runtime: _ShardRuntime,
        sub_requests: List[AdmissionRequest],
        attempts: Dict[str, str],
    ):
        def solve(pinned: NetworkSchedule) -> NetworkSchedule:
            # a child of cluster.prepare via the thread stack; the rung
            # and solve spans of the sub-solve nest beneath it, so the
            # trace shows which shard each prepare-phase solve ran for
            with self._tracer.span(
                "cluster.segment", shard=runtime.shard_name,
            ):
                outcome, rung_attempts = runtime.service.solve_against(
                    pinned, sub_requests
                )
            for rung, why in rung_attempts.items():
                attempts[f"{runtime.shard_name}.{rung}"] = why
            if outcome is None:
                raise PrepareFailure(
                    "; ".join(
                        f"{rung}: {why}"
                        for rung, why in rung_attempts.items()
                    ) or "sub-solve failed"
                )
            rung, schedule = outcome
            attempts[f"{runtime.shard_name}.rung"] = rung
            return schedule

        return solve

    # -- decisions -----------------------------------------------------
    def _next_request_id(self) -> int:
        with self._lock:
            self._request_counter += 1
            return self._request_counter

    def _reject(
        self,
        request: AdmissionRequest,
        reason: str,
        attempts: Optional[Dict[str, str]] = None,
    ) -> Decision:
        self._metrics.counter("cluster.rejected").inc()
        self._emit_decision(request, accepted=False, reason=reason)
        return Decision(
            request_id=self._next_request_id(),
            op=request.op,
            stream=request.stream_name,
            accepted=False,
            reason=reason,
            attempts=dict(attempts or {}),
        )

    def _decide_cross(
        self,
        request: AdmissionRequest,
        versions: Dict[str, int],
        attempts: Dict[str, str],
    ) -> Decision:
        if request.op == "remove":
            self._metrics.counter("cluster.removed_cross").inc()
        else:
            self._metrics.counter("cluster.admitted_cross").inc()
        self._emit_decision(
            request, accepted=True, rung=RUNG_TWOPHASE,
            shards=sorted(versions),
        )
        return Decision(
            request_id=self._next_request_id(),
            op=request.op,
            stream=request.stream_name,
            accepted=True,
            rung=RUNG_TWOPHASE,
            store_version=max(versions.values()) if versions else None,
            batch_size=len(versions),
            attempts=dict(attempts),
        )

    def _emit_decision(self, request, accepted, reason=None, rung=None,
                       shards=None) -> None:
        """Journal a coordinator-level verdict (cross commits, cluster
        rejects); shard-local verdicts are journalled by their shard's
        AdmissionService."""
        if not self._events.enabled:
            return
        context = self._tracer.current_context()
        attributes = {
            "request": request.stream_name, "op": request.op,
            "accepted": accepted, "scope": "cluster",
        }
        if reason is not None:
            attributes["reason"] = reason
        if rung is not None:
            attributes["rung"] = rung
        if shards is not None:
            attributes["shards"] = shards
        self._events.emit(
            "admission.decision",
            trace_id=getattr(context, "trace_id", None),
            span_id=getattr(context, "span_id", None),
            **attributes,
        )

    # -- internals -----------------------------------------------------
    def _runtime(self, name: str) -> _ShardRuntime:
        try:
            return self._runtimes[name]
        except KeyError:
            raise ValueError(f"no shard named {name!r}") from None


def _stitch_segments(name: str, segments: List[Stream]) -> Stream:
    """Chain a cross-shard stream's per-shard segments back together.

    Segments arrive in arbitrary shard order; the head is the one whose
    source no other segment delivers to, and each next segment starts
    where the previous one ended (the border switch).
    """
    if len(segments) == 1:
        return segments[0]
    ends = {segment.path[-1].dst for segment in segments}
    heads = [s for s in segments if s.path[0].src not in ends]
    if len(heads) != 1:
        raise ValueError(
            f"stream {name!r}: segments do not chain "
            f"({[(s.source, s.destination) for s in segments]})"
        )
    chain = [heads[0]]
    by_source = {s.path[0].src: s for s in segments if s is not heads[0]}
    while by_source:
        tail = chain[-1].path[-1].dst
        nxt = by_source.pop(tail, None)
        if nxt is None:
            raise ValueError(
                f"stream {name!r}: no segment continues from {tail!r}"
            )
        chain.append(nxt)
    path = tuple(link for segment in chain for link in segment.path)
    # per-segment deadlines were carved from the stream's budget and
    # sum back to it exactly (see ClusterCoordinator._segment_requests)
    return replace(
        chain[0],
        path=path,
        e2e_ns=sum(segment.e2e_ns for segment in chain),
    )
