"""Sharded multi-tenant admission over partitioned TSN networks.

The layer between the single-node admission service and the solvers:
:mod:`repro.cluster.partition` cuts the network into switch-cluster
shards, :mod:`repro.cluster.coordinator` runs one admission service per
shard (shard-local streams admit fully in parallel), and
:mod:`repro.cluster.twophase` gives cross-shard streams an atomic
prepare/commit publish over the per-shard store CAS versions.
"""

from repro.cluster.coordinator import (
    REASON_CROSS_ECT,
    REASON_NAME_IN_USE,
    REASON_REENTRANT,
    REASON_UNKNOWN_STREAM,
    REASON_UNROUTABLE,
    RUNG_TWOPHASE,
    ClusterCoordinator,
)
from repro.cluster.partition import (
    NetworkPartition,
    PartitionError,
    RouteSegment,
    Shard,
    partition_by_assignment,
    partition_topology,
)
from repro.cluster.twophase import (
    REASON_CAS_EXHAUSTED,
    STATE_ABORTED,
    STATE_COMMITTED,
    STATE_COMMITTING,
    STATE_IDLE,
    STATE_PREPARED,
    STATE_PREPARING,
    CrossShardPublish,
    Participant,
    PrepareFailure,
    PublishOutcome,
    TwoPhaseStateError,
)

__all__ = [
    "ClusterCoordinator",
    "CrossShardPublish",
    "NetworkPartition",
    "Participant",
    "PartitionError",
    "PrepareFailure",
    "PublishOutcome",
    "REASON_CAS_EXHAUSTED",
    "REASON_CROSS_ECT",
    "REASON_NAME_IN_USE",
    "REASON_REENTRANT",
    "REASON_UNKNOWN_STREAM",
    "REASON_UNROUTABLE",
    "RUNG_TWOPHASE",
    "RouteSegment",
    "STATE_ABORTED",
    "STATE_COMMITTED",
    "STATE_COMMITTING",
    "STATE_IDLE",
    "STATE_PREPARED",
    "STATE_PREPARING",
    "Shard",
    "TwoPhaseStateError",
    "partition_by_assignment",
    "partition_topology",
]
