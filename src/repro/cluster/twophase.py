"""Two-phase cross-shard publish over per-shard CAS versions.

A stream whose route crosses shard boundaries must appear in every
involved shard's schedule or in none of them.  The cluster gets that
atomicity from the :class:`~repro.service.store.ScheduleStore` CAS
primitive alone — no shard ever blocks its local admissions while a
cross-shard solve is running:

**prepare**
    Pin each involved shard's current ``(version, schedule)`` snapshot
    and solve that shard's sub-problem against the *pinned* schedule
    (nothing is published; local admissions keep flowing).

**commit**
    Take every involved shard's commit lock in a global deterministic
    order (sorted by shard name — no deadlocks), then publish each
    solved schedule with ``expected_version=`` the pinned version.  Any
    :class:`~repro.service.store.StaleVersionError` — a local admission
    landed between prepare and commit — aborts the whole publish.

**abort / rollback**
    Shards already published by this commit are rolled back by
    republishing their pinned schedule against the version this commit
    created.  The commit locks are still held, so the rollback CAS
    cannot lose a race; afterwards every shard is bit-identical to a
    state that never saw the aborted stream.

:meth:`CrossShardPublish.execute` wraps the three steps in a bounded
retry loop: a stale commit re-prepares from fresh snapshots, and after
``max_attempts`` conflicts the request is rejected with reason
``"cross_shard_cas_exhausted"`` — mirroring the single-store service's
bounded CAS rebase.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.schedule import NetworkSchedule
from repro.obs.events import NULL_EVENT_LOG, EventLog
from repro.obs.trace import NULL_TRACER, Tracer
from repro.service.metrics import MetricsRegistry
from repro.service.store import ScheduleStore, StaleVersionError

#: State machine vocabulary, in lifecycle order.
STATE_IDLE = "idle"
STATE_PREPARING = "preparing"
STATE_PREPARED = "prepared"
STATE_COMMITTING = "committing"
STATE_COMMITTED = "committed"
STATE_ABORTED = "aborted"

#: How a failed cross-shard publish reports CAS starvation.
REASON_CAS_EXHAUSTED = "cross_shard_cas_exhausted"


class TwoPhaseStateError(RuntimeError):
    """A phase was invoked out of lifecycle order."""


@dataclass
class Participant:
    """One shard's stake in a cross-shard publish.

    solve
        Called with the pinned schedule during prepare; returns the
        shard's new schedule, or raises/returns ``None`` with a reason
        via :class:`PrepareFailure`.
    lock
        The shard's commit lock — shared with whatever serializes that
        shard's local publishes (the coordinator's per-shard lock).
    """

    name: str
    store: ScheduleStore
    solve: Callable[[NetworkSchedule], NetworkSchedule]
    lock: threading.Lock


class PrepareFailure(RuntimeError):
    """A shard's sub-solve rejected its segment (deterministic verdict)."""


@dataclass
class _Plan:
    """Per-shard prepare/commit bookkeeping."""

    participant: Participant
    pinned_version: int
    pinned_schedule: NetworkSchedule
    new_schedule: Optional[NetworkSchedule] = None
    published_version: Optional[int] = None


@dataclass(frozen=True)
class PublishOutcome:
    """The final verdict of one cross-shard publish."""

    committed: bool
    reason: Optional[str] = None
    attempts: int = 0
    #: shard name -> version the commit published (empty when aborted).
    versions: Dict[str, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.versions is None:
            object.__setattr__(self, "versions", {})


class CrossShardPublish:
    """One cross-shard publish: prepare -> commit, abort on conflict.

    The instance is single-use and single-threaded (the coordinator
    runs one per cross-shard request); all concurrency control lives in
    the participants' locks and their stores' CAS.
    """

    def __init__(
        self,
        participants: Sequence[Participant],
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        parent_span=None,
        events: Optional[EventLog] = None,
    ) -> None:
        if not participants:
            raise ValueError("a cross-shard publish needs participants")
        names = [p.name for p in participants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate participants: {names}")
        # committing in sorted order is the global lock order that makes
        # concurrent cross-shard publishes deadlock-free
        self._participants = sorted(participants, key=lambda p: p.name)
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._parent_span = parent_span
        self._events = events if events is not None else NULL_EVENT_LOG
        self._state = STATE_IDLE
        self._plans: List[_Plan] = []

    # -- public surface ------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    @property
    def shards(self) -> List[str]:
        return [p.name for p in self._participants]

    def execute(self, max_attempts: int = 4) -> PublishOutcome:
        """Run prepare/commit with bounded re-prepare on CAS conflicts."""
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        for attempt in range(1, max_attempts + 1):
            if attempt > 1:
                self._reset()
            try:
                self.prepare()
            except PrepareFailure as exc:
                return PublishOutcome(
                    committed=False, reason=str(exc), attempts=attempt
                )
            if self.commit():
                return PublishOutcome(
                    committed=True,
                    attempts=attempt,
                    versions={
                        plan.participant.name: plan.published_version
                        for plan in self._plans
                    },
                )
            self._metrics.counter("cluster.twophase.retries").inc()
        self._metrics.counter("cluster.twophase.cas_exhausted").inc()
        if self._events.enabled:
            self._events.emit(
                "twophase.abort", reason=REASON_CAS_EXHAUSTED,
                attempt=max_attempts, shards=self.shards,
            )
        return PublishOutcome(
            committed=False,
            reason=REASON_CAS_EXHAUSTED,
            attempts=max_attempts,
        )

    def prepare(self) -> None:
        """Pin every shard's snapshot and solve against the pins.

        Raises :class:`PrepareFailure` when any shard's sub-solve
        rejects its segment; the publish is then aborted (nothing was
        published, so there is nothing to roll back).
        """
        if self._state != STATE_IDLE:
            raise TwoPhaseStateError(f"prepare() in state {self._state!r}")
        self._state = STATE_PREPARING
        self._metrics.counter("cluster.twophase.prepares").inc()
        with self._tracer.span(
            "cluster.prepare",
            parent=self._parent_span,
            shards=",".join(self.shards),
        ) as span:
            for participant in self._participants:
                snapshot = participant.store.snapshot()
                plan = _Plan(
                    participant=participant,
                    pinned_version=snapshot.version,
                    pinned_schedule=snapshot.schedule,
                )
                self._plans.append(plan)
                try:
                    plan.new_schedule = participant.solve(snapshot.schedule)
                except PrepareFailure as exc:
                    span.set(outcome="infeasible", shard=participant.name)
                    self._state = STATE_ABORTED
                    self._metrics.counter("cluster.twophase.aborts").inc()
                    if self._events.enabled:
                        self._events.emit(
                            "twophase.abort", reason=str(exc),
                            phase="prepare", shard=participant.name,
                            shards=self.shards,
                        )
                    raise PrepareFailure(
                        f"{participant.name}: {exc}"
                    ) from exc
                if plan.new_schedule is None:
                    span.set(outcome="infeasible", shard=participant.name)
                    self._state = STATE_ABORTED
                    self._metrics.counter("cluster.twophase.aborts").inc()
                    if self._events.enabled:
                        self._events.emit(
                            "twophase.abort",
                            reason="sub-solve returned nothing",
                            phase="prepare", shard=participant.name,
                            shards=self.shards,
                        )
                    raise PrepareFailure(
                        f"{participant.name}: sub-solve returned nothing"
                    )
            span.set(outcome="prepared")
        self._state = STATE_PREPARED

    def commit(self) -> bool:
        """CAS-publish every prepared shard; roll back on the first
        conflict.  Returns ``True`` when every shard published."""
        if self._state != STATE_PREPARED:
            raise TwoPhaseStateError(f"commit() in state {self._state!r}")
        self._state = STATE_COMMITTING
        with self._tracer.span(
            "cluster.commit",
            parent=self._parent_span,
            shards=",".join(self.shards),
        ) as span:
            held: List[Participant] = []
            published: List[_Plan] = []
            try:
                for participant in self._participants:  # sorted: no deadlock
                    participant.lock.acquire()
                    held.append(participant)
                for plan in self._plans:
                    try:
                        snapshot = plan.participant.store.publish(
                            plan.new_schedule,
                            expected_version=plan.pinned_version,
                        )
                    except StaleVersionError:
                        self._metrics.counter(
                            "cluster.twophase.commit_conflicts"
                        ).inc()
                        span.set(
                            outcome="stale", shard=plan.participant.name
                        )
                        self._rollback(published)
                        self._state = STATE_ABORTED
                        self._metrics.counter("cluster.twophase.aborts").inc()
                        if self._events.enabled:
                            self._events.emit(
                                "twophase.abort", reason="stale_version",
                                phase="commit",
                                shard=plan.participant.name,
                                shards=self.shards,
                            )
                        return False
                    plan.published_version = snapshot.version
                    published.append(plan)
            finally:
                for participant in reversed(held):
                    participant.lock.release()
            span.set(outcome="committed")
        self._state = STATE_COMMITTED
        self._metrics.counter("cluster.twophase.commits").inc()
        return True

    # -- internals -----------------------------------------------------
    def _rollback(self, published: List[_Plan]) -> None:
        """Republish each published shard's pinned schedule.

        The commit locks are still held, so the expected version is
        exactly what this commit created and the CAS cannot fail; a
        failure here would mean a publish bypassed the shard lock and
        is surfaced loudly rather than papered over.
        """
        with self._tracer.span(
            "cluster.rollback",
            parent=self._parent_span,
            shards=",".join(p.participant.name for p in published),
        ):
            for plan in reversed(published):
                plan.participant.store.publish(
                    plan.pinned_schedule,
                    expected_version=plan.published_version,
                )
                if self._events.enabled:
                    self._events.emit(
                        "twophase.rollback",
                        shard=plan.participant.name,
                        rolled_back_version=plan.published_version,
                        restored_version=plan.pinned_version,
                    )
                plan.published_version = None
                self._metrics.counter("cluster.twophase.rollbacks").inc()

    def _reset(self) -> None:
        """Back to idle for the next execute() attempt."""
        if self._state not in (STATE_ABORTED, STATE_IDLE):
            raise TwoPhaseStateError(f"cannot reset from {self._state!r}")
        self._state = STATE_IDLE
        self._plans = []
