"""Topology partitioning for sharded admission.

E-TSN's admission problem decomposes along the network: prudent
reservation (paper Alg. 1) is per-link, and the SMT formulation only
couples frames that traverse a common egress port.  This module cuts
the switch graph into **shards** — connected switch clusters plus their
attached devices — so each shard can run its own
:class:`~repro.service.admission.AdmissionService` over a private
sub-topology, and only streams whose routes cross a shard boundary need
any cross-shard coordination.

The partitioner is a deterministic multi-seed region growing over the
switch graph: seeds are spread greedily by hop distance (a farthest-
point heuristic), then every switch joins its nearest seed.  Nearest-
seed regions are connected, and on the line/ring/tree shapes industrial
TSN deploys on, the cut lands on the few inter-region trunk links — the
min-cut the TAS survey identifies as the natural decomposition seam.

Each shard's sub-topology contains its own switches and devices plus
one-hop **border ghosts**: foreign nodes adjacent across a boundary
link.  Ghosts are dead ends (only the boundary link reaches them), so
shard-local routing can never sneak through a neighbouring shard, but a
cross-shard route segment can legally terminate on one.  The directed
half of a boundary link is owned by the shard of its *source* node —
the egress gate lives there — so every directed link in the network has
exactly one scheduling owner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.topology import Link, Topology, TopologyError


class PartitionError(ValueError):
    """Raised for impossible shard counts or malformed assignments."""


@dataclass(frozen=True)
class Shard:
    """One admission domain: a switch cluster and its devices.

    topology
        Private sub-topology: the shard's own nodes, every link between
        them, and the boundary links with their foreign endpoints added
        as dead-end border ghosts.
    border_nodes
        The ghost nodes — present in ``topology`` but owned elsewhere.
    """

    name: str
    switches: Tuple[str, ...]
    devices: Tuple[str, ...]
    border_nodes: Tuple[str, ...]
    topology: Topology

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Owned nodes only (ghosts excluded)."""
        return self.switches + self.devices


@dataclass(frozen=True)
class RouteSegment:
    """A maximal run of one route's links owned by a single shard."""

    shard: str
    links: Tuple[Link, ...]

    @property
    def source(self) -> str:
        return self.links[0].src

    @property
    def destination(self) -> str:
        return self.links[-1].dst


class NetworkPartition:
    """The shard decomposition of one network.

    Owns the global topology, the shard list, the node -> shard owner
    map, and the boundary-link set; answers the routing questions the
    coordinator asks (which shard owns a node or link, how a route
    splits into per-shard segments).
    """

    def __init__(self, topology: Topology, shards: Sequence[Shard]) -> None:
        self._topology = topology
        self._shards: Tuple[Shard, ...] = tuple(shards)
        if not self._shards:
            raise PartitionError("a partition needs at least one shard")
        self._owner: Dict[str, str] = {}
        for shard in self._shards:
            for node in shard.nodes:
                if node in self._owner:
                    raise PartitionError(
                        f"node {node!r} assigned to both "
                        f"{self._owner[node]!r} and {shard.name!r}"
                    )
                self._owner[node] = shard.name
        unassigned = [
            n.name for n in topology.nodes if n.name not in self._owner
        ]
        if unassigned:
            raise PartitionError(f"nodes without a shard: {unassigned}")
        self._boundary: Tuple[Tuple[str, str], ...] = tuple(sorted(
            link.key for link in topology.links
            if self._owner[link.src] != self._owner[link.dst]
        ))

    # -- queries -------------------------------------------------------
    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def shards(self) -> Tuple[Shard, ...]:
        return self._shards

    @property
    def boundary_links(self) -> Tuple[Tuple[str, str], ...]:
        """Directed links whose endpoints live in different shards."""
        return self._boundary

    def shard(self, name: str) -> Shard:
        for shard in self._shards:
            if shard.name == name:
                return shard
        raise PartitionError(f"no shard named {name!r}")

    def owner_of(self, node: str) -> str:
        try:
            return self._owner[node]
        except KeyError:
            raise PartitionError(f"unknown node {node!r}") from None

    def owner_of_link(self, key: Tuple[str, str]) -> str:
        """The shard scheduling a directed link: its source's owner."""
        return self.owner_of(key[0])

    def split_route(self, path: Sequence[Link]) -> List[RouteSegment]:
        """Cut a link path into maximal single-owner segments, in order.

        Each directed link goes to the shard owning its source (where
        the egress gate sits), so a route crossing from shard A to
        shard B is cut *after* the boundary link: A's segment ends on
        B's border switch (a ghost in A's sub-topology) and B's segment
        starts there.
        """
        if not path:
            raise PartitionError("cannot split an empty route")
        segments: List[RouteSegment] = []
        current: List[Link] = []
        owner: Optional[str] = None
        for link in path:
            shard = self.owner_of_link(link.key)
            if owner is not None and shard != owner:
                segments.append(RouteSegment(owner, tuple(current)))
                current = []
            owner = shard
            current.append(link)
        segments.append(RouteSegment(owner, tuple(current)))  # type: ignore[arg-type]
        return segments

    def shards_for_route(self, path: Sequence[Link]) -> List[str]:
        """Shards a route touches, in traversal order, deduplicated."""
        seen: List[str] = []
        for segment in self.split_route(path):
            if segment.shard not in seen:
                seen.append(segment.shard)
        return seen

    def describe(self) -> str:
        """One-line-per-shard text rendering, for logs and the CLI."""
        lines = [
            f"Partition: {len(self._shards)} shards, "
            f"{len(self._boundary)} boundary links"
        ]
        for shard in self._shards:
            lines.append(
                f"  {shard.name}: switches {', '.join(shard.switches)}; "
                f"{len(shard.devices)} devices; "
                f"borders {', '.join(shard.border_nodes) or '-'}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# partitioners
# ----------------------------------------------------------------------
def partition_topology(
    topology: Topology,
    shard_count: int,
    seeds: Optional[Sequence[str]] = None,
) -> NetworkPartition:
    """Cut ``topology`` into ``shard_count`` connected switch clusters.

    Seeds default to a farthest-point spread over the switch graph
    (deterministic: ties break on insertion order); pass explicit seed
    switch names to pin the regions.  Devices follow the shard of their
    first attached switch.
    """
    topology.validate()
    switches = [n.name for n in topology.switches]
    if shard_count < 1:
        raise PartitionError(f"shard count must be >= 1, got {shard_count}")
    if shard_count > len(switches):
        raise PartitionError(
            f"cannot cut {len(switches)} switches into {shard_count} shards"
        )
    if seeds is None:
        seeds = _spread_seeds(topology, switches, shard_count)
    else:
        seeds = list(seeds)
        if len(seeds) != shard_count:
            raise PartitionError(
                f"need {shard_count} seeds, got {len(seeds)}"
            )
        for seed in seeds:
            if seed not in switches:
                raise PartitionError(f"seed {seed!r} is not a switch")
    assignment = _nearest_seed(topology, switches, seeds)
    return partition_by_assignment(topology, assignment)


def partition_by_assignment(
    topology: Topology, assignment: Dict[str, int]
) -> NetworkPartition:
    """Build a partition from an explicit ``switch -> shard index`` map.

    Devices follow their first attached switch; shard names are
    ``shard<i>`` for each index present in the assignment.
    """
    switches = {n.name for n in topology.switches}
    if set(assignment) != switches:
        missing = sorted(switches - set(assignment))
        extra = sorted(set(assignment) - switches)
        raise PartitionError(
            f"assignment must cover every switch exactly "
            f"(missing {missing}, not switches {extra})"
        )
    indices = sorted(set(assignment.values()))
    members: Dict[int, List[str]] = {index: [] for index in indices}
    for switch in (n.name for n in topology.switches):  # insertion order
        members[assignment[switch]].append(switch)
    device_owner: Dict[str, int] = {}
    for device in topology.devices:
        attached = [
            nbr for nbr in topology.neighbors(device.name)
            if topology.node(nbr).is_switch
        ]
        if not attached:
            raise PartitionError(
                f"device {device.name!r} has no attached switch"
            )
        device_owner[device.name] = assignment[attached[0]]
    shards = []
    for index in indices:
        owned = set(members[index])
        owned.update(d for d, i in device_owner.items() if i == index)
        shards.append(_build_shard(topology, f"shard{index}", owned))
    return NetworkPartition(topology, shards)


def _spread_seeds(
    topology: Topology, switches: List[str], count: int
) -> List[str]:
    """Farthest-point seed spread over the switch graph."""
    seeds = [switches[0]]
    while len(seeds) < count:
        distance = _multi_source_hops(topology, switches, seeds)
        # the switch farthest from every existing seed; unreachable
        # switches (disconnected switch graph) are the farthest of all
        farthest = max(
            switches,
            key=lambda s: (distance.get(s, len(switches) + 1), -switches.index(s)),
        )
        if farthest in seeds:
            raise PartitionError(
                f"switch graph too small or degenerate for {count} seeds"
            )
        seeds.append(farthest)
    return seeds


def _multi_source_hops(
    topology: Topology, switches: List[str], sources: Sequence[str]
) -> Dict[str, int]:
    """Hop distance to the nearest source, over switch-switch links."""
    switch_set = set(switches)
    distance = {seed: 0 for seed in sources}
    frontier = list(sources)
    hops = 0
    while frontier:
        hops += 1
        next_frontier: List[str] = []
        for here in frontier:
            for nbr in topology.neighbors(here):
                if nbr in switch_set and nbr not in distance:
                    distance[nbr] = hops
                    next_frontier.append(nbr)
        frontier = next_frontier
    return distance


def _nearest_seed(
    topology: Topology, switches: List[str], seeds: Sequence[str]
) -> Dict[str, int]:
    """Assign each switch to its nearest seed (ties: lower shard index).

    Runs one BFS per seed in index order over a shared ``claimed`` map,
    expanding all seeds in lockstep so regions stay connected.
    """
    claimed: Dict[str, int] = {seed: index for index, seed in enumerate(seeds)}
    switch_set = set(switches)
    frontiers: List[List[str]] = [[seed] for seed in seeds]
    while any(frontiers):
        for index, frontier in enumerate(frontiers):
            next_frontier: List[str] = []
            for here in frontier:
                for nbr in topology.neighbors(here):
                    if nbr in switch_set and nbr not in claimed:
                        claimed[nbr] = index
                        next_frontier.append(nbr)
            frontiers[index] = next_frontier
    unreached = [s for s in switches if s not in claimed]
    for switch in unreached:  # disconnected switch graph: join shard 0
        claimed[switch] = 0
    return claimed


def _build_shard(topology: Topology, name: str, owned: set) -> Shard:
    """Sub-topology = owned nodes + intra links + boundary ghosts."""
    sub = Topology()
    switches: List[str] = []
    devices: List[str] = []
    for node in topology.nodes:  # global insertion order, deterministic
        if node.name not in owned:
            continue
        if node.is_switch:
            sub.add_switch(node.name)
            switches.append(node.name)
        else:
            sub.add_device(node.name)
            devices.append(node.name)
    ghosts: List[str] = []
    seen_pairs: set = set()
    for link in topology.links:
        pair = frozenset(link.key)
        if pair in seen_pairs:
            continue
        inside = [end for end in link.key if end in owned]
        if not inside:
            continue
        seen_pairs.add(pair)
        for end in link.key:
            if end not in owned and end not in ghosts:
                # foreign endpoint of a boundary link: a dead-end ghost
                ghost = topology.node(end)
                if ghost.is_switch:
                    sub.add_switch(end)
                else:
                    sub.add_device(end)
                ghosts.append(end)
        sub.add_link(
            link.src, link.dst,
            bandwidth_bps=link.bandwidth_bps,
            propagation_ns=link.propagation_ns,
            time_unit_ns=link.time_unit_ns,
        )
    try:
        sub.validate()
    except TopologyError as exc:
        raise PartitionError(f"shard {name!r} is not viable: {exc}") from exc
    return Shard(
        name=name,
        switches=tuple(switches),
        devices=tuple(devices),
        border_nodes=tuple(ghosts),
        topology=sub,
    )
