"""Integer time and rate arithmetic for the whole library.

Everything in this code base keeps time as an ``int`` number of
*nanoseconds*.  Floating point never touches a timestamp: the simulator
claims (like the paper's FPGA toolkit) 10 ns measurement accuracy, and
integer math is the only way to make discrete-event execution and the SMT
scheduler agree bit-for-bit.

The helpers here exist so that call sites read in natural units::

    period = milliseconds(10)
    slot   = transmission_time_ns(frame_bytes=1522, bandwidth_bps=MBPS_100)
"""

from __future__ import annotations

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000

#: Common industrial Ethernet link speeds, in bits per second.
MBPS_10 = 10_000_000
MBPS_100 = 100_000_000
GBPS_1 = 1_000_000_000

#: Ethernet framing overhead added to the payload of every frame, in bytes:
#: 14 (header) + 4 (FCS) + 8 (preamble + SFD) + 12 (inter-frame gap).
ETHERNET_OVERHEAD_BYTES = 14 + 4 + 8 + 12

#: Maximum transmission unit: the largest Ethernet *payload*, in bytes.
ETHERNET_MTU_BYTES = 1500

#: Smallest legal Ethernet payload.
ETHERNET_MIN_PAYLOAD_BYTES = 46


def nanoseconds(value: int) -> int:
    """Identity, for symmetry with the other constructors."""
    return int(value)


def microseconds(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * NS_PER_US)


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * NS_PER_MS)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(value * NS_PER_S)


def ns_to_us(value_ns: int) -> float:
    """Express a nanosecond duration in microseconds (for reporting only)."""
    return value_ns / NS_PER_US


def ns_to_ms(value_ns: int) -> float:
    """Express a nanosecond duration in milliseconds (for reporting only)."""
    return value_ns / NS_PER_MS


def transmission_time_ns(frame_bytes: int, bandwidth_bps: int) -> int:
    """Time to clock ``frame_bytes`` onto a link of ``bandwidth_bps``.

    The result is rounded *up*: a schedule that under-estimates wire time
    would produce gate windows that truncate frames.
    """
    if frame_bytes <= 0:
        raise ValueError(f"frame_bytes must be positive, got {frame_bytes}")
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth_bps must be positive, got {bandwidth_bps}")
    bits = frame_bytes * 8
    return -(-bits * NS_PER_S // bandwidth_bps)  # ceiling division


def wire_bytes(payload_bytes: int) -> int:
    """Total on-wire size (including all Ethernet overhead) of one frame.

    Payloads shorter than the Ethernet minimum are padded, as a real MAC
    would do.
    """
    if payload_bytes <= 0:
        raise ValueError(f"payload_bytes must be positive, got {payload_bytes}")
    if payload_bytes > ETHERNET_MTU_BYTES:
        raise ValueError(
            f"payload of {payload_bytes} B exceeds the Ethernet MTU "
            f"({ETHERNET_MTU_BYTES} B); segment it into frames first"
        )
    return max(payload_bytes, ETHERNET_MIN_PAYLOAD_BYTES) + ETHERNET_OVERHEAD_BYTES


def frames_for_payload(message_bytes: int) -> list:
    """Split a message into MTU-sized frame payloads.

    The paper's ECT messages range from 1 to 5 MTUs (Sec. VI-C); a message
    longer than one MTU is carried by several back-to-back frames.
    """
    if message_bytes <= 0:
        raise ValueError(f"message_bytes must be positive, got {message_bytes}")
    sizes = []
    remaining = message_bytes
    while remaining > 0:
        take = min(remaining, ETHERNET_MTU_BYTES)
        sizes.append(take)
        remaining -= take
    return sizes


def ceil_to_multiple(value: int, unit: int) -> int:
    """Round ``value`` up to the nearest multiple of ``unit``."""
    if unit <= 0:
        raise ValueError(f"unit must be positive, got {unit}")
    return -(-value // unit) * unit


def is_multiple(value: int, unit: int) -> bool:
    """True when ``value`` is an exact multiple of ``unit``."""
    if unit <= 0:
        raise ValueError(f"unit must be positive, got {unit}")
    return value % unit == 0


def lcm(a: int, b: int) -> int:
    """Least common multiple (hyperperiod of two periods)."""
    import math

    if a <= 0 or b <= 0:
        raise ValueError(f"lcm arguments must be positive, got {a}, {b}")
    return a // math.gcd(a, b) * b


def hyperperiod(periods) -> int:
    """Least common multiple of an iterable of periods."""
    result = 1
    seen_any = False
    for p in periods:
        seen_any = True
        result = lcm(result, p)
    if not seen_any:
        raise ValueError("hyperperiod() of an empty collection")
    return result


def format_ns(value_ns: int) -> str:
    """Human-readable rendering of a nanosecond duration."""
    if value_ns >= NS_PER_S:
        return f"{value_ns / NS_PER_S:.3f}s"
    if value_ns >= NS_PER_MS:
        return f"{value_ns / NS_PER_MS:.3f}ms"
    if value_ns >= NS_PER_US:
        return f"{value_ns / NS_PER_US:.3f}us"
    return f"{value_ns}ns"
