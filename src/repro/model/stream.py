"""Traffic model: TCT streams, ECT streams, and probabilistic streams.

Paper Sec. IV-A characterizes a schedulable stream by eight attributes::

    (s.path, s.e2e, s.p, s.l, s.T, s.type, s.share, s.ot)

Two user-facing classes produce such streams:

* :class:`TctStream` — a time-triggered critical stream; schedulable as-is
  (``type = Det``).
* :class:`EctStream` — an event-triggered critical stream.  It is *not*
  directly schedulable; :func:`repro.core.probabilistic.expand_ect` derives
  ``N`` probabilistic streams (``type = Prob``) from it.

Priorities (paper Eq. 6): one PCP value is reserved for ECT (``EP``);
the remainder split into a band for TCT that shares its slots and a band
for TCT that does not.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.model.topology import Link, Topology
from repro.model.units import frames_for_payload, wire_bytes


class StreamError(ValueError):
    """Raised for invalid stream specifications."""


class StreamType:
    """``s.type`` values from the paper."""

    DET = "Det"  #: deterministic / time-triggered
    PROB = "Prob"  #: probabilistic possibility of an ECT stream


class Priorities:
    """The priority partition of paper Eq. 6 over the 8 PCP values.

    ======  =====  =========================================
    name    value  meaning
    ======  =====  =========================================
    EP        7    event-triggered critical traffic
    SH        4-6  TCT that shares its time-slots with ECT
    NSH       1-3  TCT that does not share its time-slots
    BE        0    best-effort background traffic
    ======  =====  =========================================
    """

    EP = 7
    SH_PH = 6
    SH_PL = 4
    NSH_PH = 3
    NSH_PL = 1
    BE = 0

    @classmethod
    def is_shared_tct(cls, p: int) -> bool:
        return cls.SH_PL <= p <= cls.SH_PH

    @classmethod
    def is_nonshared_tct(cls, p: int) -> bool:
        return cls.NSH_PL <= p <= cls.NSH_PH

    @classmethod
    def check(cls, stream: "Stream") -> None:
        """Assert Eq. 6 for one stream; raises :class:`StreamError`."""
        if stream.type == StreamType.PROB:
            if stream.priority != cls.EP:
                raise StreamError(
                    f"{stream.name}: probabilistic streams must use EP="
                    f"{cls.EP}, got {stream.priority}"
                )
        elif stream.share:
            if not cls.is_shared_tct(stream.priority):
                raise StreamError(
                    f"{stream.name}: shared TCT priority must be in "
                    f"[{cls.SH_PL},{cls.SH_PH}], got {stream.priority}"
                )
        else:
            if not cls.is_nonshared_tct(stream.priority):
                raise StreamError(
                    f"{stream.name}: non-shared TCT priority must be in "
                    f"[{cls.NSH_PL},{cls.NSH_PH}], got {stream.priority}"
                )


@dataclass(frozen=True)
class Stream:
    """A schedulable stream — the paper's 8-attribute tuple.

    Attributes mirror Sec. IV-A:

    name
        Unique identifier (not in the paper's tuple, but every solver and
        simulator object keys off it).
    path
        Ordered list of directed links from source to destination.
    e2e_ns
        ``s.e2e`` — maximum allowed end-to-end latency.
    priority
        ``s.p`` — PCP value, constrained by :class:`Priorities`.
    length_bytes
        ``s.l`` — message payload length in bytes (may exceed one MTU;
        it is then carried in several frames per period).
    period_ns
        ``s.T`` — period for TCT; minimum inter-event time for
        probabilistic streams.
    type
        ``s.type`` — :data:`StreamType.DET` or :data:`StreamType.PROB`.
    share
        ``s.share`` — TCT only: whether ECT may use this stream's slots.
    occurrence_ns
        ``s.ot`` — probabilistic streams only: offset within the period at
        which this possibility starts transmitting at the source.
    parent
        Probabilistic streams only: name of the ECT stream this
        possibility was derived from.  Frames of two streams with the same
        parent may overlap (paper Sec. III-B).
    """

    name: str
    path: Tuple[Link, ...]
    e2e_ns: int
    priority: int
    length_bytes: int
    period_ns: int
    type: str = StreamType.DET
    share: bool = False
    occurrence_ns: int = 0
    parent: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise StreamError("stream name must be non-empty")
        if not self.path:
            raise StreamError(f"{self.name}: empty path")
        for a, b in zip(self.path, self.path[1:]):
            if a.dst != b.src:
                raise StreamError(
                    f"{self.name}: path is not contiguous at {a} -> {b}"
                )
        if self.e2e_ns <= 0:
            raise StreamError(f"{self.name}: e2e latency must be positive")
        if self.length_bytes <= 0:
            raise StreamError(f"{self.name}: length must be positive")
        if self.period_ns <= 0:
            raise StreamError(f"{self.name}: period must be positive")
        if not 0 <= self.priority <= 7:
            raise StreamError(f"{self.name}: priority must be a PCP in 0..7")
        if self.type not in (StreamType.DET, StreamType.PROB):
            raise StreamError(f"{self.name}: unknown stream type {self.type!r}")
        if self.type == StreamType.DET and self.occurrence_ns != 0:
            raise StreamError(f"{self.name}: TCT streams have no occurrence time")
        if self.type == StreamType.PROB:
            if self.parent is None:
                raise StreamError(f"{self.name}: probabilistic stream needs a parent")
            if not 0 <= self.occurrence_ns < self.period_ns:
                raise StreamError(
                    f"{self.name}: occurrence time {self.occurrence_ns} outside "
                    f"[0, {self.period_ns})"
                )
        if self.type == StreamType.PROB and self.share:
            raise StreamError(f"{self.name}: share is only valid for TCT streams")

    # ------------------------------------------------------------------
    @property
    def source(self) -> str:
        return self.path[0].src

    @property
    def destination(self) -> str:
        return self.path[-1].dst

    @property
    def is_probabilistic(self) -> bool:
        return self.type == StreamType.PROB

    def frame_payloads(self) -> List[int]:
        """Per-frame payload sizes carrying one message of this stream."""
        return frames_for_payload(self.length_bytes)

    def frames_per_period(self) -> int:
        """Number of frames sent in one period (before prudent reservation)."""
        return len(self.frame_payloads())

    def wire_bytes_per_frame(self) -> List[int]:
        """Total on-wire sizes of the frames of one message."""
        return [wire_bytes(p) for p in self.frame_payloads()]

    def transmission_ns(self, link: Link) -> int:
        """Wire time of the whole message on ``link`` (all frames)."""
        return sum(link.transmission_ns(w) for w in self.wire_bytes_per_frame())

    def with_share(self, share: bool) -> "Stream":
        """Copy of this stream with a different ``share`` flag."""
        return replace(self, share=share)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Stream({self.name}, {self.source}->{self.destination}, "
            f"{self.type}, T={self.period_ns}, l={self.length_bytes})"
        )


@dataclass(frozen=True)
class TctRequirement:
    """User-level requirement for a time-triggered critical stream.

    This is what a CUC collects from an end station (paper Fig. 5) before
    routing; :meth:`resolve` turns it into a schedulable :class:`Stream`
    by routing it over a topology.
    """

    name: str
    source: str
    destination: str
    period_ns: int
    length_bytes: int
    e2e_ns: Optional[int] = None
    priority: int = Priorities.NSH_PH
    share: bool = False

    def resolve(self, topology: Topology) -> Stream:
        """Route over ``topology`` and produce the schedulable stream.

        ``e2e`` defaults to the period, the common assumption for
        industrial TT traffic (implicit deadline).
        """
        path = tuple(topology.shortest_path(self.source, self.destination))
        e2e = self.e2e_ns if self.e2e_ns is not None else self.period_ns
        stream = Stream(
            name=self.name,
            path=path,
            e2e_ns=e2e,
            priority=self.priority,
            length_bytes=self.length_bytes,
            period_ns=self.period_ns,
            type=StreamType.DET,
            share=self.share,
        )
        Priorities.check(stream)
        return stream


@dataclass(frozen=True)
class EctStream:
    """User-level specification of an event-triggered critical stream.

    min_interevent_ns
        The guaranteed minimum time between two consecutive events — the
        paper calls this "a common property of ECT" and uses it as the
        probabilistic streams' ``T``.
    possibilities
        ``N``, the number of probabilistic streams modeling this ECT
        stream (user parameter, paper Sec. III-B).
    via
        Optional explicit route as the full node sequence (source,
        switches..., destination); defaults to the hop-count shortest
        path.  Used by redundancy planning (:mod:`repro.core.frer`) to
        pin members to disjoint paths.
    """

    name: str
    source: str
    destination: str
    min_interevent_ns: int
    length_bytes: int
    e2e_ns: Optional[int] = None
    possibilities: int = 8
    via: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise StreamError("ECT stream name must be non-empty")
        if self.min_interevent_ns <= 0:
            raise StreamError(f"{self.name}: min inter-event time must be positive")
        if self.length_bytes <= 0:
            raise StreamError(f"{self.name}: length must be positive")
        if self.possibilities < 1:
            raise StreamError(f"{self.name}: need at least one possibility")
        if self.e2e_ns is not None and self.e2e_ns <= 0:
            raise StreamError(f"{self.name}: e2e latency must be positive")
        if self.via is not None:
            if len(self.via) < 2:
                raise StreamError(f"{self.name}: explicit route needs >= 2 nodes")
            if self.via[0] != self.source or self.via[-1] != self.destination:
                raise StreamError(
                    f"{self.name}: explicit route must run source -> destination"
                )

    @property
    def effective_e2e_ns(self) -> int:
        """Deadline; defaults to the minimum inter-event time."""
        return self.e2e_ns if self.e2e_ns is not None else self.min_interevent_ns

    def route(self, topology: Topology) -> Tuple[Link, ...]:
        if self.via is not None:
            return tuple(
                topology.link(a, b) for a, b in zip(self.via, self.via[1:])
            )
        return tuple(topology.shortest_path(self.source, self.destination))


def streams_by_link(streams: Sequence[Stream]) -> dict:
    """Index streams by the directed links they traverse."""
    index: dict = {}
    for stream in streams:
        for link in stream.path:
            index.setdefault(link.key, []).append(stream)
    return index


def may_overlap(a: Stream, b: Stream) -> bool:
    """Paper Sec. IV-B2: when may two frames share a time-slot on a link?

    1. Both are probabilistic possibilities of the *same* ECT stream —
       only one possibility can materialize at run time.
    2. One is probabilistic and the other is a TCT stream that shares its
       slots — the TCT stream's reservation was already expanded by
       prudent reservation (Alg. 1) to absorb the encroachment.
    """
    if a.is_probabilistic and b.is_probabilistic:
        return a.parent == b.parent
    if a.is_probabilistic and not b.is_probabilistic:
        return b.share
    if b.is_probabilistic and not a.is_probabilistic:
        return a.share
    return False
