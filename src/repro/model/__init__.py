"""Network, traffic, and frame models shared by scheduler and simulator."""

from repro.model.frame import FrameSlot, FrameVar, build_frame_vars
from repro.model.routing import disjoint_paths, k_shortest_paths, least_loaded_path
from repro.model.stream import (
    EctStream,
    Priorities,
    Stream,
    StreamError,
    StreamType,
    TctRequirement,
    may_overlap,
    streams_by_link,
)
from repro.model.topology import Link, Node, NodeKind, Topology, TopologyError, line_topology

__all__ = [
    "EctStream",
    "FrameSlot",
    "FrameVar",
    "Link",
    "Node",
    "NodeKind",
    "Priorities",
    "Stream",
    "StreamError",
    "StreamType",
    "TctRequirement",
    "Topology",
    "TopologyError",
    "build_frame_vars",
    "disjoint_paths",
    "k_shortest_paths",
    "least_loaded_path",
    "line_topology",
    "may_overlap",
    "streams_by_link",
]
