"""Routing beyond single shortest paths.

The base :meth:`Topology.shortest_path` suits the paper's evaluation
(every stream takes its hop-count-shortest route).  Two additions widen
the library's scope:

* :func:`k_shortest_paths` — Yen's algorithm over hop counts, for
  load-aware path choice and route diversity;
* :func:`disjoint_paths` — link-disjoint route pairs, the substrate for
  802.1CB-style seamless redundancy (:mod:`repro.core.frer`).

Paths are returned as link lists, directly usable as ``Stream.path``.
Devices never forward (only the endpoints may be devices), matching the
base router's semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.model.topology import Link, Topology, TopologyError


def _bfs_path(
    topology: Topology,
    src: str,
    dst: str,
    banned_links: Set[Tuple[str, str]],
    banned_nodes: Set[str],
) -> Optional[List[Link]]:
    """Hop-count shortest path avoiding banned links/nodes."""
    if src in banned_nodes or dst in banned_nodes:
        return None
    parents: Dict[str, Optional[str]] = {src: None}
    frontier = [src]
    while frontier:
        next_frontier: List[str] = []
        for here in frontier:
            if here != src and not topology.node(here).is_switch:
                continue
            for nbr in topology.neighbors(here):
                if nbr in parents or nbr in banned_nodes:
                    continue
                if (here, nbr) in banned_links:
                    continue
                parents[nbr] = here
                if nbr == dst:
                    hops = [dst]
                    while parents[hops[-1]] is not None:
                        hops.append(parents[hops[-1]])  # type: ignore[index]
                    hops.reverse()
                    return [
                        topology.link(a, b) for a, b in zip(hops, hops[1:])
                    ]
                next_frontier.append(nbr)
        frontier = next_frontier
    return None


def k_shortest_paths(
    topology: Topology, src: str, dst: str, k: int
) -> List[List[Link]]:
    """Up to ``k`` loop-free paths in non-decreasing hop count (Yen)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    first = _bfs_path(topology, src, dst, set(), set())
    if first is None:
        raise TopologyError(f"no route from {src!r} to {dst!r}")
    paths: List[List[Link]] = [first]
    candidates: List[Tuple[int, Tuple[str, ...], List[Link]]] = []
    seen = {tuple(l.key for l in first)}
    while len(paths) < k:
        previous = paths[-1]
        for spur_index in range(len(previous)):
            spur_node = previous[spur_index].src
            root = previous[:spur_index]
            banned_links: Set[Tuple[str, str]] = set()
            for path in paths:
                if [l.key for l in path[:spur_index]] == [l.key for l in root]:
                    if spur_index < len(path):
                        banned_links.add(path[spur_index].key)
            banned_nodes = {l.src for l in root}
            spur = _bfs_path(topology, spur_node, dst, banned_links, banned_nodes)
            if spur is None:
                continue
            candidate = root + spur
            key = tuple(l.key for l in candidate)
            if key in seen:
                continue
            seen.add(key)
            candidates.append((len(candidate), key, candidate))
        if not candidates:
            break
        candidates.sort(key=lambda item: (item[0], item[1]))
        _, _, best = candidates.pop(0)
        paths.append(best)
    return paths


def disjoint_paths(
    topology: Topology, src: str, dst: str, count: int = 2
) -> List[List[Link]]:
    """Up to ``count`` mutually link-disjoint paths (greedy peeling).

    Greedy shortest-first peeling is not a full Suurballe, but on the
    mesh/ring topologies redundancy is deployed on, it finds the disjoint
    pair whenever node degrees allow one.  Raises
    :class:`TopologyError` when not even one path exists.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    used: Set[Tuple[str, str]] = set()
    result: List[List[Link]] = []
    for _ in range(count):
        path = _bfs_path(topology, src, dst, used, set())
        if path is None:
            break
        result.append(path)
        for link in path:
            used.add(link.key)
            used.add((link.dst, link.src))  # both directions of the duplex pair
    if not result:
        raise TopologyError(f"no route from {src!r} to {dst!r}")
    return result


def least_loaded_path(
    paths: Sequence[List[Link]], link_loads: Dict[Tuple[str, str], float]
) -> List[Link]:
    """Among candidate paths, the one whose hottest link is coolest."""
    if not paths:
        raise ValueError("no candidate paths")
    return min(
        paths,
        key=lambda path: (
            max((link_loads.get(l.key, 0.0) for l in path), default=0.0),
            len(path),
        ),
    )
