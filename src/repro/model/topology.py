"""Network topology model: nodes, full-duplex links, and routing.

Matches the abstraction of paper Sec. IV-A: the network is a directed graph
``G(V, E)`` whose vertices are switches and end devices and whose edges are
the directed halves of full-duplex links.  Every edge carries the triple
``(b, d, tu)`` — bandwidth, propagation delay, and the smallest time unit
at which the egress port can be operated (the gate granularity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.model.units import MBPS_100, transmission_time_ns


class TopologyError(ValueError):
    """Raised for malformed topologies or impossible routes."""


class NodeKind:
    """Vertex roles.  Switches forward; devices terminate streams."""

    SWITCH = "switch"
    DEVICE = "device"


@dataclass(frozen=True)
class Node:
    """A network vertex: a TSN switch or an end device."""

    name: str
    kind: str = NodeKind.DEVICE

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("node name must be non-empty")
        if self.kind not in (NodeKind.SWITCH, NodeKind.DEVICE):
            raise TopologyError(f"unknown node kind: {self.kind!r}")

    @property
    def is_switch(self) -> bool:
        return self.kind == NodeKind.SWITCH

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Link:
    """One *directed* edge ``<src, dst>`` with the paper's three attributes.

    bandwidth_bps
        ``b`` — link speed in bits per second.
    propagation_ns
        ``d`` — signal propagation delay in nanoseconds.
    time_unit_ns
        ``tu`` — gate/schedule granularity of the egress port in
        nanoseconds.  All slot boundaries on this link land on multiples
        of ``tu``.
    """

    src: str
    dst: str
    bandwidth_bps: int = MBPS_100
    propagation_ns: int = 0
    time_unit_ns: int = 1

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise TopologyError(f"self-loop on node {self.src!r}")
        if self.bandwidth_bps <= 0:
            raise TopologyError(f"bandwidth must be positive on {self.key}")
        if self.propagation_ns < 0:
            raise TopologyError(f"negative propagation delay on {self.key}")
        if self.time_unit_ns <= 0:
            raise TopologyError(f"time unit must be positive on {self.key}")

    @property
    def key(self) -> Tuple[str, str]:
        """The ``<v_a, v_b>`` pair used everywhere as the link identity."""
        return (self.src, self.dst)

    def transmission_ns(self, frame_bytes: int) -> int:
        """Wire time of a frame of ``frame_bytes`` total bytes on this link."""
        return transmission_time_ns(frame_bytes, self.bandwidth_bps)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.src},{self.dst}>"


class Topology:
    """Directed multigraph-free network graph with full-duplex links.

    ``add_link`` inserts *both* directions, mirroring the paper: "If two
    network nodes v_a and v_b are connected, two edges ... will be added".
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_switch(self, name: str) -> Node:
        """Add a switch vertex."""
        return self._add_node(Node(name, NodeKind.SWITCH))

    def add_device(self, name: str) -> Node:
        """Add an end-device vertex."""
        return self._add_node(Node(name, NodeKind.DEVICE))

    def _add_node(self, node: Node) -> Node:
        existing = self._nodes.get(node.name)
        if existing is not None:
            if existing.kind != node.kind:
                raise TopologyError(
                    f"node {node.name!r} already exists with kind {existing.kind!r}"
                )
            return existing
        self._nodes[node.name] = node
        self._adjacency[node.name] = []
        return node

    def add_link(
        self,
        a: str,
        b: str,
        bandwidth_bps: int = MBPS_100,
        propagation_ns: int = 0,
        time_unit_ns: int = 1,
    ) -> Tuple[Link, Link]:
        """Connect ``a`` and ``b`` with a full-duplex link (two edges)."""
        for name in (a, b):
            if name not in self._nodes:
                raise TopologyError(f"unknown node {name!r}; add it first")
        if (a, b) in self._links:
            raise TopologyError(f"link {a!r}-{b!r} already exists")
        forward = Link(a, b, bandwidth_bps, propagation_ns, time_unit_ns)
        backward = Link(b, a, bandwidth_bps, propagation_ns, time_unit_ns)
        self._links[forward.key] = forward
        self._links[backward.key] = backward
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        return forward, backward

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def switches(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.is_switch]

    @property
    def devices(self) -> List[Node]:
        return [n for n in self._nodes.values() if not n.is_switch]

    @property
    def links(self) -> List[Link]:
        return list(self._links.values())

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise TopologyError(f"no link <{src},{dst}>") from None

    def has_link(self, src: str, dst: str) -> bool:
        return (src, dst) in self._links

    def neighbors(self, name: str) -> List[str]:
        if name not in self._adjacency:
            raise TopologyError(f"unknown node {name!r}")
        return list(self._adjacency[name])

    def egress_links(self, name: str) -> List[Link]:
        """All directed links leaving ``name`` (one per output port)."""
        return [self._links[(name, nbr)] for nbr in self.neighbors(name)]

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shortest_path(self, src: str, dst: str) -> List[Link]:
        """Hop-count shortest route from ``src`` to ``dst`` as a link list.

        End devices never forward: a route may only pass *through*
        switches.  Ties are broken deterministically by insertion order so
        schedules are reproducible.
        """
        for name in (src, dst):
            if name not in self._nodes:
                raise TopologyError(f"unknown node {name!r}")
        if src == dst:
            raise TopologyError(f"stream source and destination are both {src!r}")
        parents: Dict[str, Optional[str]] = {src: None}
        frontier = [src]
        while frontier:
            next_frontier: List[str] = []
            for here in frontier:
                if here != src and not self._nodes[here].is_switch:
                    continue  # devices terminate, never forward
                for nbr in self._adjacency[here]:
                    if nbr in parents:
                        continue
                    parents[nbr] = here
                    if nbr == dst:
                        return self._trace(parents, dst)
                    next_frontier.append(nbr)
            frontier = next_frontier
        raise TopologyError(f"no route from {src!r} to {dst!r}")

    def _trace(self, parents: Dict[str, Optional[str]], dst: str) -> List[Link]:
        hops: List[str] = [dst]
        while parents[hops[-1]] is not None:
            hops.append(parents[hops[-1]])  # type: ignore[index]
        hops.reverse()
        return [self._links[(a, b)] for a, b in zip(hops, hops[1:])]

    # ------------------------------------------------------------------
    # derived properties
    # ------------------------------------------------------------------
    def macrotick_ns(self) -> int:
        """Network-wide scheduling granularity.

        The least common multiple of every link's ``tu``: an instant that
        is a macrotick multiple is drivable by every gate in the network.
        """
        if not self._links:
            raise TopologyError("topology has no links")
        tick = 1
        for link in self._links.values():
            tick = tick * link.time_unit_ns // math.gcd(tick, link.time_unit_ns)
        return tick

    def validate(self) -> None:
        """Check structural sanity; raises :class:`TopologyError`."""
        if not self._nodes:
            raise TopologyError("topology has no nodes")
        if not self._links:
            raise TopologyError("topology has no links")
        for name, nbrs in self._adjacency.items():
            if not nbrs:
                raise TopologyError(f"node {name!r} is isolated")

    def describe(self) -> str:
        """One-line-per-element text rendering, for logs and docs."""
        lines = [f"Topology: {len(self.switches)} switches, {len(self.devices)} devices"]
        for node in self._nodes.values():
            lines.append(f"  {node.kind:6s} {node.name}")
        seen = set()
        for link in self._links.values():
            pair = frozenset(link.key)
            if pair in seen:
                continue
            seen.add(pair)
            lines.append(
                f"  link   {link.src} <-> {link.dst}  "
                f"{link.bandwidth_bps // 1_000_000} Mb/s, "
                f"prop {link.propagation_ns} ns, tu {link.time_unit_ns} ns"
            )
        return "\n".join(lines)


def line_topology(device_names: Iterable[str], switch_names: Iterable[str],
                  bandwidth_bps: int = MBPS_100,
                  propagation_ns: int = 0,
                  time_unit_ns: int = 1) -> Topology:
    """Devices hanging off a chain of switches; a common testbed shape.

    The first half of ``device_names`` attaches to the first switch, the
    second half to the last switch.  For finer control build the topology
    by hand.
    """
    topo = Topology()
    switches = list(switch_names)
    devices = list(device_names)
    if not switches or not devices:
        raise TopologyError("need at least one switch and one device")
    for s in switches:
        topo.add_switch(s)
    for d in devices:
        topo.add_device(d)
    for a, b in zip(switches, switches[1:]):
        topo.add_link(a, b, bandwidth_bps, propagation_ns, time_unit_ns)
    half = (len(devices) + 1) // 2
    for d in devices[:half]:
        topo.add_link(d, switches[0], bandwidth_bps, propagation_ns, time_unit_ns)
    for d in devices[half:]:
        topo.add_link(d, switches[-1], bandwidth_bps, propagation_ns, time_unit_ns)
    return topo
