"""Per-link frame instances — the unit the scheduler places in time.

Paper Sec. IV-A: the frames of stream ``s_i`` on link ``<v_a, v_b>`` form
the ordered list ``F_{s_i,<v_a,v_b>}``, *including* the extra frames added
by prudent reservation (Alg. 1).  Each frame carries ``(φ, T, L)`` — the
scheduled slot start, the repetition period, and the wire time.

Before solving, ``φ`` is unknown: :class:`FrameVar` names the variable.
After solving, :class:`FrameSlot` records the concrete offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.model.stream import Stream, StreamType
from repro.model.topology import Link


@dataclass(frozen=True)
class FrameVar:
    """An unscheduled frame: identity plus the constants ``T`` and ``L``.

    index
        ``j`` — position in ``F_{s,<a,b>}`` (0-based).
    period_ns
        ``T`` — the stream period / minimum inter-event time.
    duration_ns
        ``L`` — wire time of this frame on this link, already rounded up
        to the link's time unit.
    extra
        True for frames added by prudent reservation: they repeat with the
        stream's period but carry payload only when ECT displaced an
        earlier slot.
    """

    stream: str
    link: Tuple[str, str]
    index: int
    period_ns: int
    duration_ns: int
    extra: bool = False

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"{self.var_name}: negative frame index")
        if self.duration_ns <= 0:
            raise ValueError(f"{self.var_name}: duration must be positive")
        if self.period_ns < self.duration_ns:
            raise ValueError(
                f"{self.var_name}: frame of {self.duration_ns} ns cannot fit "
                f"in period {self.period_ns} ns"
            )

    @property
    def var_name(self) -> str:
        """Unique solver-variable name for this frame's ``φ``."""
        a, b = self.link
        return f"phi[{self.stream}][{a}->{b}][{self.index}]"

    def scheduled(self, offset_ns: int) -> "FrameSlot":
        """Bind a concrete offset, producing a :class:`FrameSlot`."""
        return FrameSlot(
            stream=self.stream,
            link=self.link,
            index=self.index,
            offset_ns=offset_ns,
            period_ns=self.period_ns,
            duration_ns=self.duration_ns,
            extra=self.extra,
        )


@dataclass(frozen=True)
class FrameSlot:
    """A scheduled frame: ``(φ, T, L)`` with ``φ`` concrete.

    The slot occupies ``[offset, offset + duration)`` and repeats every
    ``period`` for the lifetime of the schedule.
    """

    stream: str
    link: Tuple[str, str]
    index: int
    offset_ns: int
    period_ns: int
    duration_ns: int
    extra: bool = False

    def __post_init__(self) -> None:
        if self.offset_ns < 0:
            raise ValueError(f"{self.stream}[{self.index}]: negative offset")
        if self.duration_ns <= 0:
            raise ValueError(f"{self.stream}[{self.index}]: duration must be positive")

    @property
    def end_ns(self) -> int:
        """End of the slot's first occurrence."""
        return self.offset_ns + self.duration_ns

    def occurrence(self, k: int) -> Tuple[int, int]:
        """Interval ``[start, end)`` of the k-th periodic repetition."""
        start = self.offset_ns + k * self.period_ns
        return (start, start + self.duration_ns)

    def occurrences_until(self, horizon_ns: int) -> List[Tuple[int, int]]:
        """All repetitions whose start lies in ``[0, horizon)``."""
        result = []
        k = 0
        while True:
            start, end = self.occurrence(k)
            if start >= horizon_ns:
                return result
            result.append((start, end))
            k += 1

    def overlaps(self, other: "FrameSlot", hyperperiod_ns: int) -> bool:
        """Do any periodic repetitions of the two slots intersect in time?

        Checked over one hyperperiod, which is sufficient because both
        patterns repeat with periods dividing it.
        """
        for a_start, a_end in self.occurrences_until(hyperperiod_ns):
            for b_start, b_end in other.occurrences_until(hyperperiod_ns):
                if a_start < b_end and b_start < a_end:
                    return True
        return False


def build_frame_vars(
    stream: Stream,
    link: Link,
    count: int,
    guard_margin_ns: int = 0,
    extra_durations_ns: Optional[Sequence[int]] = None,
) -> List[FrameVar]:
    """The frame list ``F_{s,<a,b>}`` for a stream on one of its links.

    ``count`` is the total number of frames including prudent-reservation
    extras; the first ``stream.frames_per_period()`` carry the message,
    the rest are extras.  Each frame's ``L`` is one MTU-or-less payload's
    wire time, plus the guard margin, rounded up to the link time unit.

    ``guard_margin_ns`` inflates every slot beyond the wire time so the
    synthesized gate windows tolerate clock error between the talker and
    the port — the slack real CNCs budget for 802.1AS residual error.

    ``extra_durations_ns`` explicitly sizes the extra slots (the robust
    reservation mode's event-sized windows); when absent, extras inherit
    the largest message-frame size (the paper's Alg. 1 sizing).
    """
    base = stream.frames_per_period()
    if count < base:
        raise ValueError(
            f"{stream.name} on {link}: count {count} below the "
            f"{base} frames the message needs"
        )
    if guard_margin_ns < 0:
        raise ValueError(f"negative guard margin {guard_margin_ns}")
    if extra_durations_ns is not None and len(extra_durations_ns) != count - base:
        raise ValueError(
            f"{stream.name} on {link}: {len(extra_durations_ns)} extra "
            f"durations for {count - base} extra frames"
        )
    payload_wire = stream.wire_bytes_per_frame()
    # Probabilistic slots carry a non-preemption blocking pad: when the
    # reserved slot overlaps a shared TCT slot (superposition), a TCT
    # frame may already be on the wire when the event's frame arrives,
    # consuming up to one maximal frame time of the window.  Sizing the
    # slot as L + MTU keeps the possibility's slot *chain* intact across
    # hops; without it, one blocked hop can cascade into missing the next
    # hop's reserved window entirely (a full quantization step of delay).
    blocking_pad = 0
    if stream.type == StreamType.PROB:
        from repro.model.units import ETHERNET_MTU_BYTES, wire_bytes

        blocking_pad = link.transmission_ns(wire_bytes(ETHERNET_MTU_BYTES))
    frames = []
    for j in range(count):
        if j < base:
            duration = link.transmission_ns(payload_wire[j])
        elif extra_durations_ns is not None:
            duration = extra_durations_ns[j - base]
        else:
            duration = link.transmission_ns(max(payload_wire))
        duration += guard_margin_ns + blocking_pad
        remainder = duration % link.time_unit_ns
        if remainder:
            duration += link.time_unit_ns - remainder
        frames.append(
            FrameVar(
                stream=stream.name,
                link=link.key,
                index=j,
                period_ns=stream.period_ns,
                duration_ns=duration,
                extra=j >= base,
            )
        )
    return frames
