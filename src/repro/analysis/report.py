"""Text rendering of evaluation results (the paper's tables and series)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.model.units import ns_to_us
from repro.sim.recorder import LatencyStats


def stats_row(stats: LatencyStats) -> Dict[str, float]:
    """Flatten a :class:`LatencyStats` into microsecond-valued fields."""
    return {
        "count": stats.count,
        "avg_us": ns_to_us(stats.average_ns),
        "min_us": ns_to_us(stats.minimum_ns),
        "max_us": ns_to_us(stats.maximum_ns),
        "jitter_us": ns_to_us(stats.stddev_ns),
    }


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: Optional[str] = None
) -> str:
    """Fixed-width text table."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), max((len(r[i]) for r in rendered), default=0))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def reduction_percent(baseline: float, improved: float) -> float:
    """How much lower ``improved`` is than ``baseline``, in percent."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 100.0 * (baseline - improved) / baseline


def speedup(baseline: float, improved: float) -> float:
    """``baseline / improved`` — the 'order of magnitude' factor."""
    if improved <= 0:
        raise ValueError(f"improved value must be positive, got {improved}")
    return baseline / improved


def cdf_percentiles(
    cdf: Sequence[Tuple[int, float]], fractions: Sequence[float] = (0.5, 0.9, 0.99, 1.0)
) -> Dict[float, int]:
    """Sample a CDF at the given fractions (for compact table output)."""
    result: Dict[float, int] = {}
    for fraction in fractions:
        value = None
        for latency, cum in cdf:
            if cum >= fraction:
                value = latency
                break
        if value is None and cdf:
            value = cdf[-1][0]
        result[fraction] = value if value is not None else 0
    return result
