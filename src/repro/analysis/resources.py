"""Resource metrics of a deployment: bandwidth reservation and hardware
gate-table cost.

Real Qbv switches hold a *finite* gate control list (a few hundred to a
few thousand entries); a schedule that needs more entries than the
hardware table simply cannot be deployed.  These metrics make that cost
visible next to the bandwidth numbers the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cnc.qcc import gcl_to_entries
from repro.core.gcl import NetworkGcl
from repro.core.schedule import NetworkSchedule
from repro.model.stream import StreamType


@dataclass(frozen=True)
class LinkReservation:
    """Reserved wire-time on one directed link, per hyperperiod."""

    message_ns: int  #: slots carrying TCT messages
    extra_ns: int  #: prudent-reservation extras
    probabilistic_ns: int  #: possibility slots (superposable)
    cycle_ns: int

    @property
    def tct_fraction(self) -> float:
        """Hard reservation (messages + extras) as a bandwidth share."""
        return (self.message_ns + self.extra_ns) / self.cycle_ns

    @property
    def extra_fraction(self) -> float:
        return self.extra_ns / self.cycle_ns


def link_reservations(schedule: NetworkSchedule) -> Dict[Tuple[str, str], LinkReservation]:
    """Per-link reserved time, split by slot kind."""
    cycle = schedule.hyperperiod_ns
    streams = {s.name: s for s in schedule.streams}
    message: Dict[Tuple[str, str], int] = {}
    extra: Dict[Tuple[str, str], int] = {}
    prob: Dict[Tuple[str, str], int] = {}
    for (name, link_key), slots in schedule.slots.items():
        stream = streams[name]
        for slot in slots:
            total = slot.duration_ns * (cycle // slot.period_ns)
            if stream.type == StreamType.PROB:
                prob[link_key] = prob.get(link_key, 0) + total
            elif slot.extra:
                extra[link_key] = extra.get(link_key, 0) + total
            else:
                message[link_key] = message.get(link_key, 0) + total
    keys = set(message) | set(extra) | set(prob)
    return {
        key: LinkReservation(
            message_ns=message.get(key, 0),
            extra_ns=extra.get(key, 0),
            probabilistic_ns=prob.get(key, 0),
            cycle_ns=cycle,
        )
        for key in keys
    }


def reservation_overhead(schedule: NetworkSchedule) -> float:
    """Network-wide extras as a fraction of all hard-reserved time.

    The cost of prudent reservation: 0.0 when nothing shares with ECT.
    """
    totals = link_reservations(schedule)
    reserved = sum(r.message_ns + r.extra_ns for r in totals.values())
    extras = sum(r.extra_ns for r in totals.values())
    return extras / reserved if reserved else 0.0


def gcl_table_sizes(gcl: NetworkGcl) -> Dict[Tuple[str, str], int]:
    """Hardware GCL entries each port needs (interval/bitmask rows)."""
    return {
        link_key: len(gcl_to_entries(port))
        for link_key, port in gcl.ports.items()
    }


def max_gcl_table_size(gcl: NetworkGcl) -> int:
    """The deployment's worst port — compare against the switch's limit."""
    sizes = gcl_table_sizes(gcl)
    return max(sizes.values()) if sizes else 0


def fits_hardware(gcl: NetworkGcl, table_limit: int = 1024) -> bool:
    """Can every port's program fit a switch with ``table_limit`` rows?"""
    if table_limit <= 0:
        raise ValueError(f"table limit must be positive, got {table_limit}")
    return max_gcl_table_size(gcl) <= table_limit
