"""ASCII Gantt rendering of schedules — paper Figs. 4/6 in a terminal.

Each link becomes one timeline row per stream over one cycle; columns are
time bins.  A filled cell means a reserved slot; ``*`` marks bins where
slots of different streams overlap (the superposition slots of
Sec. III-B, or a shared TCT window under a possibility).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.schedule import NetworkSchedule
from repro.model.units import format_ns

FILL = "#"
EXTRA_FILL = "+"
OVERLAP = "*"
EMPTY = "."


def render_link_gantt(
    schedule: NetworkSchedule,
    link_key: Tuple[str, str],
    width: int = 72,
    cycle_ns: Optional[int] = None,
) -> str:
    """One row per stream on the link, plus a combined occupancy row."""
    cycle = cycle_ns or schedule.hyperperiod_ns
    slots = schedule.link_slots(link_key)
    if not slots:
        return f"<{link_key[0]},{link_key[1]}>: no slots"
    bin_ns = max(1, cycle // width)

    def bins_of(slot) -> List[Tuple[int, bool]]:
        from repro.core.gcl import _cyclic_occurrences

        marked = []
        for start, end in _cyclic_occurrences(
            slot.offset_ns, slot.duration_ns, slot.period_ns, cycle
        ):
            first = start // bin_ns
            last = min((end - 1) // bin_ns, width - 1)
            for b in range(first, last + 1):
                marked.append((b, slot.extra))
        return marked

    streams = sorted({slot.stream for slot in slots})
    rows: Dict[str, List[str]] = {name: [EMPTY] * width for name in streams}
    occupancy = [0] * width
    for slot in slots:
        for b, extra in bins_of(slot):
            rows[slot.stream][b] = EXTRA_FILL if extra else FILL
            occupancy[b] += 1

    label_width = max(len(name) for name in streams)
    lines = [
        f"<{link_key[0]},{link_key[1]}>  cycle {format_ns(cycle)}, "
        f"1 column = {format_ns(bin_ns)}"
    ]
    for name in streams:
        lines.append(f"{name.rjust(label_width)} |{''.join(rows[name])}|")
    combined = "".join(
        OVERLAP if c > 1 else (FILL if c == 1 else EMPTY) for c in occupancy
    )
    lines.append(f"{'(all)'.rjust(label_width)} |{combined}|")
    return "\n".join(lines)


def render_gantt(
    schedule: NetworkSchedule,
    links: Optional[Sequence[Tuple[str, str]]] = None,
    width: int = 72,
) -> str:
    """Gantt rows for every scheduled link (or a chosen subset)."""
    if links is None:
        links = sorted({key for (_, key) in schedule.slots})
    sections = [
        render_link_gantt(schedule, link_key, width=width) for link_key in links
    ]
    return "\n\n".join(sections)


def legend() -> str:
    return (
        f"legend: {FILL} message slot   {EXTRA_FILL} prudent-reservation "
        f"extra   {OVERLAP} superposition (overlapping slots)   {EMPTY} free"
    )
