"""Result analysis and text rendering of the paper's figures."""

from repro.analysis.gantt import legend, render_gantt, render_link_gantt
from repro.analysis.resources import (
    LinkReservation,
    fits_hardware,
    gcl_table_sizes,
    link_reservations,
    max_gcl_table_size,
    reservation_overhead,
)
from repro.analysis.report import (
    cdf_percentiles,
    format_table,
    reduction_percent,
    speedup,
    stats_row,
)

__all__ = [
    "LinkReservation",
    "cdf_percentiles",
    "fits_hardware",
    "gcl_table_sizes",
    "link_reservations",
    "max_gcl_table_size",
    "reservation_overhead",
    "legend",
    "render_gantt",
    "render_link_gantt",
    "format_table",
    "reduction_percent",
    "speedup",
    "stats_row",
]
