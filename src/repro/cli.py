"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Schedule and render the paper's Fig. 6 example (ASCII Gantt) and run
    a short simulation of it.
``fig11`` / ``fig12`` / ``fig14`` / ``fig15`` / ``fig16``
    Regenerate one figure of the paper's evaluation and print its rows.
``figures``
    All of the above, sequentially.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import legend, render_link_gantt
from repro.experiments import fig11, fig12, fig14, fig15, fig16
from repro.model.units import milliseconds, ns_to_us

FIGURES = {
    "fig11": (fig11, lambda d, s: fig11.Fig11Config(duration_ns=d, seed=s)),
    "fig12": (fig12, lambda d, s: fig12.Fig12Config(duration_ns=d, seed=s)),
    "fig14": (fig14, lambda d, s: fig14.Fig14Config(duration_ns=d, seed=s)),
    "fig15": (fig15, lambda d, s: fig15.Fig15Config(duration_ns=d, seed=s)),
    "fig16": (fig16, lambda d, s: fig16.Fig16Config(duration_ns=d, seed=s)),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="E-TSN reproduction (Zhao et al., ICDCS 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser("demo", help="schedule + render the Fig. 6 example")
    demo.add_argument("--width", type=int, default=72, help="gantt width")
    for name in FIGURES:
        figure = sub.add_parser(name, help=f"regenerate the paper's {name}")
        figure.add_argument("--duration-ms", type=int, default=2000,
                            help="simulated milliseconds per configuration")
        figure.add_argument("--seed", type=int, default=1)
    everything = sub.add_parser("figures", help="regenerate every figure")
    everything.add_argument("--duration-ms", type=int, default=2000)
    everything.add_argument("--seed", type=int, default=1)
    return parser


def _run_demo(width: int) -> None:
    from repro import (EctStream, Priorities, SimConfig, Stream, Topology,
                       TsnSimulation, build_gcl, schedule_etsn)
    from repro.model.units import MBPS_100, transmission_time_ns, wire_bytes

    topo = Topology()
    topo.add_switch("SW1")
    for device in ("D1", "D2", "D3"):
        topo.add_device(device)
        topo.add_link(device, "SW1", bandwidth_bps=MBPS_100)
    frame_time = transmission_time_ns(wire_bytes(1500), MBPS_100)
    period = 5 * frame_time
    s1 = Stream(name="s1", path=tuple(topo.shortest_path("D1", "D3")),
                e2e_ns=period, priority=Priorities.SH_PL,
                length_bytes=3 * 1500, period_ns=period, share=True)
    s2 = EctStream(name="s2", source="D2", destination="D3",
                   min_interevent_ns=period, length_bytes=1500,
                   possibilities=5)
    schedule = schedule_etsn(topo, [s1], [s2], backend="smt")
    print("The paper's Fig. 6 example, scheduled by the SMT backend:\n")
    for link_key in (("D1", "SW1"), ("D2", "SW1"), ("SW1", "D3")):
        print(render_link_gantt(schedule, link_key, width=width))
        print()
    print(legend())
    gcl = build_gcl(schedule, mode="etsn")
    report = TsnSimulation(
        schedule, gcl, SimConfig(duration_ns=500 * period, seed=1)
    ).run()
    print()
    for name in ("s1", "s2"):
        stats = report.recorder.stats(name)
        print(f"{name}: avg {ns_to_us(stats.average_ns):8.1f} us   "
              f"worst {ns_to_us(stats.maximum_ns):8.1f} us   "
              f"jitter {ns_to_us(stats.jitter_ns):6.1f} us   "
              f"({stats.count} messages)")


def _run_figure(name: str, duration_ms: int, seed: int) -> None:
    module, make_config = FIGURES[name]
    config = make_config(milliseconds(duration_ms), seed)
    result = module.run(config)
    print(module.format_result(result))


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "demo":
        _run_demo(args.width)
    elif args.command == "figures":
        for name in FIGURES:
            _run_figure(name, args.duration_ms, args.seed)
            print()
    else:
        _run_figure(args.command, args.duration_ms, args.seed)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
