"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Schedule and render the paper's Fig. 6 example (ASCII Gantt) and run
    a short simulation of it.
``fig11`` / ``fig12`` / ``fig14`` / ``fig15`` / ``fig16``
    Regenerate one figure of the paper's evaluation and print its rows.
``figures``
    All of the above, sequentially.
``admit``
    Decide one admit/remove request against a persisted schedule and
    print the decision as JSON; exit 1 on rejection.
``serve``
    Run the online admission service over a JSON-lines request stream
    (file or stdin), printing one decision JSON per line.
``metrics``
    Run a small demo admission and export the service metrics as JSON
    or Prometheus text exposition (``--input`` re-exports a saved
    metrics JSON instead).
``trace``
    Inspect a span trace written by ``--trace``:
    ``repro trace summarize out.jsonl`` prints per-span-name and
    per-rung latency distributions (count / mean / p50 / p99),
    ``repro trace tree out.jsonl`` renders the trace forest as an
    indented tree, and ``repro trace cluster`` runs a deterministic
    2-shard cross-shard admission and renders its single distributed
    trace (coordinator → shard batches → rungs → solves → two-phase
    prepare/commit).
``slo``
    Evaluate latency SLO targets (p-quantile ≤ objective with an error
    budget) against a live demo run or a saved metrics JSON; exit 1 on
    violation.
``events``
    Inspect a structured event journal written by ``--events``:
    ``repro events tail FILE`` prints the last N events, ``repro
    events query FILE --kind twophase.`` filters by kind prefix /
    trace id / stream.
``bench``
    ``repro bench diff BASELINE CURRENT`` compares two BENCH_*.json
    payloads and exits 1 when any throughput metric regressed more
    than the allowed margin (default 20 %) — the CI trajectory gate.
``check``
    Static analysis: ``check lint`` runs the repo-invariant AST linter,
    ``check proof`` / ``check model`` verify saved solver certificates
    (see :mod:`repro.check`).
``cluster``
    Sharded multi-tenant admission (:mod:`repro.cluster`):
    ``cluster status`` prints the switch-cluster partition,
    ``cluster admit`` decides one request against a fresh cluster, and
    ``cluster serve`` drives a JSONL request stream across the shards
    (``--audit`` gcl-audits the stitched global schedule afterwards).
``campaign``
    Monte Carlo robustness campaigns (:mod:`repro.campaign`):
    ``campaign run`` fans a loss x clock-error x load x FRER matrix
    across a process pool (resumable), ``campaign status`` prints
    per-cell completion, ``campaign report`` emits the scenario-matrix
    report with deadline-miss probabilities (Wilson 95 % CIs) and
    latency percentiles, and ``campaign example-spec`` prints a
    ready-to-edit spec.

``serve`` and ``admit`` accept ``--trace FILE`` to record admission
spans (request -> rung -> solve) as JSON-lines, and ``--certify`` to
machine-check every solver verdict (SMT backend only).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import legend, render_link_gantt
from repro.experiments import fig11, fig12, fig14, fig15, fig16
from repro.model.units import milliseconds, ns_to_us

FIGURES = {
    "fig11": (fig11, lambda d, s: fig11.Fig11Config(duration_ns=d, seed=s)),
    "fig12": (fig12, lambda d, s: fig12.Fig12Config(duration_ns=d, seed=s)),
    "fig14": (fig14, lambda d, s: fig14.Fig14Config(duration_ns=d, seed=s)),
    "fig15": (fig15, lambda d, s: fig15.Fig15Config(duration_ns=d, seed=s)),
    "fig16": (fig16, lambda d, s: fig16.Fig16Config(duration_ns=d, seed=s)),
}


def _add_fastpath_flags(parser) -> None:
    """Fast-path/portfolio/warm-start toggles shared by the serving
    commands (see :mod:`repro.service.fastpath`)."""
    parser.add_argument("--no-fastpath", action="store_true",
                        help="disable the analytic fast-path rung; every "
                             "request climbs the solver ladder")
    parser.add_argument("--portfolio", action="store_true",
                        help="race the ladder rungs concurrently instead "
                             "of climbing in series")
    parser.add_argument("--no-warm-start", action="store_true",
                        help="disable SMT solver warm-starting across "
                             "consecutive solves on one snapshot")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="E-TSN reproduction (Zhao et al., ICDCS 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser("demo", help="schedule + render the Fig. 6 example")
    demo.add_argument("--width", type=int, default=72, help="gantt width")
    for name in FIGURES:
        figure = sub.add_parser(name, help=f"regenerate the paper's {name}")
        figure.add_argument("--duration-ms", type=int, default=2000,
                            help="simulated milliseconds per configuration")
        figure.add_argument("--seed", type=int, default=1)
    everything = sub.add_parser("figures", help="regenerate every figure")
    everything.add_argument("--duration-ms", type=int, default=2000)
    everything.add_argument("--seed", type=int, default=1)

    admit = sub.add_parser(
        "admit", help="decide one admission request against a schedule file"
    )
    admit.add_argument("--state", required=True,
                       help="schedule JSON (see repro.serialization)")
    admit.add_argument("--out", help="write the updated schedule JSON here")
    admit.add_argument("--remove", metavar="NAME",
                       help="retire a stream instead of admitting one")
    admit.add_argument("--ect", action="store_true",
                       help="admit an event-triggered stream")
    admit.add_argument("--name", help="stream name")
    admit.add_argument("--source", help="talker device")
    admit.add_argument("--dest", help="listener device")
    admit.add_argument("--period-us", type=float,
                       help="TCT period / ECT minimum inter-event time")
    admit.add_argument("--length", type=int, default=1500,
                       help="message length in bytes")
    admit.add_argument("--e2e-us", type=float,
                       help="end-to-end budget (default: the period)")
    admit.add_argument("--share", action="store_true",
                       help="TCT stream shares its slots with ECT")
    admit.add_argument("--possibilities", type=int, default=4,
                       help="probabilistic possibilities N for --ect")
    admit.add_argument("--backend", default="heuristic",
                       choices=("heuristic", "smt"),
                       help="backend for the full re-solve rung")
    admit.add_argument("--trace", metavar="FILE",
                       help="write admission spans here as JSON-lines")
    admit.add_argument("--certify", action="store_true",
                       help="verify every solver verdict with the "
                            "repro.check certificate checker "
                            "(requires --backend smt)")
    _add_fastpath_flags(admit)

    serve = sub.add_parser(
        "serve", help="serve a JSON-lines admission request stream"
    )
    state_source = serve.add_mutually_exclusive_group(required=True)
    state_source.add_argument("--state", help="initial schedule JSON")
    state_source.add_argument("--topology",
                              help="topology JSON; starts from an empty schedule")
    serve.add_argument("--requests", default="-",
                       help="JSONL request file, or '-' for stdin")
    serve.add_argument("--metrics-out",
                       help="write the metrics JSON here instead of stdout")
    serve.add_argument("--save-state",
                       help="write the final schedule JSON here")
    serve.add_argument("--fail-on-reject", action="store_true",
                       help="exit 1 if any request was rejected")
    serve.add_argument("--emit-deployments", action="store_true",
                       help="build a Qcc deployment per accepted batch")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="largest request batch validated in one pass")
    serve.add_argument("--backend", default="heuristic",
                       choices=("heuristic", "smt"),
                       help="backend for the full re-solve rung")
    serve.add_argument("--trace", metavar="FILE",
                       help="write admission spans here as JSON-lines")
    serve.add_argument("--events", metavar="FILE",
                       help="write the structured event journal here as "
                            "JSON-lines")
    serve.add_argument("--certify", action="store_true",
                       help="verify every solver verdict with the "
                            "repro.check certificate checker "
                            "(requires --backend smt)")
    _add_fastpath_flags(serve)

    metrics = sub.add_parser(
        "metrics", help="run a demo admission and export its metrics"
    )
    metrics.add_argument("--format", default="json",
                         choices=("json", "prometheus"),
                         help="export format")
    metrics.add_argument("--input", metavar="FILE",
                         help="re-export this saved metrics JSON instead "
                              "of running the demo admission")
    metrics.add_argument("--deterministic", action="store_true",
                         help="drive the demo with a fake 1ms-per-call "
                              "clock so the output is reproducible")

    cluster = sub.add_parser(
        "cluster", help="sharded multi-tenant admission (repro.cluster)"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    def _cluster_common(p) -> None:
        p.add_argument("--topology", required=True,
                       help="topology JSON (see repro.serialization)")
        p.add_argument("--shards", type=int, default=4,
                       help="number of switch-cluster shards")
        p.add_argument("--seeds", metavar="SW[,SW...]",
                       help="comma-separated seed switches to pin regions")

    cstatus = cluster_sub.add_parser(
        "status", help="print the partition and per-shard summary"
    )
    _cluster_common(cstatus)

    cadmit = cluster_sub.add_parser(
        "admit", help="decide one request against a fresh cluster"
    )
    _cluster_common(cadmit)
    cadmit.add_argument("--remove", metavar="NAME",
                        help="retire a stream instead of admitting one")
    cadmit.add_argument("--name", help="stream name")
    cadmit.add_argument("--source", help="talker device")
    cadmit.add_argument("--dest", help="listener device")
    cadmit.add_argument("--period-us", type=float,
                        help="TCT period / ECT minimum inter-event time")
    cadmit.add_argument("--length", type=int, default=1500,
                        help="message length in bytes")
    cadmit.add_argument("--e2e-us", type=float,
                        help="end-to-end budget (default: the period)")
    cadmit.add_argument("--share", action="store_true",
                        help="TCT stream shares its slots with ECT")
    cadmit.add_argument("--ect", action="store_true",
                        help="admit an event-triggered stream")
    cadmit.add_argument("--possibilities", type=int, default=4,
                        help="probabilistic possibilities N for --ect")

    cserve = cluster_sub.add_parser(
        "serve", help="serve a JSONL request stream across the shards"
    )
    _cluster_common(cserve)
    cserve.add_argument("--requests", default="-",
                        help="JSONL request file, or '-' for stdin")
    cserve.add_argument("--workers", type=int,
                        help="thread-pool size (default: one per shard)")
    cserve.add_argument("--backend", default="heuristic",
                        choices=("heuristic", "smt"),
                        help="backend for the full re-solve rung")
    _add_fastpath_flags(cserve)
    cserve.add_argument("--metrics-out",
                        help="write the cluster metrics JSON here")
    cserve.add_argument("--audit", action="store_true",
                        help="gcl-audit the stitched global schedule "
                             "after the run")
    cserve.add_argument("--fail-on-reject", action="store_true",
                        help="exit 1 if any request was rejected")
    cserve.add_argument("--trace", metavar="FILE",
                        help="write the distributed admission spans here "
                             "as JSON-lines")
    cserve.add_argument("--events", metavar="FILE",
                        help="write the structured event journal here as "
                             "JSON-lines")
    cserve.add_argument("--prometheus-out", metavar="FILE",
                        help="write per-shard + cluster Prometheus text "
                             "exposition here after the run")

    trace = sub.add_parser("trace", help="inspect a span trace (JSONL)")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize", help="per-span-name and per-rung latency distributions"
    )
    summarize.add_argument("file", help="JSONL trace from --trace")
    summarize.add_argument("--format", default="table",
                           choices=("table", "json"))
    tree = trace_sub.add_parser(
        "tree", help="render the trace forest as an indented tree"
    )
    tree.add_argument("file", help="JSONL trace from --trace")
    tree.add_argument("--durations", action="store_true",
                      help="append each span's duration in ms")
    tcluster = trace_sub.add_parser(
        "cluster",
        help="run a deterministic 2-shard cross-shard admission and "
             "render its single distributed trace tree",
    )
    tcluster.add_argument("--durations", action="store_true",
                          help="append each span's duration in ms "
                               "(fake-clock ticks; still deterministic)")
    tcluster.add_argument("--out", metavar="FILE",
                          help="also write the raw spans here as JSONL")

    slo = sub.add_parser(
        "slo", help="evaluate latency SLO targets against metrics"
    )
    slo.add_argument("--metrics", metavar="FILE",
                     help="saved metrics JSON (default: run the "
                          "deterministic demo admission)")
    slo.add_argument("--target", action="append", metavar="SPEC",
                     help="metric:quantile:objective_ms, e.g. "
                          "latency.decision_ms:0.99:250 (repeatable; "
                          "default: the built-in admission targets)")
    slo.add_argument("--require-all", action="store_true",
                     help="treat a missing histogram as a violation")
    slo.add_argument("--format", default="table",
                     choices=("table", "json"))

    events = sub.add_parser(
        "events", help="inspect a structured event journal (JSONL)"
    )
    events_sub = events.add_subparsers(dest="events_command", required=True)
    etail = events_sub.add_parser("tail", help="print the last N events")
    etail.add_argument("file", help="JSONL journal from --events")
    etail.add_argument("-n", "--count", type=int, default=20,
                       help="how many trailing events to print")
    equery = events_sub.add_parser(
        "query", help="filter events by kind / trace / attribute"
    )
    equery.add_argument("file", help="JSONL journal from --events")
    equery.add_argument("--kind",
                        help="exact kind, or a 'family.' prefix")
    equery.add_argument("--trace-id", type=int,
                        help="only events tagged with this trace id")
    equery.add_argument("--since-seq", type=int,
                        help="only events with seq > this")
    equery.add_argument("--attr", action="append", metavar="KEY=VALUE",
                        help="attribute equality filter (repeatable)")

    bench = sub.add_parser(
        "bench", help="benchmark result tooling"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bdiff = bench_sub.add_parser(
        "diff", help="compare two BENCH_*.json payloads; exit 1 on "
                     "throughput regression beyond the margin"
    )
    bdiff.add_argument("baseline", help="committed baseline BENCH json")
    bdiff.add_argument("current", help="freshly produced BENCH json")
    bdiff.add_argument("--max-regression", type=float, default=0.20,
                       help="allowed fractional throughput drop "
                            "(default 0.20)")
    bdiff.add_argument("--format", default="table",
                       choices=("table", "json"))

    from repro.check.cli import add_check_parser

    add_check_parser(sub)

    from repro.campaign.cli import add_campaign_parser

    add_campaign_parser(sub)

    from repro.frontend.cli import add_frontend_parser, add_loadgen_parser

    add_frontend_parser(sub)
    add_loadgen_parser(sub)
    return parser


def _run_demo(width: int) -> None:
    from repro import (EctStream, Priorities, SimConfig, Stream, Topology,
                       TsnSimulation, build_gcl, schedule_etsn)
    from repro.model.units import MBPS_100, transmission_time_ns, wire_bytes

    topo = Topology()
    topo.add_switch("SW1")
    for device in ("D1", "D2", "D3"):
        topo.add_device(device)
        topo.add_link(device, "SW1", bandwidth_bps=MBPS_100)
    frame_time = transmission_time_ns(wire_bytes(1500), MBPS_100)
    period = 5 * frame_time
    s1 = Stream(name="s1", path=tuple(topo.shortest_path("D1", "D3")),
                e2e_ns=period, priority=Priorities.SH_PL,
                length_bytes=3 * 1500, period_ns=period, share=True)
    s2 = EctStream(name="s2", source="D2", destination="D3",
                   min_interevent_ns=period, length_bytes=1500,
                   possibilities=5)
    schedule = schedule_etsn(topo, [s1], [s2], backend="smt")
    print("The paper's Fig. 6 example, scheduled by the SMT backend:\n")
    for link_key in (("D1", "SW1"), ("D2", "SW1"), ("SW1", "D3")):
        print(render_link_gantt(schedule, link_key, width=width))
        print()
    print(legend())
    gcl = build_gcl(schedule, mode="etsn")
    report = TsnSimulation(
        schedule, gcl, SimConfig(duration_ns=500 * period, seed=1)
    ).run()
    print()
    for name in ("s1", "s2"):
        stats = report.recorder.stats(name)
        print(f"{name}: avg {ns_to_us(stats.average_ns):8.1f} us   "
              f"worst {ns_to_us(stats.maximum_ns):8.1f} us   "
              f"jitter {ns_to_us(stats.jitter_ns):6.1f} us   "
              f"({stats.count} messages)")


def _run_figure(name: str, duration_ms: int, seed: int) -> None:
    module, make_config = FIGURES[name]
    config = make_config(milliseconds(duration_ms), seed)
    result = module.run(config)
    print(module.format_result(result))


def _admit_request(args) -> "object":
    from repro.model.stream import EctStream, Priorities, TctRequirement
    from repro.model.units import microseconds
    from repro.service import AdmitEct, AdmitTct, Remove

    if args.remove:
        return Remove(name=args.remove)
    missing = [flag for flag, value in (
        ("--name", args.name), ("--source", args.source),
        ("--dest", args.dest), ("--period-us", args.period_us),
    ) if value is None]
    if missing:
        raise SystemExit(f"admit: missing {', '.join(missing)}")
    if args.period_us <= 0:
        raise SystemExit("admit: --period-us must be positive")
    if args.ect:
        return AdmitEct(EctStream(
            name=args.name, source=args.source, destination=args.dest,
            min_interevent_ns=microseconds(args.period_us),
            length_bytes=args.length,
            e2e_ns=microseconds(args.e2e_us) if args.e2e_us else None,
            possibilities=args.possibilities,
        ))
    return AdmitTct(TctRequirement(
        name=args.name, source=args.source, destination=args.dest,
        period_ns=microseconds(args.period_us), length_bytes=args.length,
        e2e_ns=microseconds(args.e2e_us) if args.e2e_us else None,
        priority=Priorities.SH_PL if args.share else Priorities.NSH_PH,
        share=args.share,
    ))


def _check_certify(args) -> None:
    if args.certify and args.backend != "smt":
        raise SystemExit("--certify requires --backend smt")


def _make_tracer(path):
    """A ring-buffered tracer when ``--trace`` was given, else None."""
    if not path:
        return None
    from repro.obs import Tracer

    return Tracer()


def _dump_trace(path, tracer) -> None:
    if not path or tracer is None:
        return
    from repro.serialization import save_trace

    save_trace(path, tracer.spans())


def _make_event_log(path):
    """A ring-buffered event log when ``--events`` was given, else None."""
    if not path:
        return None
    from repro.obs import EventLog

    return EventLog()


def _dump_events(path, events) -> None:
    if not path or events is None:
        return
    from repro.obs import save_events

    save_events(path, events.events())


def _fastpath_config(args) -> dict:
    """ServiceConfig kwargs from the shared fast-path flags.

    ``getattr`` defaults keep commands without the flags (``cluster
    status``/``admit``) on the ServiceConfig defaults.
    """
    return {
        "fastpath": not getattr(args, "no_fastpath", False),
        "portfolio": getattr(args, "portfolio", False),
        "warm_start": not getattr(args, "no_warm_start", False),
    }


def _open_requests(path: str):
    """The request source: a file handle, or stdin for ``-``.

    Callers must close the returned handle unless it is stdin.
    """
    return sys.stdin if path == "-" else open(path)


def _iter_request_lines(handle):
    """Yield ``(lineno, payload line)`` incrementally.

    Iterates the handle line by line — a ``repro serve`` fed from a
    pipe starts deciding as soon as requests arrive and never buffers
    the whole stream, so an unbounded producer cannot exhaust memory.
    Blank lines and ``#`` comments are skipped but still numbered.
    """
    for lineno, line in enumerate(handle, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        yield lineno, line


def _run_admit(args) -> int:
    from repro.serialization import decision_to_dict, schedule_to_dict
    from repro.service import AdmissionService, ScheduleStore, ServiceConfig

    store = ScheduleStore(_load_schedule(args.state))
    tracer = _make_tracer(args.trace)
    _check_certify(args)
    service = AdmissionService(
        store,
        config=ServiceConfig(backend=args.backend, certify=args.certify,
                             **_fastpath_config(args)),
        tracer=tracer,
    )
    decision = service.submit(_admit_request(args))
    print(json.dumps(decision_to_dict(decision)))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(schedule_to_dict(store.schedule), handle)
    _dump_trace(args.trace, tracer)
    return 0 if decision.accepted else 1


def _run_serve(args) -> int:
    from repro.serialization import (
        decision_to_dict,
        metrics_to_dict,
        schedule_to_dict,
        topology_from_dict,
    )
    from repro.service import (
        AdmissionService,
        ScheduleStore,
        ServiceConfig,
        empty_schedule,
        request_from_dict,
    )

    if args.state:
        schedule = _load_schedule(args.state)
    else:
        with open(args.topology) as handle:
            schedule = empty_schedule(topology_from_dict(json.load(handle)))
    store = ScheduleStore(schedule)
    tracer = _make_tracer(args.trace)
    events = _make_event_log(args.events)
    _check_certify(args)
    service = AdmissionService(store, config=ServiceConfig(
        backend=args.backend,
        max_batch=args.max_batch,
        emit_deployments=args.emit_deployments,
        certify=args.certify,
        **_fastpath_config(args),
    ), tracer=tracer, events=events)

    decisions = []

    def flush() -> None:
        for decision in service.drain():
            decisions.append(decision)
            print(json.dumps(decision_to_dict(decision)))

    # stream incrementally: enqueue as lines arrive, drain (and print
    # decisions) every max_batch so a piped producer gets answers
    # without the CLI ever holding the whole request stream in memory
    handle = _open_requests(args.requests)
    try:
        enqueued = 0
        for lineno, line in _iter_request_lines(handle):
            try:
                service.enqueue(request_from_dict(json.loads(line)))
            except (ValueError, json.JSONDecodeError) as exc:
                print(f"error: requests line {lineno}: {exc}",
                      file=sys.stderr)
                return 2
            enqueued += 1
            if enqueued >= args.max_batch:
                flush()
                enqueued = 0
        flush()
    finally:
        if handle is not sys.stdin:
            handle.close()
    metrics = metrics_to_dict(service.metrics)
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump(metrics, handle)
    else:
        print(json.dumps({"metrics": metrics}))
    if args.save_state:
        with open(args.save_state, "w") as handle:
            json.dump(schedule_to_dict(store.schedule), handle)
    _dump_trace(args.trace, tracer)
    _dump_events(args.events, events)
    if args.fail_on_reject and any(not d.accepted for d in decisions):
        return 1
    return 0


def _demo_metrics(deterministic: bool):
    """The admission run behind ``repro metrics``: three requests (one
    infeasible) on the paper's Fig. 2 star network."""
    import itertools

    from repro.model.stream import EctStream, Priorities, TctRequirement
    from repro.model.topology import Topology
    from repro.model.units import MBPS_100, milliseconds
    from repro.service import (
        AdmissionService,
        AdmitEct,
        AdmitTct,
        ScheduleStore,
        empty_schedule,
    )

    topo = Topology()
    topo.add_switch("SW1")
    for device in ("D1", "D2", "D3"):
        topo.add_device(device)
        topo.add_link(device, "SW1", bandwidth_bps=MBPS_100)
    store = ScheduleStore(empty_schedule(topo))
    kwargs = {}
    if deterministic:
        ticks = itertools.count()
        kwargs["clock"] = lambda: next(ticks) * 1e-3  # 1 ms per reading
    service = AdmissionService(store, **kwargs)
    service.submit_many([
        AdmitTct(TctRequirement(
            name="tct-a", source="D1", destination="D3",
            period_ns=milliseconds(8), length_bytes=1500,
            priority=Priorities.NSH_PH,
        )),
        AdmitEct(EctStream(
            name="ect-a", source="D2", destination="D3",
            min_interevent_ns=milliseconds(16), length_bytes=512,
            possibilities=2,
        )),
        AdmitTct(TctRequirement(
            name="hog", source="D2", destination="D3",
            period_ns=milliseconds(4), length_bytes=40 * 1500,
            priority=Priorities.NSH_PH,
        )),
    ])
    return service.metrics


def _run_metrics(args) -> int:
    from repro.obs import to_prometheus
    from repro.serialization import metrics_to_dict

    if args.input:
        with open(args.input) as handle:
            data = json.load(handle)
        data.pop("version", None)
        registry = _registry_from_dict(data)
    else:
        registry = _demo_metrics(args.deterministic)
    if args.format == "prometheus":
        sys.stdout.write(to_prometheus(registry))
    else:
        print(json.dumps(metrics_to_dict(registry), indent=2))
    return 0


def _registry_from_dict(data):
    """Rehydrate a saved metrics JSON for lossless re-export.

    Counters and gauges restore exactly.  Histogram summaries carry
    their full bucket table, so :meth:`MetricsRegistry.restore_histogram`
    rebuilds the distribution bit-for-bit; legacy summaries without a
    ``buckets`` key fall back to replaying min/max padded with the mean
    (extrema exact, quantiles approximate).
    """
    from repro.service.metrics import MetricsRegistry

    registry = MetricsRegistry()
    for name, value in data.get("counters", {}).items():
        registry.counter(name).inc(int(value))
    for name, value in data.get("gauges", {}).items():
        registry.gauge(name).set(value)
    for name, summary in data.get("histograms", {}).items():
        if "buckets" in summary:
            registry.restore_histogram(name, summary)
            continue
        histogram = registry.histogram(name)
        count = int(summary.get("count", 0))
        if count <= 0:
            continue
        values = [summary.get("min", 0.0), summary.get("max", 0.0)][:count]
        mean = summary.get("mean", 0.0)
        values += [mean] * (count - len(values))
        total = summary.get("sum", mean * count)
        drift = total - sum(values)
        if values and abs(drift) > 1e-9:
            values[-1] += drift
        for value in values:
            histogram.observe(value)
    return registry


def _load_cluster(args, tracer=None, events=None):
    """A ClusterCoordinator over the topology/shard arguments."""
    from repro.cluster import ClusterCoordinator, partition_topology
    from repro.serialization import topology_from_dict

    with open(args.topology) as handle:
        topology = topology_from_dict(json.load(handle))
    seeds = args.seeds.split(",") if args.seeds else None
    partition = partition_topology(topology, args.shards, seeds=seeds)
    from repro.service import ServiceConfig

    config = ServiceConfig(backend=getattr(args, "backend", "heuristic"),
                           **_fastpath_config(args))
    return ClusterCoordinator(
        partition=partition,
        config=config,
        tracer=tracer,
        events=events,
        max_workers=getattr(args, "workers", None),
    )


def _run_cluster(args) -> int:
    if args.cluster_command == "status":
        coordinator = _load_cluster(args)
        print(coordinator.partition.describe())
        print(json.dumps(coordinator.status(), indent=2))
        coordinator.shutdown()
        return 0
    if args.cluster_command == "admit":
        from repro.serialization import decision_to_dict

        coordinator = _load_cluster(args)
        decision = coordinator.submit(_admit_request(args))
        print(json.dumps(decision_to_dict(decision)))
        coordinator.audit()
        coordinator.shutdown()
        return 0 if decision.accepted else 1
    return _run_cluster_serve(args)


#: `cluster serve` submits streamed requests in chunks of this many:
#: big enough to amortize the cross-shard wave machinery, small enough
#: that an unbounded pipe never accumulates in memory.
_CLUSTER_SERVE_CHUNK = 256


def _run_cluster_serve(args) -> int:
    from repro.serialization import decision_to_dict
    from repro.service import request_from_dict

    tracer = _make_tracer(args.trace)
    events = _make_event_log(args.events)
    coordinator = _load_cluster(args, tracer=tracer, events=events)
    decisions = []
    chunk = []

    def flush() -> None:
        if not chunk:
            return
        for decision in coordinator.submit_many(chunk):
            decisions.append(decision)
            print(json.dumps(decision_to_dict(decision)))
        chunk.clear()

    # stream incrementally in bounded chunks — the coordinator fans
    # each chunk across shards; an unbounded pipe never accumulates
    handle = _open_requests(args.requests)
    try:
        for lineno, line in _iter_request_lines(handle):
            try:
                chunk.append(request_from_dict(json.loads(line)))
            except (ValueError, json.JSONDecodeError) as exc:
                print(f"error: requests line {lineno}: {exc}",
                      file=sys.stderr)
                coordinator.shutdown()
                return 2
            if len(chunk) >= _CLUSTER_SERVE_CHUNK:
                flush()
        flush()
    finally:
        if handle is not sys.stdin:
            handle.close()
    metrics = coordinator.status()
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump(metrics, handle)
    else:
        print(json.dumps({"cluster": metrics["metrics"]}))
    if args.audit:
        coordinator.audit()  # raises GclAuditError on inconsistency
        print(json.dumps({"audit": "ok"}))
    if args.prometheus_out:
        with open(args.prometheus_out, "w") as handle:
            handle.write(coordinator.prometheus())
    _dump_trace(args.trace, tracer)
    _dump_events(args.events, events)
    coordinator.shutdown()
    if args.fail_on_reject and any(not d.accepted for d in decisions):
        return 1
    return 0


def _run_trace(args) -> int:
    if args.trace_command == "cluster":
        return _run_trace_cluster(args)
    from repro.obs import (
        format_span_summary,
        render_trace_tree,
        summarize_spans,
    )
    from repro.serialization import load_trace

    spans = load_trace(args.file)
    if args.trace_command == "tree":
        print(render_trace_tree(spans, durations=args.durations))
        return 0
    summary = summarize_spans(spans)
    if args.format == "json":
        print(json.dumps(summary, indent=2))
    else:
        print(f"{len(spans)} spans from {args.file}")
        print(format_span_summary(summary))
    return 0


def _run_trace_cluster(args) -> int:
    """One deterministic 2-shard admission batch, rendered as a tree.

    Three requests — one local to each shard, one crossing the border —
    under a fixed tick clock and a single-worker pool, so the rendered
    forest is byte-stable (the CI golden check diffs it).  The
    cross-shard request demonstrates the acceptance property: one
    ``trace_id`` spanning coordinator, shard batches, rungs, solves,
    and the two-phase prepare/commit.
    """
    import itertools

    from repro.cluster import ClusterCoordinator, partition_topology
    from repro.experiments import simulation_topology
    from repro.model.stream import Priorities, TctRequirement
    from repro.model.units import milliseconds
    from repro.obs import Tracer, render_trace_tree
    from repro.service import AdmitTct, ServiceConfig

    ticks = itertools.count()
    tracer = Tracer(clock=lambda: next(ticks) * 1_000_000)  # 1 ms per read
    partition = partition_topology(
        simulation_topology(), 2, seeds=["SW1", "SW4"]
    )
    coordinator = ClusterCoordinator(
        partition=partition,
        tracer=tracer,
        max_workers=1,          # serial shard batches: stable span order
        clock=lambda: 0.0,      # latency histograms stay deterministic
        # fast path off: the demo exists to show the rung -> solve span
        # chains, which the analytic fast path would decide without
        config=ServiceConfig(fastpath=False),
    )

    def tct(name, src, dst):
        return AdmitTct(TctRequirement(
            name=name, source=src, destination=dst,
            period_ns=milliseconds(8), length_bytes=1000,
            priority=Priorities.NSH_PH,
        ))

    coordinator.submit_many([
        tct("local-a", "D1", "D4"),       # stays inside shard0
        tct("local-b", "D10", "D12"),     # stays inside shard1
        tct("cross-x", "D1", "D12"),      # spans both shards
    ])
    coordinator.shutdown()
    spans = tracer.spans()
    if args.out:
        from repro.serialization import save_trace

        save_trace(args.out, spans)
    print(render_trace_tree(spans, durations=args.durations))
    return 0


def _run_slo(args) -> int:
    from repro.obs import (
        DEFAULT_TARGETS,
        SloTarget,
        evaluate_slos,
        format_slo_report,
    )
    from repro.serialization import metrics_to_dict

    if args.metrics:
        with open(args.metrics) as handle:
            data = json.load(handle)
        data.pop("version", None)
    else:
        data = metrics_to_dict(_demo_metrics(deterministic=True))
        data.pop("version", None)
    try:
        targets = (
            tuple(SloTarget.parse(spec) for spec in args.target)
            if args.target else DEFAULT_TARGETS
        )
    except ValueError as exc:
        raise SystemExit(f"slo: {exc}")
    results = evaluate_slos(data, targets, require_all=args.require_all)
    if args.format == "json":
        print(json.dumps([r.to_dict() for r in results], indent=2))
    else:
        print(format_slo_report(results))
    return 0 if all(r.met for r in results) else 1


def _run_events(args) -> int:
    from repro.obs import filter_events, load_events

    events = load_events(args.file)
    if args.events_command == "tail":
        selected = events[-args.count:] if args.count > 0 else []
    else:
        attrs = {}
        for pair in args.attr or []:
            if "=" not in pair:
                raise SystemExit(
                    f"events: --attr wants KEY=VALUE, got {pair!r}"
                )
            key, raw = pair.split("=", 1)
            try:
                attrs[key] = json.loads(raw)
            except json.JSONDecodeError:
                attrs[key] = raw
        selected = filter_events(
            events,
            kind=args.kind,
            trace_id=args.trace_id,
            since_seq=args.since_seq or 0,
            **attrs,
        )
    for event in selected:
        print(json.dumps(event.to_dict(), sort_keys=True))
    return 0


def _run_bench(args) -> int:
    from repro.obs import (
        diff_benchmarks,
        format_bench_diff,
        load_bench,
        split_failures,
    )

    try:
        baseline = load_bench(args.baseline)
        current = load_bench(args.current)
        deltas = diff_benchmarks(
            baseline, current, max_regression=args.max_regression
        )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bench diff: {exc}")
    if args.format == "json":
        print(json.dumps([d.to_dict() for d in deltas], indent=2))
    else:
        print(format_bench_diff(deltas, max_regression=args.max_regression))
    failed, _ = split_failures(deltas)
    return 1 if failed else 0


def _load_schedule(path: str):
    from repro.serialization import schedule_from_dict

    with open(path) as handle:
        return schedule_from_dict(json.load(handle))


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "demo":
        _run_demo(args.width)
    elif args.command == "figures":
        for name in FIGURES:
            _run_figure(name, args.duration_ms, args.seed)
            print()
    elif args.command == "admit":
        return _run_admit(args)
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "cluster":
        return _run_cluster(args)
    elif args.command == "metrics":
        return _run_metrics(args)
    elif args.command == "trace":
        return _run_trace(args)
    elif args.command == "slo":
        return _run_slo(args)
    elif args.command == "events":
        return _run_events(args)
    elif args.command == "bench":
        return _run_bench(args)
    elif args.command == "check":
        from repro.check.cli import run_check

        return run_check(args)
    elif args.command == "campaign":
        from repro.campaign.cli import run_campaign_cli

        return run_campaign_cli(args)
    elif args.command == "frontend":
        from repro.frontend.cli import run_frontend

        return run_frontend(args)
    elif args.command == "loadgen":
        from repro.frontend.cli import run_loadgen_cli

        return run_loadgen_cli(args)
    else:
        _run_figure(args.command, args.duration_ms, args.seed)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
