"""Whole-program scan: modules, classes, calls, locks — the substrate
the interprocedural analyses (:mod:`repro.check.flow`,
:mod:`repro.check.units_analysis`) are built on.

:func:`build_program` parses a file set into a :class:`Program`:

* per-module import tables, so ``ScheduleStore`` in ``coordinator.py``
  resolves to ``repro.service.store.ScheduleStore``;
* per-class attribute types, gathered from dataclass field annotations
  and ``self.x = ClassName(...)`` constructor assignments (including
  through ``a if cond else b`` defaulting expressions), plus the set of
  **lock attributes** — anything assigned ``threading.Lock()`` /
  ``RLock()`` / :func:`repro.check.sanitizer.make_lock` or annotated as
  such;
* a light flow-insensitive type inference over function bodies
  (parameter annotations, constructor calls, annotated return types,
  container element types through ``List[X]`` / ``Dict[K, V]`` /
  ``sorted()`` / iteration), enough to resolve ``runtime.service
  .submit_many(...)`` to ``AdmissionService.submit_many``;
* per-function :class:`FunctionSummary` objects: every **lock
  acquisition** (``with self._lock:`` blocks, bare ``.acquire()`` /
  ``.release()`` pairs) with the locks already held at that point, and
  every **resolved call** with the lock stack held when it runs.

The inference is deliberately conservative: a call or lock whose target
cannot be resolved contributes nothing, so the downstream analyses err
toward silence, never toward invented deadlocks.  Locks are identified
by their *owning class attribute* (``ScheduleStore._lock``), i.e. one
identity per lock field, not per instance — the same granularity the
runtime sanitizer groups by.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Qualified names treated as lock types when they appear in
#: annotations (dataclass fields, parameters).
LOCK_TYPE_NAMES = frozenset({
    "threading.Lock",
    "threading.RLock",
    "repro.check.sanitizer.OrderedLock",
})

#: Call targets whose result is a lock (constructor assignments).
LOCK_FACTORY_NAMES = frozenset({
    "threading.Lock",
    "threading.RLock",
    "repro.check.sanitizer.OrderedLock",
    "repro.check.sanitizer.make_lock",
})

#: Builtins that return their argument's container unchanged — element
#: types flow through them.
_PASSTHROUGH_CALLS = frozenset({"sorted", "list", "tuple", "reversed"})


@dataclass
class Type:
    """A resolved type: a class id, optionally with an element type."""

    cls: Optional[str] = None
    elem: Optional["Type"] = None


@dataclass
class ClassInfo:
    """One class definition and what the scan learned about it."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    attr_types: Dict[str, Type] = field(default_factory=dict)
    #: attribute names holding locks (``_lock`` and friends).
    lock_attrs: Set[str] = field(default_factory=set)
    #: attribute names assigned from ``sorted(...)`` in any method —
    #: iterating one of these is a deterministically ordered walk.
    sorted_attrs: Set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One parsed module: its tree, imports, and top-level scope."""

    name: str
    path: str
    tree: ast.Module
    source_lines: List[str]
    imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)


@dataclass(frozen=True)
class Acquisition:
    """One lock acquisition site inside a function."""

    lock: str
    line: int
    #: lock ids already held (innermost last) when this fires.
    held: Tuple[str, ...]
    #: True when the acquisition sits in a loop over a deterministically
    #: sorted iterable — multiple instances taken in a global order.
    ordered: bool = False
    #: True for a bare ``.acquire()`` inside a loop with no matching
    #: release in the same loop body: successive iterations pile up
    #: instances of the same lock class (the two-phase commit pattern).
    accumulates: bool = False


@dataclass(frozen=True)
class CallEvent:
    """One resolved call site and the locks held while it runs."""

    callee: str
    line: int
    held: Tuple[str, ...]


@dataclass
class FunctionSummary:
    """What one function does with locks and calls."""

    qualname: str
    path: str
    line: int
    acquisitions: List[Acquisition] = field(default_factory=list)
    calls: List[CallEvent] = field(default_factory=list)


@dataclass
class Program:
    """The whole analyzed tree, cross-indexed."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: qualname -> (module, class-or-None, FunctionDef)
    functions: Dict[
        str, Tuple[ModuleInfo, Optional[ClassInfo], ast.FunctionDef]
    ] = field(default_factory=dict)
    summaries: Dict[str, FunctionSummary] = field(default_factory=dict)

    def source_line(self, path: str, line: int) -> str:
        for module in self.modules.values():
            if module.path == path:
                if 1 <= line <= len(module.source_lines):
                    return module.source_lines[line - 1]
        return ""


# ---------------------------------------------------------------- scan
def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``; rooted at ``repro`` when the
    file lives in the installed tree, bare stem otherwise (fixtures)."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1] or parts
    return ".".join(parts)


def expand_paths(paths: Iterable[str]) -> List[Path]:
    """Files and directory trees (``*.py``, recursively), sorted."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise ValueError(f"not a python file or directory: {raw}")
    return files


def build_program(paths: Iterable[str]) -> Program:
    """Parse and cross-index every module under ``paths``."""
    program = Program()
    for file_path in expand_paths(paths):
        source = file_path.read_text()
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue  # the linter owns parse errors; analyses skip
        module = ModuleInfo(
            name=module_name_for(file_path),
            path=str(file_path),
            tree=tree,
            source_lines=source.splitlines(),
        )
        _scan_imports(module)
        _scan_toplevel(module)
        program.modules[module.name] = module
        for info in module.classes.values():
            program.classes[info.qualname] = info
    for module in program.modules.values():
        _harvest_class_attrs(module, program)
    _index_functions(program)
    for qualname in program.functions:
        program.summaries[qualname] = _summarize(qualname, program)
    return program


def _scan_imports(module: ModuleInfo) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module.imports[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                module.imports[local] = f"{node.module}.{alias.name}"


def _scan_toplevel(module: ModuleInfo) -> None:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            info = ClassInfo(
                qualname=f"{module.name}.{node.name}",
                module=module.name,
                name=node.name,
                node=node,
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[item.name] = item
            module.classes[node.name] = info
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[node.name] = node


def _harvest_class_attrs(module: ModuleInfo, program: Program) -> None:
    """Fill each class's attr_types / lock_attrs / sorted_attrs."""
    for info in module.classes.values():
        info.bases = [
            base for base in (
                _resolve_dotted(_dotted(b) or "", module, program)
                for b in info.node.bases
            ) if base
        ]
        # dataclass-style annotated fields in the class body
        for item in info.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                annotated = _annotation_type(
                    item.annotation, module, program
                )
                if annotated.cls is not None or annotated.elem is not None:
                    info.attr_types[item.target.id] = annotated
                if annotated.cls in LOCK_TYPE_NAMES:
                    info.lock_attrs.add(item.target.id)
        # self.x = ... assignments anywhere in the class's methods
        for method in info.methods.values():
            for node in ast.walk(method):
                if isinstance(node, ast.AnnAssign) and (
                    isinstance(node.target, ast.Attribute)
                    and isinstance(node.target.value, ast.Name)
                    and node.target.value.id == "self"
                ):
                    annotated = _annotation_type(
                        node.annotation, module, program
                    )
                    if annotated.cls is not None or annotated.elem is not None:
                        info.attr_types.setdefault(
                            node.target.attr, annotated
                        )
                    if annotated.cls in LOCK_TYPE_NAMES:
                        info.lock_attrs.add(node.target.attr)
                    continue
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    attr = target.attr
                    if _is_lock_factory(node.value, module, program):
                        info.lock_attrs.add(attr)
                        info.attr_types[attr] = Type(cls="threading.Lock")
                        continue
                    if (
                        isinstance(node.value, ast.Call)
                        and isinstance(node.value.func, ast.Name)
                        and node.value.func.id == "sorted"
                    ):
                        info.sorted_attrs.add(attr)
                    inferred = _infer_attr_assignment(
                        node.value, method, info, module, program
                    )
                    if inferred is not None and attr not in info.attr_types:
                        info.attr_types[attr] = inferred


def _infer_attr_assignment(
    value: ast.AST,
    method: ast.FunctionDef,
    info: ClassInfo,
    module: ModuleInfo,
    program: Program,
) -> Optional[Type]:
    """Best-effort type for ``self.x = <value>`` in ``method``."""
    env = _param_env(method, info, module, program)
    inferred = _eval_type(value, env, info, module, program)
    if inferred.cls is None and inferred.elem is None:
        return None
    return inferred


def _index_functions(program: Program) -> None:
    for module in program.modules.values():
        for name, node in module.functions.items():
            program.functions[f"{module.name}.{name}"] = (module, None, node)
        for info in module.classes.values():
            for name, node in info.methods.items():
                program.functions[f"{info.qualname}.{name}"] = (
                    module, info, node
                )


# ------------------------------------------------------- name resolution
def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve_dotted(
    dotted: str, module: ModuleInfo, program: Program
) -> Optional[str]:
    """A dotted textual name to a program-wide qualified name.

    Returns class qualnames for known classes, function qualnames for
    known functions, and the import-resolved dotted string otherwise
    (e.g. ``threading.Lock``) so external names stay recognizable.
    """
    if not dotted:
        return None
    head, _, rest = dotted.partition(".")
    if head in module.classes:
        resolved = module.classes[head].qualname
    elif head in module.functions:
        resolved = f"{module.name}.{head}"
    elif head in module.imports:
        resolved = module.imports[head]
    else:
        return None
    return f"{resolved}.{rest}" if rest else resolved


def _is_lock_factory(
    node: ast.AST, module: ModuleInfo, program: Program
) -> bool:
    """Is this expression a lock construction (possibly via defaulting
    ``a if cond else b`` around one)?"""
    if isinstance(node, ast.IfExp):
        return (
            _is_lock_factory(node.body, module, program)
            or _is_lock_factory(node.orelse, module, program)
        )
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func)
    if dotted is None:
        return False
    resolved = _resolve_dotted(dotted, module, program) or dotted
    if resolved in LOCK_FACTORY_NAMES:
        return True
    # `from threading import Lock` / `from repro.check.sanitizer import
    # make_lock` style: the tail name is what the import table mapped.
    return resolved.rsplit(".", 1)[-1] in {"Lock", "RLock", "make_lock",
                                           "OrderedLock"} and (
        resolved.startswith("threading.")
        or resolved.startswith("repro.check.sanitizer.")
    )


def _annotation_type(
    node: Optional[ast.AST], module: ModuleInfo, program: Program
) -> Type:
    """Resolve an annotation expression to a :class:`Type`."""
    if node is None:
        return Type()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return Type()
    if isinstance(node, ast.Subscript):
        container = _dotted(node.value) or ""
        tail = container.rsplit(".", 1)[-1]
        inner = node.slice
        if tail == "Optional":
            return _annotation_type(inner, module, program)
        if tail in {"List", "Sequence", "Iterable", "Tuple", "Set",
                    "FrozenSet", "Deque", "list", "tuple", "set"}:
            first = inner.elts[0] if isinstance(inner, ast.Tuple) else inner
            return Type(elem=_annotation_type(first, module, program))
        if tail in {"Dict", "dict", "Mapping", "MutableMapping"}:
            if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                return Type(
                    cls="dict",
                    elem=_annotation_type(inner.elts[1], module, program),
                )
        return Type()
    dotted = _dotted(node)
    if dotted is None:
        return Type()
    resolved = _resolve_dotted(dotted, module, program) or dotted
    if resolved in program.classes or resolved in LOCK_TYPE_NAMES:
        return Type(cls=resolved)
    # unresolved externals stay as dotted names so `threading.Lock`
    # annotations written against a bare `import threading` still match
    return Type(cls=resolved if "." in resolved else None)


# ------------------------------------------------------- type inference
def _param_env(
    node: ast.FunctionDef,
    info: Optional[ClassInfo],
    module: ModuleInfo,
    program: Program,
) -> Dict[str, Type]:
    env: Dict[str, Type] = {}
    args = node.args
    every = (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    )
    for arg in every:
        if arg.annotation is not None:
            env[arg.arg] = _annotation_type(arg.annotation, module, program)
    if info is not None and every and every[0].arg == "self":
        env["self"] = Type(cls=info.qualname)
    return env


def _eval_type(
    node: ast.AST,
    env: Dict[str, Type],
    info: Optional[ClassInfo],
    module: ModuleInfo,
    program: Program,
) -> Type:
    """Best-effort type of an expression under ``env``."""
    if isinstance(node, ast.Name):
        return env.get(node.id, Type())
    if isinstance(node, ast.Attribute):
        base = _eval_type(node.value, env, info, module, program)
        if base.cls is not None:
            owner = program.classes.get(base.cls)
            while owner is not None:
                if node.attr in owner.attr_types:
                    return owner.attr_types[node.attr]
                owner = next(
                    (program.classes[b] for b in owner.bases
                     if b in program.classes), None,
                )
        return Type()
    if isinstance(node, ast.IfExp):
        body = _eval_type(node.body, env, info, module, program)
        if body.cls is not None or body.elem is not None:
            return body
        return _eval_type(node.orelse, env, info, module, program)
    if isinstance(node, ast.Subscript):
        base = _eval_type(node.value, env, info, module, program)
        if base.elem is not None:
            return base.elem
        return Type()
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and (
            node.func.id in _PASSTHROUGH_CALLS
        ):
            if node.args:
                inner = _eval_type(node.args[0], env, info, module, program)
                if inner.elem is not None:
                    return inner
            return Type()
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "values",
        ):
            base = _eval_type(node.func.value, env, info, module, program)
            if base.cls == "dict" and base.elem is not None:
                return Type(elem=base.elem)
            return Type()
        callee = resolve_call(node, env, info, module, program)
        if callee is None:
            return Type()
        if callee in program.classes:
            return Type(cls=callee)
        target = program.functions.get(callee)
        if target is not None:
            callee_module, callee_class, callee_node = target
            if callee_node.returns is not None:
                return _annotation_type(
                    callee_node.returns, callee_module, program
                )
        if callee in LOCK_FACTORY_NAMES:
            return Type(cls="threading.Lock")
        return Type()
    return Type()


def resolve_call(
    node: ast.Call,
    env: Dict[str, Type],
    info: Optional[ClassInfo],
    module: ModuleInfo,
    program: Program,
) -> Optional[str]:
    """The program qualname a call lands on, or ``None``.

    Handles plain names (local/imported functions and classes — a class
    call resolves to the class qualname itself, standing in for its
    constructor), ``self.method``, and ``typed_expr.method`` where the
    receiver's class is inferable.
    """
    func = node.func
    if isinstance(func, ast.Name):
        resolved = _resolve_dotted(func.id, module, program)
        if resolved is None:
            return None
        if resolved in program.classes or resolved in program.functions:
            return resolved
        if resolved in LOCK_FACTORY_NAMES:
            return resolved
        return resolved if "." in resolved else None
    if isinstance(func, ast.Attribute):
        # module-alias or fully dotted calls: threading.Lock(), mod.f()
        dotted = _dotted(func)
        if dotted is not None:
            resolved = _resolve_dotted(dotted, module, program)
            if resolved is not None and (
                resolved in program.classes
                or resolved in program.functions
                or resolved in LOCK_FACTORY_NAMES
            ):
                return resolved
        base = _eval_type(func.value, env, info, module, program)
        if base.cls is not None:
            owner = program.classes.get(base.cls)
            while owner is not None:
                if func.attr in owner.methods:
                    return f"{owner.qualname}.{func.attr}"
                owner = next(
                    (program.classes[b] for b in owner.bases
                     if b in program.classes), None,
                )
            if base.cls in LOCK_TYPE_NAMES:
                return f"{base.cls}.{func.attr}"
        return None
    return None


# ------------------------------------------------- function summaries
def lock_identity(
    node: ast.AST,
    env: Dict[str, Type],
    info: Optional[ClassInfo],
    module: ModuleInfo,
    program: Program,
) -> Optional[str]:
    """The class-attribute identity of a lock expression, or ``None``.

    ``self._lock`` → ``Owner._lock`` (when ``_lock`` is a known lock
    attribute of the enclosing class), ``participant.lock`` →
    ``Participant.lock`` via the receiver's inferred type.  Identity is
    per *field*, not per instance: every ``ScheduleStore`` shares the
    id ``ScheduleStore._lock``, matching the sanitizer's grouping.
    """
    if not isinstance(node, ast.Attribute):
        return None
    base = _eval_type(node.value, env, info, module, program)
    if base.cls is None:
        return None
    owner = program.classes.get(base.cls)
    while owner is not None:
        if node.attr in owner.lock_attrs:
            return f"{owner.qualname}.{node.attr}"
        owner = next(
            (program.classes[b] for b in owner.bases
             if b in program.classes), None,
        )
    return None


class _SummaryWalker:
    """Extracts one function's acquisitions and resolved calls.

    The walk is linear in source order with a mutable held-lock stack:
    ``with`` items scope their locks over the block, bare ``acquire()``
    holds until the matching textual ``release()`` (or function end).
    Nested function/class definitions are skipped — their bodies do not
    run at definition time (they are summarized separately).
    """

    def __init__(
        self,
        qualname: str,
        node: ast.FunctionDef,
        info: Optional[ClassInfo],
        module: ModuleInfo,
        program: Program,
    ) -> None:
        self.summary = FunctionSummary(
            qualname=qualname, path=module.path, line=node.lineno
        )
        self._env = _param_env(node, info, module, program)
        self._info = info
        self._module = module
        self._program = program
        self._held: List[str] = []
        #: nesting stack of loop contexts: (ordered, {lock id ->
        #: acquisition indices not yet released inside this loop})
        self._loops: List[Tuple[bool, Dict[str, List[int]]]] = []
        self._root = node

    def run(self) -> FunctionSummary:
        for stmt in self._root.body:
            self._walk(stmt)
        return self.summary

    # -- helpers -------------------------------------------------------
    def _lock_of(self, node: ast.AST) -> Optional[str]:
        return lock_identity(
            node, self._env, self._info, self._module, self._program
        )

    def _record_acquire(
        self, lock: str, line: int, accumulates: bool = False
    ) -> None:
        ordered = bool(self._loops) and self._loops[-1][0]
        self.summary.acquisitions.append(Acquisition(
            lock=lock, line=line, held=tuple(self._held),
            ordered=ordered, accumulates=accumulates,
        ))

    def _record_calls(self, node: ast.AST) -> None:
        """Record every resolved call in an expression subtree."""
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            callee = resolve_call(
                child, self._env, self._info, self._module, self._program
            )
            if callee is None:
                continue
            self.summary.calls.append(CallEvent(
                callee=callee, line=child.lineno, held=tuple(self._held),
            ))

    def _iter_ordered(self, iterable: ast.AST) -> bool:
        """Is iterating this expression a deterministically sorted walk?"""
        if isinstance(iterable, ast.Call):
            func = iterable.func
            if isinstance(func, ast.Name) and func.id == "sorted":
                return True
            if isinstance(func, ast.Name) and func.id in _PASSTHROUGH_CALLS:
                return bool(iterable.args) and self._iter_ordered(
                    iterable.args[0]
                )
        if isinstance(iterable, ast.Attribute) and isinstance(
            iterable.value, ast.Name
        ) and iterable.value.id == "self" and self._info is not None:
            return iterable.attr in self._info.sorted_attrs
        return False

    # -- statement dispatch --------------------------------------------
    def _walk(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_with(stmt)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._record_calls(stmt.iter)
            self._bind_loop_target(stmt)
            ordered = self._iter_ordered(stmt.iter)
            self._walk_loop_body(stmt, ordered)
            for child in stmt.orelse:
                self._walk(child)
            return
        if isinstance(stmt, ast.While):
            self._record_calls(stmt.test)
            self._walk_loop_body(stmt, False)
            for child in stmt.orelse:
                self._walk(child)
            return
        if isinstance(stmt, ast.Expr) and self._acquire_release(stmt.value):
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._record_calls(stmt)
            self._bind_assignment(stmt)
            return
        if isinstance(stmt, ast.Try):
            self._record_calls_shallow(stmt)
            for child in (
                stmt.body
                + [h for handler in stmt.handlers for h in handler.body]
                + stmt.orelse + stmt.finalbody
            ):
                self._walk(child)
            return
        if isinstance(stmt, ast.If):
            self._record_calls(stmt.test)
            for child in stmt.body + stmt.orelse:
                self._walk(child)
            return
        # leaf statements (Return, Expr, Raise, assertions, ...)
        self._record_calls(stmt)

    def _record_calls_shallow(self, stmt: ast.Try) -> None:
        for handler in stmt.handlers:
            if handler.type is not None:
                self._record_calls(handler.type)

    def _walk_loop_body(self, stmt, ordered: bool) -> None:
        """Walk a loop body; bare acquisitions still unreleased when the
        loop ends accumulate one instance per iteration (the sorted
        shard-lock pattern), which downstream reads as a same-identity
        self-edge — allowed only when the iteration is ordered."""
        self._loops.append((ordered, {}))
        try:
            for child in stmt.body:
                self._walk(child)
        finally:
            _, unreleased = self._loops.pop()
            for indices in unreleased.values():
                for index in indices:
                    acq = self.summary.acquisitions[index]
                    self.summary.acquisitions[index] = Acquisition(
                        lock=acq.lock, line=acq.line, held=acq.held,
                        ordered=acq.ordered, accumulates=True,
                    )

    def _walk_with(self, stmt: ast.With) -> None:
        entered: List[str] = []
        for item in stmt.items:
            lock = self._lock_of(item.context_expr)
            if lock is not None:
                self._record_acquire(lock, item.context_expr.lineno)
                self._held.append(lock)
                entered.append(lock)
            else:
                self._record_calls(item.context_expr)
        try:
            for child in stmt.body:
                self._walk(child)
        finally:
            for _ in entered:
                self._held.pop()

    def _acquire_release(self, value: ast.AST) -> bool:
        """Handle ``X.acquire()`` / ``X.release()`` statements; returns
        True when the statement was consumed as lock traffic."""
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in {"acquire", "release"}
        ):
            return False
        lock = self._lock_of(value.func.value)
        if lock is None:
            return False
        if value.func.attr == "acquire":
            self._record_acquire(lock, value.lineno)
            if self._loops:
                self._loops[-1][1].setdefault(lock, []).append(
                    len(self.summary.acquisitions) - 1
                )
            self._held.append(lock)
        else:
            if lock in self._held:
                # release the innermost holding of this identity
                self._held.reverse()
                self._held.remove(lock)
                self._held.reverse()
            if self._loops and lock in self._loops[-1][1]:
                indices = self._loops[-1][1][lock]
                indices.pop()
                if not indices:
                    del self._loops[-1][1][lock]
        return True

    # -- env updates ---------------------------------------------------
    def _bind_loop_target(self, stmt: ast.For) -> None:
        value = self._dict_items_value(stmt.iter)
        if value is not None:
            # for k, v in d.items(): the value slot gets the dict's
            # element type; the key stays untyped (usually a str)
            if isinstance(stmt.target, ast.Tuple) and len(
                stmt.target.elts
            ) == 2 and isinstance(stmt.target.elts[1], ast.Name):
                self._env[stmt.target.elts[1].id] = value
            return
        elem = _eval_type(
            stmt.iter, self._env, self._info, self._module, self._program
        ).elem
        if elem is not None and isinstance(stmt.target, ast.Name):
            self._env[stmt.target.id] = elem

    def _dict_items_value(self, iterable: ast.AST) -> Optional[Type]:
        """The value type when ``iterable`` is ``d.items()`` (possibly
        wrapped in ``sorted()``/``list()``) over a typed dict."""
        if isinstance(iterable, ast.Call):
            func = iterable.func
            if isinstance(func, ast.Name) and (
                func.id in _PASSTHROUGH_CALLS and iterable.args
            ):
                return self._dict_items_value(iterable.args[0])
            if isinstance(func, ast.Attribute) and func.attr == "items":
                base = _eval_type(
                    func.value, self._env, self._info, self._module,
                    self._program,
                )
                if base.cls == "dict":
                    return base.elem
        return None

    def _bind_assignment(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                if isinstance(stmt.target, ast.Name):
                    self._env[stmt.target.id] = _annotation_type(
                        stmt.annotation, self._module, self._program
                    )
                return
            targets, value = [stmt.target], stmt.value
        else:
            return
        inferred = _eval_type(
            value, self._env, self._info, self._module, self._program
        )
        for target in targets:
            if isinstance(target, ast.Name):
                if isinstance(stmt, ast.AnnAssign):
                    annotated = _annotation_type(
                        stmt.annotation, self._module, self._program
                    )
                    if annotated.cls is not None or annotated.elem is not None:
                        inferred = annotated
                self._env[target.id] = inferred


def _summarize(qualname: str, program: Program) -> FunctionSummary:
    module, info, node = program.functions[qualname]
    return _SummaryWalker(qualname, node, info, module, program).run()


def signature_of(node: ast.FunctionDef) -> List[str]:
    """Positional parameter names in order (``self`` included)."""
    args = node.args
    return [a.arg for a in list(args.posonlyargs) + list(args.args)]
