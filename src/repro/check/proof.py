"""The trusted UNSAT-proof checker: replay, never re-search.

:func:`check_unsat_proof` re-judges a solver's "not schedulable" verdict
from the :class:`~repro.smt.proof.Certificate` alone:

* a ``learned`` step is accepted iff it has the RUP property — assuming
  its negation and unit-propagating over the input CNF plus every
  previously accepted step derives a conflict (reverse unit
  propagation, the DRAT core rule);
* a ``lemma`` step (a difference-logic theory lemma) is accepted iff
  its negative-cycle witness is exactly the set of atoms the lemma
  negates, the witness edges chain into a closed cycle, and the cycle's
  summed weight is negative — plain integer arithmetic, no theory
  solver involved;
* the final ``empty`` step is accepted iff unit propagation alone
  derives a conflict, which certifies unsatisfiability of the input.

The checker never imports the CDCL core or the theory solver; its trust
base is this module plus the passive containers in
:mod:`repro.smt.proof` and :mod:`repro.smt.terms` — an order of
magnitude smaller than the search code it audits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.smt.proof import (
    STEP_EMPTY,
    STEP_LEARNED,
    STEP_LEMMA,
    Certificate,
    ProofStep,
)
from repro.smt.terms import Atom


class CertificateError(RuntimeError):
    """A certificate failed independent verification."""


def negate_atom(atom: Atom) -> Atom:
    """Integer negation, re-derived here so the checker trusts no solver
    code: ``not (x - y <= c)`` is ``y - x <= -c - 1``."""
    return Atom(atom.y, atom.x, -atom.c - 1)


def check_unsat_proof(
    cnf: Sequence[Sequence[int]],
    proof: Sequence[ProofStep],
    atoms: Dict[int, Atom],
) -> int:
    """Verify an UNSAT proof; returns the number of steps checked.

    Raises :class:`CertificateError` on the first step that does not
    follow, or if the proof never derives the empty clause.
    """
    db = _ClauseDb()
    for clause in cnf:
        db.add(clause)
    checked = 0
    for position, step in enumerate(proof):
        checked += 1
        where = f"proof step {position} ({step.kind})"
        if step.kind == STEP_LEMMA:
            _check_lemma(step, atoms, where)
            db.add(step.clause)
        elif step.kind == STEP_LEARNED:
            if not db.propagation_conflicts(assume=[-lit for lit in step.clause]):
                raise CertificateError(
                    f"{where}: clause {step.clause} is not implied by "
                    f"reverse unit propagation"
                )
            db.add(step.clause)
        elif step.kind == STEP_EMPTY:
            if not db.propagation_conflicts(assume=()):
                raise CertificateError(
                    f"{where}: unit propagation does not refute the formula"
                )
            return checked
        else:
            raise CertificateError(f"{where}: unknown step kind {step.kind!r}")
    raise CertificateError(
        f"proof ended after {checked} steps without deriving the empty clause"
    )


def _check_lemma(step: ProofStep, atoms: Dict[int, Atom], where: str) -> None:
    """A theory lemma holds iff its negated literals name the atoms of a
    closed negative-weight cycle in the difference-constraint graph."""
    if not step.clause:
        raise CertificateError(f"{where}: empty lemma clause")
    if not step.cycle:
        raise CertificateError(f"{where}: lemma carries no cycle witness")
    asserted: List[Atom] = []
    for lit in step.clause:
        atom = atoms.get(abs(lit))
        if atom is None:
            raise CertificateError(
                f"{where}: literal {lit} names no registered atom"
            )
        # The lemma says "not all of these constraints": each negated
        # lemma literal is one asserted constraint of the conflict.
        asserted.append(negate_atom(atom) if lit > 0 else atom)
    witness = list(step.cycle)
    if sorted((a.x, a.y, a.c) for a in asserted) != sorted(
        (a.x, a.y, a.c) for a in witness
    ):
        raise CertificateError(
            f"{where}: cycle witness does not match the lemma's atoms"
        )
    total = 0
    for edge, successor in zip(witness, witness[1:] + witness[:1]):
        # atom x - y <= c is graph edge y -> x: heads must chain to tails
        if edge.x != successor.y:
            raise CertificateError(
                f"{where}: witness edges do not chain into a cycle "
                f"({edge.x!r} -> {successor.y!r})"
            )
        total += edge.c
    if total >= 0:
        raise CertificateError(
            f"{where}: witness cycle weight {total} is not negative"
        )


def verify_certificate(certificate: Optional[Certificate]) -> int:
    """Dispatch a certificate to the matching checker.

    Returns the work done: proof steps replayed for UNSAT, clauses
    evaluated for SAT.  Raises :class:`CertificateError` on any failure.
    """
    # Imported here: repro.check.model imports this module for the
    # shared error type, so the top level must stay one-directional.
    from repro.check.model import check_model

    if certificate is None:
        raise CertificateError("no certificate attached (was proof=True set?)")
    if certificate.status == "unsat":
        if certificate.proof is None:
            raise CertificateError("unsat certificate carries no proof")
        return check_unsat_proof(certificate.cnf, certificate.proof, certificate.atoms)
    if certificate.status == "sat":
        if certificate.model is None:
            raise CertificateError("sat certificate carries no model")
        return check_model(certificate.cnf, certificate.atoms, certificate.model)
    raise CertificateError(f"unknown certificate status {certificate.status!r}")


class _ClauseDb:
    """Clause store with literal-occurrence indexing for fast RUP checks.

    Clauses accepted so far are immutable; each RUP query runs its own
    unit propagation over them (two-watched literals are a solver-side
    optimization the checker deliberately avoids — correctness over
    speed in the trusted core).
    """

    def __init__(self) -> None:
        self._clauses: List[List[int]] = []
        self._occur: Dict[int, List[int]] = {}
        self._units: List[int] = []
        self._has_empty = False

    def add(self, clause: Iterable[int]) -> None:
        unique = list(dict.fromkeys(clause))
        if not unique:
            self._has_empty = True
            return
        index = len(self._clauses)
        self._clauses.append(unique)
        if len(unique) == 1:
            self._units.append(unique[0])
        for lit in unique:
            self._occur.setdefault(lit, []).append(index)

    def propagation_conflicts(self, assume: Iterable[int]) -> bool:
        """True iff unit propagation under ``assume`` derives a conflict."""
        if self._has_empty:
            return True
        value: Dict[int, bool] = {}
        trail: List[int] = []

        def set_true(lit: int) -> bool:
            """Record ``lit`` as true; False means a conflict arose."""
            if value.get(lit):
                return True
            if value.get(-lit):
                return False
            value[lit] = True
            trail.append(lit)
            return True

        for lit in assume:
            if not set_true(lit):
                return True
        for lit in self._units:
            if not set_true(lit):
                return True
        head = 0
        while head < len(trail):
            falsified = -trail[head]
            head += 1
            for index in self._occur.get(falsified, ()):
                clause = self._clauses[index]
                unit = None
                satisfied = False
                free = 0
                for lit in clause:
                    if value.get(lit):
                        satisfied = True
                        break
                    if not value.get(-lit):
                        free += 1
                        if free > 1:
                            break
                        unit = lit
                if satisfied or free > 1:
                    continue
                if free == 0:
                    return True
                assert unit is not None
                if not set_true(unit):
                    return True
        return False
