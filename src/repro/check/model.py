"""The trusted SAT-model checker: evaluate, never re-solve.

A "schedulable" verdict is only as good as its witness.  Given the
original input clauses (disjunctions of difference atoms via the
boolean-variable → atom map) and the integer model the solver returned,
:func:`check_model` evaluates every clause under the model with plain
integer arithmetic.  No solver state is consulted — a model either makes
at least one literal of every clause true, or the certificate fails.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.check.proof import CertificateError, negate_atom
from repro.smt.terms import ZERO, Atom


def check_model(
    cnf: Sequence[Sequence[int]],
    atoms: Dict[int, Atom],
    model: Dict[str, int],
) -> int:
    """Verify a model against every input clause; returns clauses checked.

    Raises :class:`~repro.check.proof.CertificateError` on the first
    clause the model does not satisfy (or on a literal/variable the
    certificate fails to define).
    """
    for position, clause in enumerate(cnf):
        if not clause:
            raise CertificateError(
                f"clause {position} is empty: no model can satisfy it"
            )
        if not any(_literal_holds(lit, atoms, model, position) for lit in clause):
            rendered = ", ".join(
                str(_atom_of_literal(lit, atoms, position)) for lit in clause
            )
            raise CertificateError(
                f"clause {position} unsatisfied by the model: [{rendered}]"
            )
    return len(cnf)


def _atom_of_literal(lit: int, atoms: Dict[int, Atom], position: int) -> Atom:
    atom = atoms.get(abs(lit))
    if atom is None:
        raise CertificateError(
            f"clause {position}: literal {lit} names no registered atom"
        )
    return atom if lit > 0 else negate_atom(atom)


def _literal_holds(
    lit: int, atoms: Dict[int, Atom], model: Dict[str, int], position: int
) -> bool:
    atom = _atom_of_literal(lit, atoms, position)
    return _value(atom.x, model, position) - _value(atom.y, model, position) <= atom.c


def _value(name: str, model: Dict[str, int], position: int) -> int:
    if name == ZERO:
        return 0
    if name not in model:
        raise CertificateError(
            f"clause {position}: model assigns no value to {name!r}"
        )
    return model[name]
