"""Interprocedural lock-order analysis: deadlocks as graph cycles.

Built on the :mod:`repro.check.callgraph` program scan, this pass
computes the **may-hold-before** relation: an edge ``A -> B`` means some
call chain acquires lock ``B`` while lock ``A`` is held — directly
(``with self._lock:`` wrapping another acquisition) or through any
number of resolved calls (``coordinator holds shard.lock -> service.
submit_many -> store.publish -> ScheduleStore._lock``).  Locks are
identified per class attribute (``ScheduleStore._lock``), the same
granularity the runtime sanitizer (:mod:`repro.check.sanitizer`)
groups by, so the static graph and the dynamic checker cross-validate.

Findings:

``lock-order``
    A cycle in the may-hold-before graph — two call chains that acquire
    the same locks in opposite orders can deadlock.  The finding quotes
    one witness call chain per edge of the cycle.

``lock-reentrant``
    The same lock identity acquired while already held: a second
    ``with self._lock:`` reached through a call chain (an A→B→A
    re-acquisition self-deadlocks a non-reentrant ``threading.Lock``),
    or a bare ``.acquire()`` in a loop that piles up instances of one
    lock class.  The loop form is *allowed* when the iteration is
    provably ordered — ``for p in self._participants:`` where
    ``_participants`` was assigned from ``sorted(...)`` — which turns
    the two-phase commit's sorted-shard-locks discipline from a comment
    into a checked invariant; such sites are reported in
    :attr:`FlowReport.ordered_sites`, not as findings.

Suppress a finding by appending ``# repro: flow-ok[rule]`` (or a bare
``# repro: flow-ok``) to the line the finding anchors on — the
acquisition or call site that creates the offending edge.

Known limitations (by design, conservative in the silent direction):
unresolved calls contribute no edges; two static identities that alias
the same runtime lock object (e.g. a lock passed across an API
boundary under a new field name) are not unified — the runtime
sanitizer tracks actual objects and covers exactly that gap.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.check.callgraph import (
    Acquisition,
    FunctionSummary,
    Program,
    build_program,
)

RULE_LOCK_ORDER = "lock-order"
RULE_LOCK_REENTRANT = "lock-reentrant"

FLOW_RULES: Tuple[str, ...] = (RULE_LOCK_ORDER, RULE_LOCK_REENTRANT)

_SUPPRESS = re.compile(r"repro:\s*flow-ok(?:\[([a-z\-, ]+)\])?")

#: Call-chain depth bound; deeper lock trails are ignored (and counted
#: in the report) rather than risking exponential walks.
MAX_DEPTH = 24


@dataclass(frozen=True)
class Frame:
    """One step of a witness chain."""

    function: str
    path: str
    line: int

    def render(self) -> str:
        return f"{self.function} ({self.path}:{self.line})"


@dataclass(frozen=True)
class LockEdge:
    """``held`` may be held when ``acquired`` is acquired.

    ``chain`` walks from the function that already holds ``held`` down
    to the statement that takes ``acquired``; ``origin`` is the first
    frame — the acquisition or call site a suppression comment must
    annotate.
    """

    held: str
    acquired: str
    chain: Tuple[Frame, ...]

    @property
    def origin(self) -> Frame:
        return self.chain[0]

    def render(self) -> str:
        steps = " -> ".join(frame.render() for frame in self.chain)
        return f"{short(self.held)} -> {short(self.acquired)} via {steps}"

    def to_dict(self) -> Dict:
        return {
            "held": self.held,
            "acquired": self.acquired,
            "chain": [
                {"function": f.function, "path": f.path, "line": f.line}
                for f in self.chain
            ],
        }


@dataclass(frozen=True)
class FlowFinding:
    """One lock-order or reentrancy defect, with witnesses."""

    rule: str
    path: str
    line: int
    message: str
    locks: Tuple[str, ...]
    witnesses: Tuple[LockEdge, ...]

    def render(self) -> str:
        lines = [f"{self.path}:{self.line}: [{self.rule}] {self.message}"]
        for edge in self.witnesses:
            lines.append(f"    {edge.render()}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "locks": list(self.locks),
            "witnesses": [edge.to_dict() for edge in self.witnesses],
        }


@dataclass
class FlowReport:
    """Everything the analysis learned, findings and clean facts alike."""

    findings: List[FlowFinding] = field(default_factory=list)
    edges: List[LockEdge] = field(default_factory=list)
    #: same-identity loop acquisitions proven deterministically ordered
    #: (checked invariants, not findings).
    ordered_sites: List[Frame] = field(default_factory=list)
    functions_analyzed: int = 0
    locks_seen: List[str] = field(default_factory=list)
    truncated_chains: int = 0

    def to_dict(self) -> Dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "edges": [e.to_dict() for e in self.edges],
            "ordered_sites": [
                {"function": f.function, "path": f.path, "line": f.line}
                for f in self.ordered_sites
            ],
            "functions_analyzed": self.functions_analyzed,
            "locks_seen": self.locks_seen,
            "truncated_chains": self.truncated_chains,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def short(lock_id: str) -> str:
    """``repro.service.store.ScheduleStore._lock`` -> ``ScheduleStore._lock``."""
    parts = lock_id.rsplit(".", 2)
    return ".".join(parts[-2:]) if len(parts) >= 2 else lock_id


def analyze_flow(paths: Iterable[str]) -> FlowReport:
    """Run the whole-program lock-order analysis over ``paths``."""
    program = build_program(paths)
    return analyze_program(program)


def analyze_program(program: Program) -> FlowReport:
    report = FlowReport(functions_analyzed=len(program.summaries))
    closure = _TransitiveAcquires(program, report)
    edges: Dict[Tuple[str, str], LockEdge] = {}
    reentrant: Dict[Tuple[str, int], FlowFinding] = {}
    locks_seen: Set[str] = set()

    for summary in program.summaries.values():
        for acq in summary.acquisitions:
            locks_seen.add(acq.lock)
            frame = Frame(summary.qualname, summary.path, acq.line)
            for held in acq.held:
                _note_edge(edges, held, acq.lock, (frame,))
                if held == acq.lock:
                    _note_reentrant(
                        reentrant, program, acq.lock, (frame,),
                        through="a nested acquisition",
                    )
            if acq.accumulates:
                # one instance per loop iteration: a same-identity
                # self-edge unless the iteration order is deterministic
                if acq.ordered:
                    report.ordered_sites.append(frame)
                else:
                    _note_reentrant(
                        reentrant, program, acq.lock, (frame,),
                        through=(
                            "a loop acquiring one instance per iteration "
                            "in unspecified order"
                        ),
                    )
        for call in summary.calls:
            if not call.held:
                continue
            trails = closure.acquires(call.callee)
            if not trails:
                continue
            frame = Frame(summary.qualname, summary.path, call.line)
            for lock, trail in trails.items():
                chain = (frame,) + trail
                for held in call.held:
                    _note_edge(edges, held, lock, chain)
                    if held == lock:
                        _note_reentrant(
                            reentrant, program, lock, chain,
                            through="a call chain re-acquiring it",
                        )

    report.edges = sorted(
        edges.values(), key=lambda e: (e.held, e.acquired)
    )
    report.locks_seen = sorted(locks_seen)
    findings = list(reentrant.values())
    findings.extend(_cycle_findings(edges))
    findings = [f for f in findings if not _suppressed(f, program)]
    findings.sort(key=lambda f: (f.rule, f.path, f.line))
    report.findings = findings
    report.ordered_sites.sort(key=lambda f: (f.path, f.line))
    return report


def _note_edge(
    edges: Dict[Tuple[str, str], LockEdge],
    held: str,
    acquired: str,
    chain: Tuple[Frame, ...],
) -> None:
    if held == acquired:
        return  # self-edges are the reentrancy rule's business
    key = (held, acquired)
    existing = edges.get(key)
    if existing is None or len(chain) < len(existing.chain):
        edges[key] = LockEdge(held=held, acquired=acquired, chain=chain)


def _note_reentrant(
    findings: Dict[Tuple[str, int], FlowFinding],
    program: Program,
    lock: str,
    chain: Tuple[Frame, ...],
    through: str,
) -> None:
    origin = chain[0]
    key = (origin.path, origin.line)
    if key in findings:
        return
    edge = LockEdge(held=lock, acquired=lock, chain=chain)
    findings[key] = FlowFinding(
        rule=RULE_LOCK_REENTRANT,
        path=origin.path,
        line=origin.line,
        message=(
            f"{short(lock)} acquired while already held, through "
            f"{through}; a non-reentrant Lock self-deadlocks (order "
            f"instances deterministically, or restructure)"
        ),
        locks=(lock,),
        witnesses=(edge,),
    )


def _cycle_findings(
    edges: Dict[Tuple[str, str], LockEdge]
) -> List[FlowFinding]:
    """One finding per strongly-connected component of 2+ locks."""
    graph: Dict[str, Set[str]] = {}
    for held, acquired in edges:
        graph.setdefault(held, set()).add(acquired)
        graph.setdefault(acquired, set())
    findings = []
    for component in _tarjan(graph):
        if len(component) < 2:
            continue
        members = set(component)
        cycle_edges = _witness_cycle(component, edges, members)
        origin = cycle_edges[0].origin
        ordering = " -> ".join(short(lock) for lock in component)
        findings.append(FlowFinding(
            rule=RULE_LOCK_ORDER,
            path=origin.path,
            line=origin.line,
            message=(
                f"potential deadlock: locks {{{ordering}}} form a cycle "
                f"in the may-hold-before relation; impose one global "
                f"acquisition order"
            ),
            locks=tuple(component),
            witnesses=tuple(cycle_edges),
        ))
    return findings


def _witness_cycle(
    component: Sequence[str],
    edges: Dict[Tuple[str, str], LockEdge],
    members: Set[str],
) -> List[LockEdge]:
    """Edges forming one concrete cycle through the component."""
    start = component[0]
    # walk greedily inside the SCC until we loop back to the start
    path: List[LockEdge] = []
    seen: Set[str] = set()
    node = start
    while node not in seen:
        seen.add(node)
        candidates = sorted(
            acquired for (held, acquired) in edges
            if held == node and acquired in members
        )
        # prefer closing the cycle, then unvisited nodes
        nxt = None
        if start in candidates and path:
            nxt = start
        else:
            nxt = next(
                (c for c in candidates if c not in seen), None
            ) or (candidates[0] if candidates else None)
        if nxt is None:
            break
        path.append(edges[(node, nxt)])
        if nxt == start:
            return path
        node = nxt
    # fell off (shouldn't happen in an SCC); return whatever we walked
    return path or [
        edge for key, edge in sorted(edges.items())
        if key[0] in members and key[1] in members
    ][:1]


def _tarjan(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components, each sorted, deterministic order."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    def strongconnect(node: str) -> None:
        work = [(node, iter(sorted(graph.get(node, ()))))]
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[current] = min(low[current], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[current])
            if low[current] == index[current]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                components.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return components


class _TransitiveAcquires:
    """Memoized ``function -> {lock: shortest witness trail}`` closure."""

    def __init__(self, program: Program, report: FlowReport) -> None:
        self._program = program
        self._report = report
        self._cache: Dict[str, Dict[str, Tuple[Frame, ...]]] = {}
        self._in_progress: Set[str] = set()

    def acquires(
        self, qualname: str, depth: int = 0
    ) -> Dict[str, Tuple[Frame, ...]]:
        if qualname in self._cache:
            return self._cache[qualname]
        if qualname in self._in_progress:
            return {}  # recursion: the outer frame owns the result
        summary = self._program.summaries.get(qualname)
        if summary is None:
            # calling a class = running its __init__
            init = f"{qualname}.__init__"
            if qualname in self._program.classes and (
                init in self._program.summaries
            ):
                return self.acquires(init, depth)
            return {}
        if depth > MAX_DEPTH:
            self._report.truncated_chains += 1
            return {}
        self._in_progress.add(qualname)
        try:
            trails: Dict[str, Tuple[Frame, ...]] = {}
            for acq in summary.acquisitions:
                frame = Frame(summary.qualname, summary.path, acq.line)
                trail = (frame,)
                best = trails.get(acq.lock)
                if best is None or len(trail) < len(best):
                    trails[acq.lock] = trail
            for call in summary.calls:
                nested = self.acquires(call.callee, depth + 1)
                if not nested:
                    continue
                frame = Frame(summary.qualname, summary.path, call.line)
                for lock, trail in nested.items():
                    candidate = (frame,) + trail
                    best = trails.get(lock)
                    if best is None or len(candidate) < len(best):
                        trails[lock] = candidate
            self._cache[qualname] = trails
            return trails
        finally:
            self._in_progress.discard(qualname)


def _suppressed(finding: FlowFinding, program: Program) -> bool:
    line = program.source_line(finding.path, finding.line)
    match = _SUPPRESS.search(line)
    if match is None:
        return False
    listed = match.group(1)
    if listed is None:
        return True
    return finding.rule in {name.strip() for name in listed.split(",")}
