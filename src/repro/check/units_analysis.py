"""Time-unit dimensional analysis over identifier suffixes.

The repo's convention (enforced informally since PR 1, formally here)
is that every duration-carrying identifier names its unit as the last
underscore-separated token: ``deadline_ns``, ``horizon_us``,
``objective_ms``, ``timeout_s``, ``drift_ppb``, ``rate_hz``,
``bandwidth_bps``.  This pass treats those suffixes as dimension
annotations and propagates them through assignments, arithmetic, and
call boundaries:

``unit-mismatch``
    Two different known units meet in ``+``/``-``/``%``, a comparison,
    ``min``/``max``, or an assignment whose target names a different
    unit than its value (``deadline_ns = horizon_us + 5``).

``unit-call``
    A value with a known unit flows into a parameter (keyword name,
    resolved positional parameter, or a ``repro.model.units``
    converter) that names a *different* unit —
    ``microseconds(budget_ns)`` or ``submit(period_ns=gap_us)``.

``unit-return``
    A function whose name carries a unit suffix returns an expression
    with a different known unit.

``unit-literal`` (pedantic, off by default)
    A bare numeric literal passed to a unit-suffixed parameter.
    Literals are otherwise polymorphic — ``period_ns + 100`` is fine —
    so this rule exists for audits, not for CI.

The conversion constants ``NS_PER_US``/``NS_PER_MS``/``NS_PER_S`` are
understood structurally: multiplying a ``us`` value by ``NS_PER_US``
yields ``ns``, floor-dividing an ``ns`` value by ``NS_PER_MS`` yields
``ms``, and in additive/comparison position the constant itself is an
``ns`` quantity (``if value_ns >= NS_PER_S``).  Unknown units are
compatible with everything — the analysis only speaks when both sides
are known, so it can run ``--strict`` without guessing.

Suppress with ``# repro: flow-ok[rule]`` on the flagged line.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.check.callgraph import (
    ModuleInfo,
    Program,
    build_program,
    resolve_call,
    signature_of,
    _param_env,
)
from repro.check.flow import _SUPPRESS

RULE_UNIT_MISMATCH = "unit-mismatch"
RULE_UNIT_CALL = "unit-call"
RULE_UNIT_RETURN = "unit-return"
RULE_UNIT_LITERAL = "unit-literal"

UNITS_RULES: Tuple[str, ...] = (
    RULE_UNIT_MISMATCH, RULE_UNIT_CALL, RULE_UNIT_RETURN, RULE_UNIT_LITERAL,
)
#: ``unit-literal`` is pedantic (benign config literals are idiomatic),
#: so the default — and the CI gate — runs without it.
DEFAULT_RULES: Tuple[str, ...] = (
    RULE_UNIT_MISMATCH, RULE_UNIT_CALL, RULE_UNIT_RETURN,
)

#: Recognized unit suffixes.  A name carries a unit only when the
#: suffix is a distinct trailing token (``deadline_ns`` yes, ``ns`` or
#: ``attempts`` no).
UNIT_SUFFIXES = frozenset({"ns", "us", "ms", "s", "ppb", "hz", "bps"})

#: literal sentinel — polymorphic, adopts any unit it meets.
LITERAL = "<literal>"

#: ``NS_PER_X`` conversion constants: name -> the unit X they scale.
_NS_FACTORS = {
    "NS_PER_US": "us",
    "NS_PER_MS": "ms",
    "NS_PER_S": "s",
}

#: Link-speed constants from ``repro.model.units``.
_BPS_CONSTANTS = frozenset({"MBPS_10", "MBPS_100", "GBPS_1"})

#: ``repro.model.units`` converters: qualname suffix ->
#: (argument unit, return unit).
_CONVERTERS = {
    "repro.model.units.nanoseconds": ("ns", "ns"),
    "repro.model.units.microseconds": ("us", "ns"),
    "repro.model.units.milliseconds": ("ms", "ns"),
    "repro.model.units.seconds": ("s", "ns"),
    "repro.model.units.ns_to_us": ("ns", "us"),
    "repro.model.units.ns_to_ms": ("ns", "ms"),
    "repro.model.units.format_ns": ("ns", None),
}

#: Builtins that pass their argument's unit through unchanged.
_PASSTHROUGH_BUILTINS = frozenset({"int", "float", "round", "abs"})
#: Builtins whose arguments must agree (and whose result adopts them).
_AGREEING_BUILTINS = frozenset({"min", "max", "sum"})


class _Factor(str):
    """An ``NS_PER_X`` constant: ``ns`` additively, a scaler in ``*``/``/``."""

    __slots__ = ()


def unit_of_name(name: str) -> Optional[str]:
    if "_" not in name:
        return None
    suffix = name.rsplit("_", 1)[1]
    return suffix if suffix in UNIT_SUFFIXES else None


@dataclass(frozen=True)
class UnitFinding:
    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class UnitsReport:
    findings: List[UnitFinding] = field(default_factory=list)
    functions_analyzed: int = 0
    rules: Tuple[str, ...] = DEFAULT_RULES

    def to_dict(self) -> Dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "functions_analyzed": self.functions_analyzed,
            "rules": list(self.rules),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def analyze_units(
    paths: Iterable[str], rules: Sequence[str] = DEFAULT_RULES
) -> UnitsReport:
    """Run the unit analysis over every function in ``paths``."""
    program = build_program(paths)
    return analyze_units_program(program, rules)


def analyze_units_program(
    program: Program, rules: Sequence[str] = DEFAULT_RULES
) -> UnitsReport:
    unknown = set(rules) - set(UNITS_RULES)
    if unknown:
        raise ValueError(f"unknown units rules: {sorted(unknown)}")
    report = UnitsReport(rules=tuple(rules))
    for module, info, node in program.functions.values():
        checker = _FunctionChecker(program, module, info, node, set(rules))
        checker.run()
        report.findings.extend(checker.findings)
        report.functions_analyzed += 1
    report.findings = [
        f for f in report.findings
        if not _suppressed(f, program)
    ]
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report


def _suppressed(finding: UnitFinding, program: Program) -> bool:
    line = program.source_line(finding.path, finding.line)
    match = _SUPPRESS.search(line)
    if match is None:
        return False
    listed = match.group(1)
    if listed is None:
        return True
    return finding.rule in {name.strip() for name in listed.split(",")}


def _compatible(a: Optional[str], b: Optional[str]) -> bool:
    if a is None or b is None or a == LITERAL or b == LITERAL:
        return True
    return str(a) == str(b)


def _merge(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Unit of a combination of compatible operands."""
    for candidate in (a, b):
        if candidate is not None and candidate != LITERAL:
            return str(candidate)
    if a == LITERAL or b == LITERAL:
        return LITERAL
    return None


def _as_quantity(unit: Optional[str]) -> Optional[str]:
    """In additive/compare position an ``NS_PER_X`` constant *is* ns."""
    return "ns" if isinstance(unit, _Factor) else unit


def _describe(unit: Optional[str]) -> str:
    return "a literal" if unit == LITERAL else str(unit)


class _FunctionChecker:
    """Infers and checks units through one function body."""

    def __init__(
        self,
        program: Program,
        module: ModuleInfo,
        info,  # Optional[ClassInfo]
        node: ast.FunctionDef,
        rules: set,
    ) -> None:
        self.program = program
        self.module = module
        self.info = info
        self.node = node
        self.rules = rules
        self.findings: List[UnitFinding] = []
        self.type_env = _param_env(node, info, module, program)
        self.env: Dict[str, Optional[str]] = {}
        for arg in list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        ):
            unit = unit_of_name(arg.arg)
            if unit:
                self.env[arg.arg] = unit
        self.return_unit = unit_of_name(node.name)

    # -- plumbing -------------------------------------------------------
    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        if rule not in self.rules:
            return
        self.findings.append(UnitFinding(
            rule=rule,
            path=self.module.path,
            line=getattr(node, "lineno", self.node.lineno),
            message=message,
        ))

    # -- statements -----------------------------------------------------
    def run(self) -> None:
        self._walk(self.node.body)

    def _walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            unit = self.infer(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, unit, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            unit = self.infer(stmt.value) if stmt.value is not None else None
            self._bind_target(stmt.target, unit, stmt)
        elif isinstance(stmt, ast.AugAssign):
            value_unit = self.infer(stmt.value)
            target_unit = self.infer(stmt.target)
            if isinstance(stmt.op, (ast.Add, ast.Sub, ast.Mod)):
                self._check_additive(stmt, target_unit, value_unit)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                unit = self.infer(stmt.value)
                if self.return_unit and not _compatible(
                    unit, self.return_unit
                ):
                    self._report(
                        RULE_UNIT_RETURN, stmt,
                        f"{self.node.name}() is named as returning "
                        f"{self.return_unit} but returns "
                        f"{_describe(unit)}",
                    )
        elif isinstance(stmt, (ast.If, ast.While)):
            self.infer(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self.infer(stmt.iter)
            self._bind_target(stmt.target, None, stmt, check=False)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.infer(item.context_expr)
            self._walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body)
            for handler in stmt.handlers:
                self._walk(handler.body)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
        elif isinstance(stmt, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.infer(child)
        # nested defs/classes have their own checker pass; skip here

    def _bind_target(
        self,
        target: ast.expr,
        unit: Optional[str],
        stmt: ast.stmt,
        check: bool = True,
    ) -> None:
        if isinstance(target, ast.Name):
            declared = unit_of_name(target.id)
            if declared:
                if check and not _compatible(unit, declared):
                    self._report(
                        RULE_UNIT_MISMATCH, stmt,
                        f"{target.id} ({declared}) assigned "
                        f"{_describe(unit)}",
                    )
                self.env[target.id] = declared
            else:
                self.env[target.id] = (
                    unit if unit != LITERAL else None
                )
        elif isinstance(target, ast.Attribute):
            declared = unit_of_name(target.attr)
            if declared and check and not _compatible(unit, declared):
                self._report(
                    RULE_UNIT_MISMATCH, stmt,
                    f"{ast.unparse(target)} ({declared}) assigned "
                    f"{_describe(unit)}",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, None, stmt, check=False)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, None, stmt, check=False)

    # -- expressions ----------------------------------------------------
    def infer(self, node: Optional[ast.expr]) -> Optional[str]:
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return None
            if isinstance(node.value, (int, float)):
                return LITERAL
            return None
        if isinstance(node, ast.Name):
            if node.id in _NS_FACTORS:
                return _Factor(_NS_FACTORS[node.id])
            if node.id in _BPS_CONSTANTS:
                return "bps"
            if node.id in self.env:
                return self.env[node.id]
            return unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            self.infer(node.value)
            if node.attr in _NS_FACTORS:
                return _Factor(_NS_FACTORS[node.attr])
            if node.attr in _BPS_CONSTANTS:
                return "bps"
            return unit_of_name(node.attr)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.Compare):
            left_unit = self.infer(node.left)
            for comparator in node.comparators:
                right_unit = self.infer(comparator)
                self._check_additive(node, left_unit, right_unit,
                                     context="compared with")
                left_unit = right_unit
            return None
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            then_unit = self.infer(node.body)
            else_unit = self.infer(node.orelse)
            return _merge(then_unit, else_unit) if _compatible(
                then_unit, else_unit
            ) else None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.infer(value)
            return None
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for element in node.elts:
                self.infer(element)
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                self.infer(key)
            for value in node.values:
                self.infer(value)
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.infer(value.value)
            return None
        if isinstance(node, ast.Subscript):
            self.infer(node.value)
            if isinstance(node.slice, ast.expr):
                self.infer(node.slice)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for generator in node.generators:
                self.infer(generator.iter)
            # comprehension targets shadow; element unit not tracked
            return None
        if isinstance(node, ast.DictComp):
            for generator in node.generators:
                self.infer(generator.iter)
            return None
        if isinstance(node, ast.Starred):
            return self.infer(node.value)
        if isinstance(node, ast.Await):
            return self.infer(node.value)
        if isinstance(node, ast.Lambda):
            return None
        return None

    def _check_additive(
        self,
        node: ast.AST,
        left: Optional[str],
        right: Optional[str],
        context: str = "combined with",
    ) -> None:
        left, right = _as_quantity(left), _as_quantity(right)
        if not _compatible(left, right):
            self._report(
                RULE_UNIT_MISMATCH, node,
                f"{_describe(left)} {context} {_describe(right)}",
            )

    def _infer_binop(self, node: ast.BinOp) -> Optional[str]:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mod)):
            self._check_additive(node, left, right)
            return _merge(_as_quantity(left), _as_quantity(right))
        if isinstance(node.op, ast.Mult):
            for factor, other, operand in (
                (left, right, node.right), (right, left, node.left),
            ):
                if isinstance(factor, _Factor):
                    scaled = str(factor)
                    if other is not None and other != LITERAL and (
                        not isinstance(other, _Factor)
                    ) and other != scaled:
                        self._report(
                            RULE_UNIT_MISMATCH, node,
                            f"NS_PER_{scaled.upper()} scales a {scaled} "
                            f"value but got {_describe(other)}",
                        )
                    return "ns"
            if left == LITERAL or left is None:
                return right if right != LITERAL else (
                    LITERAL if left == LITERAL else None
                )
            if right == LITERAL or right is None:
                return left
            return None  # unit * unit: dimension not tracked
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if isinstance(right, _Factor):
                scaled = str(right)
                if left is not None and left != LITERAL and (
                    not isinstance(left, _Factor)
                ) and left != "ns":
                    self._report(
                        RULE_UNIT_MISMATCH, node,
                        f"dividing {_describe(left)} by NS_PER_"
                        f"{scaled.upper()} expects ns",
                    )
                return scaled
            if left is not None and left != LITERAL and left == right:
                return None  # ratio of like units is dimensionless
            if right == LITERAL or right is None:
                return left if left != LITERAL else LITERAL
            return None
        return None

    def _infer_call(self, node: ast.Call) -> Optional[str]:
        arg_units = [self.infer(arg) for arg in node.args]
        kw_units = {
            kw.arg: self.infer(kw.value)
            for kw in node.keywords if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self.infer(kw.value)

        # keyword names are signatures in miniature: check them even
        # when the callee cannot be resolved (dataclass constructors).
        for kw in node.keywords:
            if kw.arg is None:
                continue
            declared = unit_of_name(kw.arg)
            if not declared:
                continue
            unit = kw_units[kw.arg]
            if not _compatible(unit, declared):
                self._report(
                    RULE_UNIT_CALL, kw.value,
                    f"argument {kw.arg}= expects {declared} but got "
                    f"{_describe(unit)}",
                )
            elif unit == LITERAL:
                self._report(
                    RULE_UNIT_LITERAL, kw.value,
                    f"bare literal passed to {declared}-carrying "
                    f"argument {kw.arg}=",
                )

        func = node.func
        if isinstance(func, ast.Name) and func.id in _PASSTHROUGH_BUILTINS:
            return arg_units[0] if arg_units else None
        if isinstance(func, ast.Name) and func.id in _AGREEING_BUILTINS:
            result: Optional[str] = None
            for unit in arg_units:
                self._check_additive(node, result, unit)
                result = _merge(result, unit)
            return result

        callee = resolve_call(
            node, self.type_env, self.info, self.module, self.program
        )
        if callee is not None:
            converter = _CONVERTERS.get(callee)
            if converter is not None:
                expected, returned = converter
                if arg_units and not _compatible(arg_units[0], expected):
                    self._report(
                        RULE_UNIT_CALL, node.args[0],
                        f"{callee.rsplit('.', 1)[1]}() expects {expected} "
                        f"but got {_describe(arg_units[0])}",
                    )
                return returned
            entry = self.program.functions.get(callee)
            if entry is None and callee in self.program.classes:
                entry = self.program.functions.get(f"{callee}.__init__")
            if entry is not None:
                params = signature_of(entry[2])
                offset = 1 if params[:1] == ("self",) else 0
                for index, unit in enumerate(arg_units):
                    slot = index + offset
                    if slot >= len(params):
                        break
                    declared = unit_of_name(params[slot])
                    if not declared:
                        continue
                    if not _compatible(unit, declared):
                        self._report(
                            RULE_UNIT_CALL, node.args[index],
                            f"parameter {params[slot]} of "
                            f"{callee.rsplit('.', 1)[1]}() expects "
                            f"{declared} but got {_describe(unit)}",
                        )
                    elif unit == LITERAL:
                        self._report(
                            RULE_UNIT_LITERAL, node.args[index],
                            f"bare literal passed to {declared}-carrying "
                            f"parameter {params[slot]} of "
                            f"{callee.rsplit('.', 1)[1]}()",
                        )
            return unit_of_name(callee.rsplit(".", 1)[1])

        # unresolved: the method's own name is still a unit signature
        # (time.monotonic_ns(), store.version_ns(), ...)
        if isinstance(func, ast.Attribute):
            self.infer(func.value)
            return unit_of_name(func.attr)
        if isinstance(func, ast.Name):
            return unit_of_name(func.id)
        self.infer(func)
        return None
