"""``python -m repro check`` — the static-analysis command surface.

``check lint PATH... [--strict] [--rule RULE]``
    Run the repo-invariant AST linter.  Findings print one per line as
    ``path:line:col: [rule] message``; ``--strict`` exits 1 when any
    finding survives suppressions (the CI mode), otherwise findings are
    reported and the exit code stays 0.

``check proof CERT.json``
    Replay an UNSAT certificate: every theory lemma's negative-cycle
    witness is summed, every learned clause is checked by reverse unit
    propagation, and the proof must derive the empty clause.

``check model CERT.json``
    Evaluate a SAT certificate's model against every input clause.

``check flow PATH... [--strict] [--json] [--graph]``
    Whole-program lock-order analysis: builds the may-hold-before
    relation across call boundaries and reports cycles (potential
    deadlocks) and re-entrant acquisitions, each with witness call
    chains.  ``--graph`` also prints every hold-before edge and the
    checked ordered-acquisition sites.

``check units PATH... [--strict] [--json] [--rule RULE]``
    Time-unit dimensional analysis over ``_ns``/``_us``/``_ms``/``_s``/
    ``_ppb``/``_hz``/``_bps`` suffixes.  The pedantic ``unit-literal``
    rule is off unless selected with ``--rule``.

Both analyses honor ``# repro: flow-ok[rule]`` suppressions and emit
machine-readable reports with ``--json``.
"""

from __future__ import annotations

import sys

from repro.check.flow import analyze_flow
from repro.check.lint import ALL_RULES, lint_paths
from repro.check.proof import CertificateError, verify_certificate
from repro.check.units_analysis import DEFAULT_RULES, UNITS_RULES, analyze_units
from repro.smt.proof import load_certificate


def add_check_parser(subparsers) -> None:
    """Attach the ``check`` subcommand to the top-level CLI parser."""
    check = subparsers.add_parser(
        "check", help="static analysis: repo lint and solver certificates"
    )
    check_sub = check.add_subparsers(dest="check_command", required=True)

    lint = check_sub.add_parser(
        "lint", help="run the repo-invariant AST linter"
    )
    lint.add_argument("paths", nargs="+",
                      help="python files or directory trees")
    lint.add_argument("--strict", action="store_true",
                      help="exit 1 on any finding (CI mode)")
    lint.add_argument("--rule", action="append", dest="rules",
                      choices=ALL_RULES, metavar="RULE",
                      help=f"restrict to specific rules "
                           f"(choices: {', '.join(ALL_RULES)})")

    proof = check_sub.add_parser(
        "proof", help="replay an UNSAT proof certificate"
    )
    proof.add_argument("certificate", help="certificate JSON file")

    model = check_sub.add_parser(
        "model", help="evaluate a SAT certificate's model"
    )
    model.add_argument("certificate", help="certificate JSON file")

    flow = check_sub.add_parser(
        "flow", help="interprocedural lock-order analysis"
    )
    flow.add_argument("paths", nargs="+",
                      help="python files or directory trees")
    flow.add_argument("--strict", action="store_true",
                      help="exit 1 on any finding (CI mode)")
    flow.add_argument("--json", action="store_true",
                      help="emit the full report as JSON")
    flow.add_argument("--graph", action="store_true",
                      help="also print every may-hold-before edge")

    units = check_sub.add_parser(
        "units", help="time-unit dimensional analysis"
    )
    units.add_argument("paths", nargs="+",
                       help="python files or directory trees")
    units.add_argument("--strict", action="store_true",
                       help="exit 1 on any finding (CI mode)")
    units.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")
    units.add_argument("--rule", action="append", dest="rules",
                       choices=UNITS_RULES, metavar="RULE",
                       help=f"restrict to specific rules "
                            f"(choices: {', '.join(UNITS_RULES)}; default "
                            f"{', '.join(DEFAULT_RULES)})")


def run_check(args) -> int:
    if args.check_command == "lint":
        return _run_lint(args)
    if args.check_command == "proof":
        return _run_certificate(args, expect="unsat")
    if args.check_command == "model":
        return _run_certificate(args, expect="sat")
    if args.check_command == "flow":
        return _run_flow(args)
    if args.check_command == "units":
        return _run_units(args)
    raise SystemExit(f"unknown check command {args.check_command!r}")


def _run_flow(args) -> int:
    try:
        report = analyze_flow(args.paths)
    except (OSError, SyntaxError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(report.to_json())
    else:
        for finding in report.findings:
            print(finding.render())
        if args.graph:
            for edge in report.edges:
                print(f"edge: {edge.render()}")
            for site in report.ordered_sites:
                print(f"ordered: {site.render()}")
        print(
            f"{len(report.findings)} findings, {len(report.edges)} "
            f"hold-before edges over {len(report.locks_seen)} locks, "
            f"{len(report.ordered_sites)} checked ordered sites "
            f"({report.functions_analyzed} functions)",
            file=sys.stderr,
        )
    return 1 if args.strict and report.findings else 0


def _run_units(args) -> int:
    rules = tuple(args.rules) if args.rules else DEFAULT_RULES
    try:
        report = analyze_units(args.paths, rules=rules)
    except (OSError, SyntaxError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(report.to_json())
    else:
        for finding in report.findings:
            print(finding.render())
        print(
            f"{len(report.findings)} findings "
            f"({report.functions_analyzed} functions, rules: "
            f"{', '.join(report.rules)})",
            file=sys.stderr,
        )
    return 1 if args.strict and report.findings else 0


def _run_lint(args) -> int:
    try:
        findings = lint_paths(args.paths, rules=args.rules)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun}", file=sys.stderr)
        return 1 if args.strict else 0
    return 0


def _run_certificate(args, expect: str) -> int:
    try:
        certificate = load_certificate(args.certificate)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load certificate: {exc}", file=sys.stderr)
        return 2
    if certificate.status != expect:
        print(
            f"error: certificate status is {certificate.status!r}; "
            f"this command checks {expect!r} certificates",
            file=sys.stderr,
        )
        return 2
    try:
        checked = verify_certificate(certificate)
    except CertificateError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    unit = "proof steps replayed" if expect == "unsat" else "clauses evaluated"
    print(
        f"OK: {certificate.status} certificate verified "
        f"({checked} {unit}, {len(certificate.cnf)} input clauses, "
        f"{len(certificate.atoms)} atoms)"
    )
    return 0
