"""repro.check — static analysis and independent result verification.

Three pillars, all deliberately outside the code they judge:

* **Proof certificates** (:mod:`repro.check.proof`,
  :mod:`repro.check.model`): replay the DPLL(T) solver's UNSAT proofs
  by reverse unit propagation plus negative-cycle arithmetic, and
  evaluate SAT models against every input constraint — the solver is
  untrusted, the checker is trusted and an order of magnitude smaller.
* **Repo-invariant linter** (:mod:`repro.check.lint`): an AST pass
  enforcing the timing/locking disciplines this codebase depends on
  (no wall-clock reads in deterministic code, integer-nanosecond
  arithmetic, lock-guarded instrument mutation, no bare ``except``,
  well-formed annotations).
* **Whole-program concurrency & unit analysis**
  (:mod:`repro.check.flow`, :mod:`repro.check.units_analysis`, on the
  :mod:`repro.check.callgraph` substrate): interprocedural lock-order
  analysis that reports cycles in the may-hold-before relation with
  witness call chains, and time-unit dimensional analysis over
  ``_ns``/``_us``/... suffixes.  The runtime half,
  :mod:`repro.check.sanitizer`, enforces the same lock order
  dynamically when ``REPRO_SANITIZE_LOCKS`` is set.

``python -m repro check {proof,model,lint,flow,units}`` is the CLI
face (:mod:`repro.check.cli`).
"""

from repro.check.flow import (
    FLOW_RULES,
    FlowFinding,
    FlowReport,
    analyze_flow,
)
from repro.check.lint import (
    ALL_RULES,
    LintFinding,
    lint_paths,
    lint_source,
)
from repro.check.model import check_model
from repro.check.proof import (
    CertificateError,
    check_unsat_proof,
    verify_certificate,
)
from repro.check.sanitizer import (
    LockOrderViolation,
    OrderedLock,
    make_lock,
    reset_observed_edges,
)
from repro.check.units_analysis import (
    UNITS_RULES,
    UnitFinding,
    UnitsReport,
    analyze_units,
)

__all__ = [
    "ALL_RULES",
    "CertificateError",
    "FLOW_RULES",
    "FlowFinding",
    "FlowReport",
    "LintFinding",
    "LockOrderViolation",
    "OrderedLock",
    "UNITS_RULES",
    "UnitFinding",
    "UnitsReport",
    "analyze_flow",
    "analyze_units",
    "check_model",
    "check_unsat_proof",
    "lint_paths",
    "lint_source",
    "make_lock",
    "reset_observed_edges",
    "verify_certificate",
]
