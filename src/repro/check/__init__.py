"""repro.check — static analysis and independent result verification.

Two pillars, both deliberately outside the code they judge:

* **Proof certificates** (:mod:`repro.check.proof`,
  :mod:`repro.check.model`): replay the DPLL(T) solver's UNSAT proofs
  by reverse unit propagation plus negative-cycle arithmetic, and
  evaluate SAT models against every input constraint — the solver is
  untrusted, the checker is trusted and an order of magnitude smaller.
* **Repo-invariant linter** (:mod:`repro.check.lint`): an AST pass
  enforcing the timing/locking disciplines this codebase depends on
  (no wall-clock reads in deterministic code, integer-nanosecond
  arithmetic, lock-guarded instrument mutation, no bare ``except``,
  well-formed annotations).

``python -m repro check {proof,model,lint}`` is the CLI face
(:mod:`repro.check.cli`).
"""

from repro.check.lint import (
    ALL_RULES,
    LintFinding,
    lint_paths,
    lint_source,
)
from repro.check.model import check_model
from repro.check.proof import (
    CertificateError,
    check_unsat_proof,
    verify_certificate,
)

__all__ = [
    "ALL_RULES",
    "CertificateError",
    "LintFinding",
    "check_model",
    "check_unsat_proof",
    "lint_paths",
    "lint_source",
    "verify_certificate",
]
