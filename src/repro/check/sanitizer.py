"""Runtime lock-order sanitizer: the dynamic half of ``repro check flow``.

The static analysis in :mod:`repro.check.flow` proves properties of
lock *identities* (class attributes); it cannot see two identities that
alias one runtime object, or an ordering that only materializes under a
particular interleaving.  This module covers that gap at runtime:

* :func:`make_lock` is the factory the runtime's lock owners call.
  With ``REPRO_SANITIZE_LOCKS`` unset (the default, and production) it
  returns a plain ``threading.Lock`` — zero wrapper, zero overhead.
  With the variable set to a non-empty value other than ``0`` it
  returns an :class:`OrderedLock` carrying the same identity name the
  static pass uses (``"ScheduleStore._lock"``), so a runtime violation
  and a static finding talk about the same graph.
* :class:`OrderedLock` keeps a per-thread stack of held sanitized
  locks and a process-wide registry of observed hold-before edges.  It
  raises :class:`LockOrderViolation` — instead of deadlocking — on:

  - re-entrant acquisition of the same (non-reentrant) lock object;
  - acquiring a lock of an ordered *group* out of key order, e.g. the
    two-phase commit's shard locks (``group="cluster.shards"``,
    ``key=<shard name>``), which must be taken in ascending key order
    — the sorted-locks discipline, enforced;
  - an edge inversion: acquiring ``A`` while holding ``B`` after some
    thread was observed acquiring ``B`` while holding ``A``.

Violations are deterministic given the interleaving CI produces, and
the error message quotes both witness sites.  Tests reset the global
edge registry with :func:`reset_observed_edges`.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "ENV_VAR",
    "LockOrderViolation",
    "OrderedLock",
    "make_lock",
    "reset_observed_edges",
    "sanitizing",
]

ENV_VAR = "REPRO_SANITIZE_LOCKS"


def sanitizing() -> bool:
    """True when the sanitizer is switched on via the environment."""
    value = os.environ.get(ENV_VAR, "")
    return value not in ("", "0")


class LockOrderViolation(RuntimeError):
    """An acquisition that could deadlock under another interleaving."""


class _Registry:
    """Process-wide observed hold-before edges between lock names."""

    def __init__(self) -> None:
        self._guard = threading.Lock()
        # (held_name, acquired_name) -> human-readable witness
        self.edges: Dict[Tuple[str, str], str] = {}

    def observe(self, held: str, acquired: str, witness: str) -> Optional[str]:
        """Record ``held -> acquired``; return the reverse witness if any."""
        with self._guard:
            self.edges.setdefault((held, acquired), witness)
            return self.edges.get((acquired, held))

    def reset(self) -> None:
        with self._guard:
            self.edges.clear()


_registry = _Registry()
_held = threading.local()


def reset_observed_edges() -> None:
    """Forget all observed edges (between tests)."""
    _registry.reset()


def _stack() -> List["OrderedLock"]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = _held.stack = []
    return stack


class OrderedLock:
    """A ``threading.Lock`` that refuses to be part of a deadlock.

    ``name`` is the static lock identity (``"ScheduleStore._lock"``);
    several instances may share one name — edges are tracked per name,
    matching the static analysis' per-class-attribute granularity.
    Instances sharing a ``group`` must be acquired in ascending ``key``
    order while any other member of the group is held.
    """

    def __init__(
        self,
        name: str,
        group: Optional[str] = None,
        key: Optional[str] = None,
    ) -> None:
        self.name = name
        self.group = group
        self.key = key
        self._inner = threading.Lock()

    def __repr__(self) -> str:
        suffix = f" group={self.group}:{self.key}" if self.group else ""
        return f"<OrderedLock {self.name}{suffix} at {id(self):#x}>"

    # -- checking -------------------------------------------------------
    def _check(self) -> None:
        stack = _stack()
        thread = threading.current_thread().name
        for held in stack:
            if held is self:
                raise LockOrderViolation(
                    f"re-entrant acquisition of {self.name} in thread "
                    f"{thread}: this lock object is already held and is "
                    f"not reentrant — the thread would deadlock on itself"
                )
            if (
                self.group is not None
                and held.group == self.group
                and held.key is not None
                and self.key is not None
                and held.key > self.key
            ):
                raise LockOrderViolation(
                    f"ordered group {self.group!r} violated in thread "
                    f"{thread}: acquiring key {self.key!r} while holding "
                    f"key {held.key!r}; group members must be taken in "
                    f"ascending key order (the sorted-locks discipline)"
                )
        for held in stack:
            if held.name == self.name:
                continue
            witness = (
                f"thread {thread} acquired {self.name} while holding "
                f"{held.name}"
            )
            reverse = _registry.observe(held.name, self.name, witness)
            if reverse is not None:
                raise LockOrderViolation(
                    f"lock-order inversion between {held.name} and "
                    f"{self.name}: {witness}, but earlier {reverse}; "
                    f"these two orders can deadlock"
                )

    # -- lock protocol --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._check()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _stack().append(self)
        return acquired

    def release(self) -> None:
        stack = _stack()
        # remove the most recent entry for this object; out-of-LIFO
        # release is legal for threading.Lock and used by the two-phase
        # rollback path, so only membership is enforced
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()


def make_lock(
    name: str,
    group: Optional[str] = None,
    key: Optional[str] = None,
) -> Union[threading.Lock, OrderedLock]:
    """A lock named for the sanitizer, or a plain one when it is off.

    The environment is consulted at *creation* time: set
    ``REPRO_SANITIZE_LOCKS=1`` before constructing the objects under
    test.  When unset this returns a bare ``threading.Lock`` — no
    wrapper object, no per-acquisition bookkeeping, nothing to measure.
    """
    if sanitizing():
        return OrderedLock(name, group=group, key=key)
    return threading.Lock()
