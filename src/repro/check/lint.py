"""Repo-invariant AST linter: the disciplines this codebase cannot lose.

Generic style is pyflakes' job; these rules encode invariants specific
to a deterministic TSN scheduler that generic tools cannot know:

``wall-clock``
    Deterministic layers (``repro/sim``, ``repro/smt``, ``repro/core``)
    must never read the wall clock (``time.time``, ``time.monotonic``,
    ``time.perf_counter``, ``datetime.now``, ...).  Simulated time is
    integer nanoseconds advanced by the engine; a single stray
    wall-clock read silently corrupts reproducibility.

``float-arith``
    Schedule/GCL arithmetic modules carry offsets, durations and cycle
    times as integer nanoseconds.  Float literals and true division
    (``/``) are banned there — drift of half a nanosecond is a gate
    misfire on real hardware.  Use ``//`` and integer constants.

``lock-discipline``
    In any class that owns a lock — ``self._lock`` by name, or any
    attribute assigned from ``threading.Lock``/``threading.RLock``/
    ``repro.check.sanitizer.make_lock`` (``self._write_lock``, ...) —
    private state (``self._x``) may only be mutated while one of the
    class's locks is held: inside ``with self.<lock>:`` or between a
    statement-level ``self.<lock>.acquire()`` and the matching
    ``release()`` (``__init__`` excepted).  Covers the
    metrics/instrument tables and every other shared-state holder.

``bare-except``
    ``except:`` swallows ``KeyboardInterrupt``/``SystemExit``; name the
    exceptions (or ``Exception`` with a reason).

``tuple-annotation``
    A return annotation written ``-> (A, B)`` is a runtime-evaluated
    tuple expression, not a type; use ``Tuple[A, B]``.

Suppress a finding by appending ``# repro: lint-ok[rule]`` (or a bare
``# repro: lint-ok`` for any rule) to the flagged line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

RULE_WALL_CLOCK = "wall-clock"
RULE_FLOAT = "float-arith"
RULE_LOCK = "lock-discipline"
RULE_BARE_EXCEPT = "bare-except"
RULE_TUPLE_ANNOTATION = "tuple-annotation"
RULE_PARSE = "parse-error"

ALL_RULES: Tuple[str, ...] = (
    RULE_WALL_CLOCK,
    RULE_FLOAT,
    RULE_LOCK,
    RULE_BARE_EXCEPT,
    RULE_TUPLE_ANNOTATION,
)

#: Directories (path fragments) where wall-clock reads are banned.
WALL_CLOCK_SCOPE: Tuple[str, ...] = (
    "repro/sim/",
    "repro/smt/",
    "repro/core/",
)

#: Dotted call chains that read the wall clock.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "date.today", "datetime.date.today",
})

#: ``from time import <these>`` defeats the dotted-name detection, so
#: the import itself is flagged inside the wall-clock scope.
WALL_CLOCK_IMPORTS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
})

#: Modules (path suffixes) under the integer-nanosecond discipline.
INTEGER_NS_MODULES: Tuple[str, ...] = (
    "repro/core/gcl.py",
    "repro/core/gcl_audit.py",
    "repro/core/schedule.py",
    "repro/core/constraints.py",
    "repro/core/incremental.py",
    "repro/core/reservation.py",
    "repro/core/smt_scheduler.py",
    "repro/smt/terms.py",
    "repro/smt/theory.py",
)

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "pop", "popleft",
    "remove", "clear", "update", "setdefault", "add", "discard", "sort",
    "reverse",
})

_SUPPRESS = re.compile(r"repro:\s*lint-ok(?:\[([a-z\-, ]+)\])?")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[str]] = None,
) -> List[LintFinding]:
    """Lint one module's source; ``path`` scopes the path-gated rules."""
    if rules is not None:
        unknown = sorted(set(rules) - set(ALL_RULES))
        if unknown:
            raise ValueError(
                f"unknown lint rule(s) {', '.join(unknown)}; "
                f"known rules: {', '.join(ALL_RULES)}"
            )
    active = tuple(rules) if rules is not None else ALL_RULES
    norm = Path(path).as_posix()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [LintFinding(
            path=path, line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            rule=RULE_PARSE, message=f"cannot parse: {exc.msg}",
        )]
    findings: List[LintFinding] = []
    if RULE_WALL_CLOCK in active and _in_scope(norm, WALL_CLOCK_SCOPE):
        findings.extend(_check_wall_clock(tree, path))
    if RULE_FLOAT in active and _in_scope(norm, INTEGER_NS_MODULES):
        findings.extend(_check_float_arith(tree, path))
    if RULE_LOCK in active:
        findings.extend(_check_lock_discipline(tree, path))
    if RULE_BARE_EXCEPT in active:
        findings.extend(_check_bare_except(tree, path))
    if RULE_TUPLE_ANNOTATION in active:
        findings.extend(_check_tuple_annotation(tree, path))
    lines = source.splitlines()
    findings = [f for f in findings if not _suppressed(f, lines)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[str]] = None,
) -> List[LintFinding]:
    """Lint files and directory trees (``*.py``, recursively)."""
    findings: List[LintFinding] = []
    for target in _expand(paths):
        findings.extend(
            lint_source(target.read_text(), str(target), rules=rules)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _expand(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise ValueError(f"not a python file or directory: {raw}")
    return files


def _in_scope(norm_path: str, fragments: Sequence[str]) -> bool:
    return any(fragment in norm_path for fragment in fragments)


def _suppressed(finding: LintFinding, lines: List[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    match = _SUPPRESS.search(lines[finding.line - 1])
    if match is None:
        return False
    listed = match.group(1)
    if listed is None:
        return True
    return finding.rule in {name.strip() for name in listed.split(",")}


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# ---------------------------------------------------------------- rules
def _check_wall_clock(tree: ast.Module, path: str) -> List[LintFinding]:
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is not None and dotted in WALL_CLOCK_CALLS:
                findings.append(LintFinding(
                    path, node.lineno, node.col_offset, RULE_WALL_CLOCK,
                    f"wall-clock read {dotted} in deterministic code; "
                    f"use the simulated/injected clock",
                ))
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in WALL_CLOCK_IMPORTS:
                    findings.append(LintFinding(
                        path, node.lineno, node.col_offset, RULE_WALL_CLOCK,
                        f"importing time.{alias.name} into deterministic "
                        f"code; use the simulated/injected clock",
                    ))
    return findings


def _check_float_arith(tree: ast.Module, path: str) -> List[LintFinding]:
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            findings.append(LintFinding(
                path, node.lineno, node.col_offset, RULE_FLOAT,
                f"float literal {node.value!r} in an integer-nanosecond "
                f"module; keep schedule arithmetic integral",
            ))
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            findings.append(LintFinding(
                path, node.lineno, node.col_offset, RULE_FLOAT,
                "true division in an integer-nanosecond module; use //",
            ))
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
            findings.append(LintFinding(
                path, node.lineno, node.col_offset, RULE_FLOAT,
                "true division in an integer-nanosecond module; use //=",
            ))
    return findings


def _check_bare_except(tree: ast.Module, path: str) -> List[LintFinding]:
    return [
        LintFinding(
            path, node.lineno, node.col_offset, RULE_BARE_EXCEPT,
            "bare except swallows KeyboardInterrupt/SystemExit; "
            "name the exceptions",
        )
        for node in ast.walk(tree)
        if isinstance(node, ast.ExceptHandler) and node.type is None
    ]


def _check_tuple_annotation(tree: ast.Module, path: str) -> List[LintFinding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node.returns, ast.Tuple):
            findings.append(LintFinding(
                path, node.returns.lineno, node.returns.col_offset,
                RULE_TUPLE_ANNOTATION,
                f"return annotation of {node.name}() is a tuple "
                f"expression; write Tuple[...] instead",
            ))
        for arg in _all_args(node.args):
            if isinstance(arg.annotation, ast.Tuple):
                findings.append(LintFinding(
                    path, arg.annotation.lineno, arg.annotation.col_offset,
                    RULE_TUPLE_ANNOTATION,
                    f"annotation of parameter {arg.arg!r} is a tuple "
                    f"expression; write Tuple[...] instead",
                ))
    return findings


def _all_args(args: ast.arguments) -> List[ast.arg]:
    every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg is not None:
        every.append(args.vararg)
    if args.kwarg is not None:
        every.append(args.kwarg)
    return every


# ------------------------------------------------------- lock discipline
#: Callables whose result is a lock: assigning one to ``self.<attr>``
#: makes that attribute a recognized guard (``threading.RLock`` and the
#: sanitizer factory included, so renamed locks still count).
_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "Lock", "RLock",
    "make_lock", "sanitizer.make_lock", "repro.check.sanitizer.make_lock",
})


def _check_lock_discipline(tree: ast.Module, path: str) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        lock_attrs = _owned_locks(node)
        if not lock_attrs:
            continue
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                continue
            _walk_locked_body(item.body, False, lock_attrs, path, findings)
    return findings


def _owned_locks(cls: ast.ClassDef) -> frozenset:
    """Lock-guard attribute names of ``cls``.

    ``self._lock = <anything>`` counts by name (the historical
    contract); any other ``self.<attr>`` counts when assigned from a
    known lock factory (``threading.Lock()``, ``threading.RLock()``,
    ``make_lock(...)``), with or without an annotation.
    """
    attrs = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            targets: List[ast.AST] = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        value = getattr(node, "value", None)
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if target.attr == "_lock" or _is_lock_value(value):
                attrs.add(target.attr)
    return frozenset(attrs)


def _is_lock_value(value: Optional[ast.AST]) -> bool:
    if not isinstance(value, ast.Call):
        return False
    dotted = _dotted(value.func)
    return dotted is not None and dotted in _LOCK_FACTORIES


def _guard_names(lock_attrs: frozenset) -> frozenset:
    return frozenset(f"self.{attr}" for attr in lock_attrs)


def _lock_call(stmt: ast.stmt, lock_attrs: frozenset) -> Optional[str]:
    """``"acquire"``/``"release"`` for ``self.<lock>.acquire()`` statements."""
    if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
        return None
    func = stmt.value.func
    if not (
        isinstance(func, ast.Attribute) and func.attr in ("acquire", "release")
    ):
        return None
    if _dotted(func.value) in _guard_names(lock_attrs):
        return func.attr
    return None


def _walk_locked_body(
    stmts: Sequence[ast.stmt],
    locked: bool,
    lock_attrs: frozenset,
    path: str,
    findings: List[LintFinding],
) -> None:
    """Walk one statement list, tracking acquire()/release() regions."""
    held = locked
    for stmt in stmts:
        call = _lock_call(stmt, lock_attrs)
        if call is not None:
            held = call == "acquire" or locked
            continue
        _walk_locked(stmt, held, lock_attrs, path, findings)


def _walk_locked(
    node: ast.AST,
    locked: bool,
    lock_attrs: frozenset,
    path: str,
    findings: List[LintFinding],
) -> None:
    if isinstance(node, (ast.With, ast.AsyncWith)):
        guards = _guard_names(lock_attrs)
        grabs = locked or any(
            _dotted(item.context_expr) in guards for item in node.items
        )
        for item in node.items:
            _flag_mutation(item.context_expr, locked, path, findings)
        _walk_locked_body(node.body, grabs, lock_attrs, path, findings)
        return
    if isinstance(node, (ast.If, ast.While)):
        _flag_mutation(node, locked, path, findings)
        _walk_locked_body(node.body, locked, lock_attrs, path, findings)
        _walk_locked_body(node.orelse, locked, lock_attrs, path, findings)
        return
    if isinstance(node, (ast.For, ast.AsyncFor)):
        _flag_mutation(node, locked, path, findings)
        _walk_locked_body(node.body, locked, lock_attrs, path, findings)
        _walk_locked_body(node.orelse, locked, lock_attrs, path, findings)
        return
    if isinstance(node, ast.Try):
        _walk_locked_body(node.body, locked, lock_attrs, path, findings)
        for handler in node.handlers:
            _walk_locked_body(handler.body, locked, lock_attrs, path, findings)
        _walk_locked_body(node.orelse, locked, lock_attrs, path, findings)
        _walk_locked_body(node.finalbody, locked, lock_attrs, path, findings)
        return
    _flag_mutation(node, locked, path, findings)
    for child in ast.iter_child_nodes(node):
        _walk_locked(child, locked, lock_attrs, path, findings)


def _private_self_target(node: ast.AST) -> Optional[str]:
    """The attribute name if ``node`` is ``self._x`` or ``self._x[...]``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr.startswith("_")
        and node.attr != "_lock"
    ):
        return node.attr
    return None


def _flag_mutation(
    node: ast.AST, locked: bool, path: str, findings: List[LintFinding]
) -> None:
    if locked:
        return
    targets: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    elif (
        isinstance(node, ast.Expr)
        and isinstance(node.value, ast.Call)
        and isinstance(node.value.func, ast.Attribute)
        and node.value.func.attr in _MUTATORS
    ):
        targets = [node.value.func.value]
    flat: List[ast.AST] = []
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            flat.extend(target.elts)
        else:
            flat.append(target)
    for target in flat:
        attr = _private_self_target(target)
        if attr is not None:
            findings.append(LintFinding(
                path, node.lineno, node.col_offset, RULE_LOCK,
                f"mutation of self.{attr} outside 'with self._lock' in a "
                f"lock-owning class",
            ))
            return
