"""Proof-certificate containers: what the solver *emits*, never checks.

The DPLL(T) stack is untrusted — ~400 lines of search code whose UNSAT
answers gate admission rejections.  To make its verdicts auditable it
logs a DRAT-style certificate while solving:

* :class:`ProofLog` — the append-only step recorder the CDCL core
  writes into: one step per theory lemma (with its negative-cycle
  witness), one per learned clause, and a final empty-clause step when
  the search concludes UNSAT.
* :class:`Certificate` — the self-contained artifact a
  :meth:`repro.smt.solver.DlSmtSolver.check` call returns when proof
  logging is on: the original CNF, the boolean-variable → difference
  atom map, and either a model (SAT) or the proof steps (UNSAT).

Everything here is passive bookkeeping.  The *trusted* side — replaying
UNSAT proofs by reverse unit propagation and evaluating SAT models —
lives in :mod:`repro.check.proof` and :mod:`repro.check.model`, which
deliberately never import the solver.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.smt.terms import Atom

#: Serialization format tag; bumped on incompatible change.
CERTIFICATE_FORMAT = "repro-cert-v1"

STEP_LEMMA = "lemma"
STEP_LEARNED = "learned"
STEP_EMPTY = "empty"


@dataclass(frozen=True)
class ProofStep:
    """One derivation the checker must validate.

    ``lemma`` steps are difference-logic theory lemmas; ``cycle`` carries
    their negative-cycle witness as atoms in cycle order (edge ``y → x``
    of weight ``c`` per atom ``x - y <= c``).  ``learned`` steps are CDCL
    clauses, checkable by reverse unit propagation over everything that
    precedes them.  The single ``empty`` step concludes an UNSAT proof.
    """

    kind: str
    clause: List[int] = field(default_factory=list)
    cycle: Optional[List[Atom]] = None


class ProofLog:
    """Append-only recorder the SAT core writes proof steps into."""

    def __init__(self) -> None:
        self.steps: List[ProofStep] = []

    def add_lemma(self, clause: Sequence[int], cycle: Optional[Sequence[Atom]]) -> None:
        """A theory lemma with its negative-cycle witness."""
        self.steps.append(ProofStep(
            kind=STEP_LEMMA,
            clause=list(clause),
            cycle=list(cycle) if cycle is not None else None,
        ))

    def add_learned(self, clause: Sequence[int]) -> None:
        """A clause derived by conflict analysis (RUP-checkable)."""
        self.steps.append(ProofStep(kind=STEP_LEARNED, clause=list(clause)))

    def add_empty(self) -> None:
        """The search concluded UNSAT: the empty clause is derivable."""
        self.steps.append(ProofStep(kind=STEP_EMPTY))


@dataclass
class Certificate:
    """Everything needed to re-judge one solver verdict independently.

    ``cnf`` is the input formula exactly as the client asserted it
    (boolean abstraction literals, DIMACS convention); ``atoms`` maps
    each boolean variable to its canonical difference atom, so positive
    literal ``v`` asserts the atom and ``-v`` its integer negation.
    """

    status: str  # "sat" | "unsat"
    cnf: List[List[int]]
    atoms: Dict[int, Atom]
    model: Optional[Dict[str, int]] = None
    proof: Optional[List[ProofStep]] = None

    @property
    def num_steps(self) -> int:
        return len(self.proof) if self.proof is not None else 0


def certificate_to_dict(certificate: Certificate) -> Dict:
    """JSON-able form of a certificate (inverse of :func:`certificate_from_dict`)."""
    data: Dict = {
        "format": CERTIFICATE_FORMAT,
        "status": certificate.status,
        "atoms": [
            {"var": var, "x": atom.x, "y": atom.y, "c": atom.c}
            for var, atom in sorted(certificate.atoms.items())
        ],
        "cnf": [list(clause) for clause in certificate.cnf],
    }
    if certificate.model is not None:
        data["model"] = dict(certificate.model)
    if certificate.proof is not None:
        data["proof"] = [_step_to_dict(step) for step in certificate.proof]
    return data


def certificate_from_dict(data: Dict) -> Certificate:
    """Rehydrate a certificate saved by :func:`certificate_to_dict`."""
    tag = data.get("format")
    if tag != CERTIFICATE_FORMAT:
        raise ValueError(f"unsupported certificate format {tag!r}")
    atoms = {
        int(entry["var"]): Atom(entry["x"], entry["y"], int(entry["c"]))
        for entry in data.get("atoms", [])
    }
    proof = None
    if "proof" in data:
        proof = [_step_from_dict(step) for step in data["proof"]]
    model = data.get("model")
    if model is not None:
        model = {name: int(value) for name, value in model.items()}
    return Certificate(
        status=data["status"],
        cnf=[[int(lit) for lit in clause] for clause in data.get("cnf", [])],
        atoms=atoms,
        model=model,
        proof=proof,
    )


def save_certificate(path: str, certificate: Certificate) -> None:
    with open(path, "w") as handle:
        json.dump(certificate_to_dict(certificate), handle, indent=2)
        handle.write("\n")


def load_certificate(path: str) -> Certificate:
    with open(path) as handle:
        return certificate_from_dict(json.load(handle))


def _step_to_dict(step: ProofStep) -> Dict:
    data: Dict = {"kind": step.kind}
    if step.clause:
        data["clause"] = list(step.clause)
    if step.cycle is not None:
        data["cycle"] = [[a.x, a.y, a.c] for a in step.cycle]
    return data


def _step_from_dict(data: Dict) -> ProofStep:
    cycle = None
    if "cycle" in data:
        cycle = [Atom(x, y, int(c)) for x, y, c in data["cycle"]]
    return ProofStep(
        kind=data["kind"],
        clause=[int(lit) for lit in data.get("clause", [])],
        cycle=cycle,
    )
