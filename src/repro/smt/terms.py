"""Atoms of quantifier-free integer difference logic (QF_IDL).

Every constraint the E-TSN formalization needs (paper Eqs. 1-7) is of the
form ``x - y <= c`` over integer variables, possibly with ``y`` (or ``x``)
being the designated zero variable.  Disjunctions of such atoms express
the frame non-overlap constraints (Eq. 5).

The integer negation of ``x - y <= c`` is ``y - x <= -c - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Name of the designated zero variable.  ``x <= c`` is encoded as
#: ``x - ZERO <= c``.
ZERO = "<zero>"


@dataclass(frozen=True)
class Atom:
    """The difference constraint ``x - y <= c`` over integers."""

    x: str
    y: str
    c: int

    def __post_init__(self) -> None:
        if self.x == self.y:
            raise ValueError(f"degenerate atom over single variable {self.x!r}")

    def negate(self) -> "Atom":
        """Integer negation: ``not (x - y <= c)``  ==  ``y - x <= -c - 1``."""
        return Atom(self.y, self.x, -self.c - 1)

    def canonical(self) -> Tuple["Atom", int]:
        """A canonical (atom, sign) pair.

        Complementary atoms map to the same canonical atom with opposite
        signs, so the boolean abstraction never allocates two variables
        for one constraint and its negation.
        """
        if (self.x, self.y) <= (self.y, self.x):
            return self, 1
        return self.negate(), -1

    def holds(self, values: dict) -> bool:
        """Evaluate under an assignment (``ZERO`` defaults to 0)."""
        vx = values.get(self.x, 0) if self.x != ZERO else 0
        vy = values.get(self.y, 0) if self.y != ZERO else 0
        return vx - vy <= self.c

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.y == ZERO:
            return f"{self.x} <= {self.c}"
        if self.x == ZERO:
            return f"{self.y} >= {-self.c}"
        return f"{self.x} - {self.y} <= {self.c}"


def var_le(x: str, c: int) -> Atom:
    """``x <= c``"""
    return Atom(x, ZERO, c)


def var_ge(x: str, c: int) -> Atom:
    """``x >= c``"""
    return Atom(ZERO, x, -c)


def diff_le(x: str, y: str, c: int) -> Atom:
    """``x - y <= c``"""
    return Atom(x, y, c)


def diff_ge(x: str, y: str, c: int) -> Atom:
    """``x - y >= c``"""
    return Atom(y, x, -c)
