"""A CDCL SAT solver with a theory hook — the boolean core of DPLL(T).

Implements the standard modern architecture: two-watched-literal unit
propagation, first-UIP conflict analysis with clause learning, VSIDS-style
activity ordering, phase saving, and Luby restarts.  A theory object may
be attached; after every propagation fixpoint the solver feeds newly
assigned literals to it and treats a returned conflict exactly like a
falsified clause.

Literals are non-zero integers: ``+v`` / ``-v`` for variable ``v >= 1``
(DIMACS convention).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.smt.proof import ProofLog


@dataclass(frozen=True)
class SolverStats:
    """Snapshot of one solver's search counters.

    Attached to every solve result so admission telemetry can tell
    *where* solver time went, not just that a solve happened.  All
    counters are cumulative over the solver's lifetime.
    """

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    theory_checks: int = 0
    theory_conflicts: int = 0
    learned_clauses: int = 0

    def to_dict(self) -> Dict[str, int]:
        return asdict(self)


class Theory(Protocol):
    """What the SAT core needs from a theory solver."""

    def on_assign(self, lit: int) -> Optional[List[int]]:
        """Notify that ``lit`` became true.

        Return ``None`` if consistent, else the conflicting literals (all
        currently true); the solver learns their negation.
        """

    def on_backtrack(self, num_assigned: int) -> None:
        """Undo assertions so exactly ``num_assigned`` remain."""

    def relevant(self, var: int) -> bool:
        """Whether assignments of ``var`` must be forwarded."""

    # Theories that support proof logging additionally expose a
    # ``last_conflict_cycle`` attribute: the witness of the most recent
    # conflict, read immediately after ``on_assign`` reports it.


UNASSIGNED = 0
TRUE = 1
FALSE = -1

_RESTART_UNIT = 128


def _luby(i: int) -> int:
    """The Luby restart sequence: 1,1,2,1,1,2,4,... (``i`` is 1-based)."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


class SatSolver:
    """CDCL solver over integer literals with an optional theory."""

    def __init__(
        self,
        theory: Optional[Theory] = None,
        proof: Optional[ProofLog] = None,
    ) -> None:
        self._num_vars = 0
        self._proof = proof
        self._clauses: List[List[int]] = []
        self._watches: Dict[int, List[List[int]]] = {}
        self._values: List[int] = [UNASSIGNED]  # 1-indexed by variable
        self._levels: List[int] = [0]
        self._reasons: List[Optional[List[int]]] = [None]
        self._phase: List[bool] = [False]
        self._activity: List[float] = [0.0]
        self._activity_inc = 1.0
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._theory = theory
        # Relevant literals forwarded to the theory, as (trail_pos, lit).
        self._theory_trail: List[tuple] = []
        self._theory_head = 0  # trail entries examined so far
        self._root_conflict = False
        #: Theory-conflict lemmas in the order derived.  Unlike CDCL
        #: learned clauses (resolvents of *this* formula), these are
        #: valid in the theory itself and may be replayed into a future
        #: solve over the same atoms — the warm-start harvest point.
        self.theory_lemmas: List[List[int]] = []
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_restarts = 0
        self.num_propagations = 0
        self.num_theory_checks = 0
        self.num_theory_conflicts = 0
        self.num_learned = 0

    def stats(self) -> SolverStats:
        """Current search counters as an immutable snapshot."""
        return SolverStats(
            conflicts=self.num_conflicts,
            decisions=self.num_decisions,
            propagations=self.num_propagations,
            restarts=self.num_restarts,
            theory_checks=self.num_theory_checks,
            theory_conflicts=self.num_theory_conflicts,
            learned_clauses=self.num_learned,
        )

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate and return a fresh variable (>= 1)."""
        self._num_vars += 1
        self._values.append(UNASSIGNED)
        self._levels.append(0)
        self._reasons.append(None)
        self._phase.append(False)
        self._activity.append(0.0)
        return self._num_vars

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT.

        Must be called before :meth:`solve` (no incremental clause adding
        mid-search except through learning).
        """
        seen = set()
        clause: List[int] = []
        for lit in lits:
            if abs(lit) < 1 or abs(lit) > self._num_vars:
                raise ValueError(f"literal {lit} names an unallocated variable")
            if -lit in seen:
                return True  # tautology: always satisfied
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        if not clause:
            self._root_conflict = True
            return False
        if len(clause) == 1:
            lit = clause[0]
            value = self._lit_value(lit)
            if value == FALSE:
                self._root_conflict = True
                return False
            if value == UNASSIGNED:
                self._assign(lit, None)
            return True
        self._attach(clause)
        return True

    def seed_heuristics(
        self,
        phases: Dict[int, bool],
        activities: Dict[int, float],
    ) -> None:
        """Preload saved phases and VSIDS activities (warm start).

        Only steers the search order — any values are sound.  Unknown
        variable numbers are ignored.
        """
        for var, phase in phases.items():
            if 1 <= var <= self._num_vars:
                self._phase[var] = phase
        for var, activity in activities.items():
            if 1 <= var <= self._num_vars:
                self._activity[var] = activity

    def _attach(self, clause: List[int]) -> None:
        self._clauses.append(clause)
        self._watches.setdefault(clause[0], []).append(clause)
        self._watches.setdefault(clause[1], []).append(clause)

    # ------------------------------------------------------------------
    # assignment plumbing
    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        value = self._values[abs(lit)]
        if value == UNASSIGNED:
            return UNASSIGNED
        return value if lit > 0 else -value

    def _assign(self, lit: int, reason: Optional[List[int]]) -> None:
        var = abs(lit)
        self._values[var] = TRUE if lit > 0 else FALSE
        self._levels[var] = self.decision_level
        self._reasons[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)

    @property
    def decision_level(self) -> int:
        return len(self._trail_lim)

    def _backjump(self, level: int) -> None:
        if level >= self.decision_level:
            return
        keep = self._trail_lim[level]
        for lit in reversed(self._trail[keep:]):
            self._values[abs(lit)] = UNASSIGNED
            self._reasons[abs(lit)] = None
        del self._trail[keep:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))
        if self._theory is not None:
            retained = len(self._theory_trail)
            while retained > 0 and self._theory_trail[retained - 1][0] >= keep:
                retained -= 1
            del self._theory_trail[retained:]
            self._theory.on_backtrack(retained)
            self._theory_head = min(self._theory_head, keep)

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[List[int]]:
        """BCP to fixpoint, then theory assertion; returns a conflict clause."""
        while True:
            while self._qhead < len(self._trail):
                lit = self._trail[self._qhead]
                self._qhead += 1
                conflict = self._propagate_lit(-lit)
                if conflict is not None:
                    return conflict
            theory_conflict = self._theory_advance()
            if theory_conflict is not None:
                return theory_conflict
            if self._qhead == len(self._trail):
                return None

    def _propagate_lit(self, false_lit: int) -> Optional[List[int]]:
        watchers = self._watches.get(false_lit)
        if not watchers:
            return None
        kept: List[List[int]] = []
        try:
            for idx, clause in enumerate(watchers):
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                other = clause[0]
                if self._lit_value(other) == TRUE:
                    kept.append(clause)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(clause[1], []).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if self._lit_value(other) == FALSE:
                    kept.extend(watchers[idx + 1:])
                    return clause
                self.num_propagations += 1
                self._assign(other, clause)
        finally:
            self._watches[false_lit] = kept
        return None

    def _theory_advance(self) -> Optional[List[int]]:
        if self._theory is None:
            return None
        while self._theory_head < len(self._trail):
            pos = self._theory_head
            lit = self._trail[pos]
            self._theory_head += 1
            if not self._theory.relevant(abs(lit)):
                continue
            self.num_theory_checks += 1
            conflict_lits = self._theory.on_assign(lit)
            if conflict_lits is not None:
                self.num_theory_conflicts += 1
                # All returned literals are true; their negations form a
                # falsified clause.  The theory did not record the failed
                # assertion, so its stack already matches _theory_trail.
                self._theory_head = pos
                lemma = [-l for l in conflict_lits]
                self.theory_lemmas.append(list(lemma))
                if self._proof is not None:
                    self._proof.add_lemma(
                        lemma,
                        getattr(self._theory, "last_conflict_cycle", None),
                    )
                return lemma
            self._theory_trail.append((pos, lit))
        return None

    # ------------------------------------------------------------------
    # conflict analysis
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self._activity[var] += self._activity_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._activity_inc *= 1e-100

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        """First-UIP learning; returns (learned clause, backjump level)."""
        learned: List[int] = [0]  # slot 0 for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit_iter: Optional[int] = None
        index = len(self._trail) - 1
        clause: Optional[List[int]] = conflict
        while True:
            assert clause is not None, "conflict analysis lost the reason chain"
            for lit in clause:
                if lit_iter is not None and lit == lit_iter:
                    continue
                var = abs(lit)
                if seen[var] or self._levels[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._levels[var] == self.decision_level:
                    counter += 1
                else:
                    learned.append(lit)
            while not seen[abs(self._trail[index])]:
                index -= 1
            pivot = self._trail[index]
            index -= 1
            seen[abs(pivot)] = False
            counter -= 1
            if counter == 0:
                learned[0] = -pivot
                break
            clause = self._reasons[abs(pivot)]
            lit_iter = pivot
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        back = max(self._levels[abs(lit)] for lit in learned[1:])
        # Move one literal of that level into the second watch position.
        for k in range(1, len(learned)):
            if self._levels[abs(learned[k])] == back:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, back

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def _decide(self) -> bool:
        best = 0
        best_activity = -1.0
        for var in range(1, self._num_vars + 1):
            if self._values[var] == UNASSIGNED and self._activity[var] > best_activity:
                best = var
                best_activity = self._activity[var]
        if best == 0:
            return False
        self.num_decisions += 1
        self._trail_lim.append(len(self._trail))
        lit = best if self._phase[best] else -best
        self._assign(lit, None)
        return True

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _conclude_unsat(self) -> bool:
        """Every UNSAT exit runs through here so the proof is closed."""
        if self._proof is not None:
            self._proof.add_empty()
        return False

    def solve(self) -> bool:
        """Decide satisfiability.  The model is readable via :meth:`value`."""
        if self._root_conflict:
            return self._conclude_unsat()
        restart_count = 0
        conflicts_until_restart = _luby(1) * _RESTART_UNIT
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.num_conflicts += 1
                conflicts_here += 1
                if self.decision_level == 0:
                    return self._conclude_unsat()
                # A theory conflict found during re-assertion may involve
                # only literals below the current decision level; analysis
                # requires at least one current-level literal, so first
                # fall back to the conflict's own highest level.
                top = max(self._levels[abs(lit)] for lit in conflict)
                if top == 0:
                    return self._conclude_unsat()
                if top < self.decision_level:
                    self._backjump(top)
                learned, back_level = self._analyze(conflict)
                self.num_learned += 1
                if self._proof is not None:
                    self._proof.add_learned(learned)
                self._backjump(back_level)
                if len(learned) == 1:
                    if self._lit_value(learned[0]) == FALSE:
                        return self._conclude_unsat()
                    if self._lit_value(learned[0]) == UNASSIGNED:
                        self._assign(learned[0], None)
                else:
                    self._attach(learned)
                    self._assign(learned[0], learned)
                self._activity_inc *= 1.05
                continue
            if conflicts_here >= conflicts_until_restart:
                restart_count += 1
                self.num_restarts += 1
                conflicts_here = 0
                conflicts_until_restart = _luby(restart_count + 1) * _RESTART_UNIT
                self._backjump(0)
                continue
            if not self._decide():
                return True

    def value(self, var: int) -> bool:
        """Model value of ``var`` after a successful :meth:`solve`."""
        value = self._values[var]
        if value == UNASSIGNED:
            raise RuntimeError(f"variable {var} is unassigned; call solve() first")
        return value == TRUE
