"""Incremental difference-logic theory solver.

A conjunction of difference constraints ``x - y <= c`` is satisfiable iff
the constraint graph — an edge ``y -> x`` of weight ``c`` per constraint —
has no negative cycle.  This solver maintains a *feasible potential*
``pi`` (``pi[x] - pi[y] <= c`` for every asserted edge) and repairs it
incrementally on each assertion, in the style of Cotton & Maler (2006):

* If the new edge is already satisfied by ``pi``, accept in O(1).
* Otherwise run a label-correcting relaxation rooted at the edge's head.
  If the relaxation wraps around to the edge's tail, the new edge closes
  a negative cycle; the asserted constraints along that cycle form the
  theory conflict.  Otherwise the improved labels become the new ``pi``.

Assertions are tagged with an opaque token (the SAT literal) so conflicts
can be reported in terms the CDCL core understands, and are popped in LIFO
order on backtracking.  Removing constraints never invalidates ``pi``, so
backtracking is O(edges popped).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.smt.terms import ZERO, Atom


class _Edge:
    """One asserted constraint: ``pi[head] - pi[tail] <= weight``."""

    __slots__ = ("tail", "head", "weight", "token")

    def __init__(self, tail: str, head: str, weight: int, token: Hashable) -> None:
        self.tail = tail
        self.head = head
        self.weight = weight
        self.token = token


class DifferenceLogic:
    """Incremental negative-cycle detector over difference constraints."""

    def __init__(self) -> None:
        self._pi: Dict[str, int] = {ZERO: 0}
        self._edges: List[_Edge] = []
        self._out: Dict[str, List[_Edge]] = {ZERO: []}
        #: Witness of the most recent conflict: the atoms ``x - y <= c``
        #: whose edges form the negative cycle, in cycle order (each
        #: edge's head is the next edge's tail).  Read by proof logging.
        self.last_conflict_cycle: Optional[List[Atom]] = None

    # ------------------------------------------------------------------
    def _ensure(self, name: str) -> None:
        if name not in self._pi:
            self._pi[name] = 0
            self._out[name] = []

    def seed_potential(self, potentials: Dict[str, int]) -> None:
        """Preload the feasible potential before any assertion.

        With an empty constraint graph *every* integer potential is
        feasible, so seeding is sound only while nothing is asserted;
        the repair loop then starts from a near-solution instead of
        from all-zeros.  Raises :class:`ValueError` once edges exist.
        """
        if self._edges:
            raise ValueError(
                "seed_potential is only sound before the first assertion"
            )
        for name, value in potentials.items():
            self._ensure(name)
            self._pi[name] = value

    @property
    def num_asserted(self) -> int:
        """Current assertion-stack depth (for backtracking bookkeeping)."""
        return len(self._edges)

    def assert_atom(self, atom: Atom, token: Hashable) -> Optional[List[Hashable]]:
        """Assert ``atom``; return a conflict token list or ``None``.

        The conflict is the set of tokens (including ``token``) whose
        constraints form a negative cycle; the caller must not leave the
        solver in the conflicting state — the offending edge is *not*
        recorded when a conflict is returned.
        """
        self._ensure(atom.x)
        self._ensure(atom.y)
        # x - y <= c  ==>  edge  y -> x  weight c
        edge = _Edge(atom.y, atom.x, atom.c, token)
        pi = self._pi
        if pi[edge.head] - pi[edge.tail] <= edge.weight:
            self._record(edge)
            return None

        # Repair potentials: propose pi'[head] = pi[tail] + weight and relax.
        improved: Dict[str, int] = {edge.head: pi[edge.tail] + edge.weight}
        parent: Dict[str, _Edge] = {edge.head: edge}
        queue: List[str] = [edge.head]
        while queue:
            u = queue.pop()
            du = improved[u]
            if du >= pi[u]:
                continue  # a later relaxation already made this label stale
            for out_edge in self._out[u]:
                v = out_edge.head
                candidate = du + out_edge.weight
                if candidate < improved.get(v, pi[v]):
                    if v == edge.tail:
                        # Relaxing the new edge's tail closes a negative
                        # cycle: tail -> ... -> u -> v(=tail).
                        return self._extract_conflict(parent, out_edge, edge)
                    improved[v] = candidate
                    parent[v] = out_edge
                    queue.append(v)
        for name, value in improved.items():
            if value < pi[name]:
                pi[name] = value
        self._record(edge)
        return None

    def _record(self, edge: _Edge) -> None:
        self._edges.append(edge)
        self._out[edge.tail].append(edge)

    def _extract_conflict(
        self, parent: Dict[str, _Edge], closing: _Edge, new_edge: _Edge
    ) -> List[Hashable]:
        """Walk parent pointers from the closing edge back to the new edge."""
        edges = [closing]
        node = closing.tail
        while True:
            step = parent[node]
            edges.append(step)
            if step is new_edge:
                break
            node = step.tail
        # Parent-walk order is backwards; reversed, the edges chain
        # new_edge -> ... -> closing with the closing edge returning to
        # the new edge's tail — the witness a proof checker can sum.
        edges.reverse()
        self.last_conflict_cycle = [
            Atom(e.head, e.tail, e.weight) for e in edges
        ]
        return [e.token for e in edges]

    def backtrack_to(self, depth: int) -> None:
        """Pop assertions until the stack is ``depth`` entries deep."""
        if depth < 0 or depth > len(self._edges):
            raise ValueError(f"bad backtrack depth {depth}")
        while len(self._edges) > depth:
            edge = self._edges.pop()
            popped = self._out[edge.tail].pop()
            assert popped is edge, "assertion stack out of sync"

    # ------------------------------------------------------------------
    def model(self) -> Dict[str, int]:
        """A satisfying integer assignment (``ZERO`` maps to 0).

        Valid only while the asserted set is consistent.  Values are
        ``pi[x] - pi[ZERO]``; every asserted ``x - y <= c`` holds because
        the potential is feasible.
        """
        base = self._pi[ZERO]
        return {name: value - base for name, value in self._pi.items() if name != ZERO}

    def check_full(self) -> bool:
        """Ground-truth consistency check by Bellman-Ford (for tests)."""
        names = list(self._pi)
        dist = {name: 0 for name in names}
        for _ in range(len(names)):
            changed = False
            for edge in self._edges:
                candidate = dist[edge.tail] + edge.weight
                if candidate < dist[edge.head]:
                    dist[edge.head] = candidate
                    changed = True
            if not changed:
                return True
        return False
