"""Warm-start state for consecutive DPLL(T) solves on one snapshot.

The admission ladder often solves several formulas against the *same*
store snapshot (batch splinters, retries, racing rungs).  Those formulas
differ — streams come and go — so CDCL-learned clauses are **not**
transferable: they are resolvents of the input CNF and would be unsound
against a different formula.  Three kinds of state *are* sound to carry
across formulas:

* **Theory lemmas.**  A difference-logic conflict clause
  ``¬a₁ ∨ … ∨ ¬aₖ`` (the atoms of a negative cycle) is valid in the
  theory itself, independent of any formula.  Injecting it into a new
  solve whose atom set contains those atoms is always sound and prunes
  the same dead branch without re-deriving it.
* **Branching heuristics.**  VSIDS activities and saved phases, keyed by
  the *canonical atom* rather than the solver-local variable number.
  They only steer the search order — any values are sound.
* **Theory potentials.**  Any integer potential is feasible for an
  empty difference-constraint graph, so the previous solve's final
  ``π`` may seed the next solver before its first assertion and is
  repaired incrementally from a near-solution instead of from zero.

:class:`WarmStartCache` keys entries on the *identity* of the store's
schedule snapshot (plus its topology).  Identity is the honest version
key here: every CAS publish installs a brand-new schedule object, and
the admission service additionally calls :meth:`WarmStartCache.invalidate`
after each publish, so an entry can never outlive the (store version,
topology epoch) it was learned on.  The cache holds a strong reference
to the anchor schedule, so an ``id()`` can never be recycled while its
entry is alive.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.check.sanitizer import make_lock
from repro.smt.terms import Atom

#: Upper bound on lemmas carried per state; beyond this the oldest are
#: dropped (they are redundant clauses — dropping is always sound).
MAX_LEMMAS = 4096


@dataclass
class WarmStartState:
    """Formula-independent solver state exported after one solve."""

    lemmas: List[List[Atom]] = field(default_factory=list)
    phases: Dict[Atom, bool] = field(default_factory=dict)
    activities: Dict[Atom, float] = field(default_factory=dict)
    potentials: Dict[str, int] = field(default_factory=dict)

    def trimmed(self) -> "WarmStartState":
        """A copy obeying :data:`MAX_LEMMAS` (most recent kept)."""
        if len(self.lemmas) <= MAX_LEMMAS:
            return self
        return WarmStartState(
            lemmas=self.lemmas[-MAX_LEMMAS:],
            phases=self.phases,
            activities=self.activities,
            potentials=self.potentials,
        )


class WarmStartCache:
    """Bounded identity-keyed cache of :class:`WarmStartState`.

    Thread-safe leaf lock (never held while calling out).  ``get`` and
    ``put`` take the snapshot *object*; the key is
    ``(id(schedule), id(topology))`` with the schedule kept as a strong
    anchor so the identity stays unambiguous for the entry's lifetime.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._lock = make_lock("warmstart-cache")
        self._entries: "OrderedDict[Tuple[int, int], Tuple[object, WarmStartState]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def _key(self, schedule) -> Tuple[int, int]:
        return (id(schedule), id(schedule.topology))

    def get(self, schedule) -> Optional[WarmStartState]:
        key = self._key(schedule)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is schedule:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[1]
            self.misses += 1
            return None

    def put(self, schedule, state: WarmStartState) -> None:
        key = self._key(schedule)
        with self._lock:
            self._entries[key] = (schedule, state.trimmed())
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def invalidate(self) -> int:
        """Drop every entry (called after each CAS publish); returns the
        number of entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            if dropped:
                self.invalidations += 1
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
