"""DPLL(T) for integer difference logic: the solver the scheduler calls.

Glues :class:`repro.smt.sat.SatSolver` (boolean search) to
:class:`repro.smt.theory.DifferenceLogic` (conjunctive consistency).
Clients build a formula from :class:`repro.smt.terms.Atom` disjunctions —
exactly the shape of the paper's Eqs. 1-7 — and read back an integer model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.smt.proof import Certificate, ProofLog
from repro.smt.sat import SatSolver, SolverStats
from repro.smt.terms import Atom
from repro.smt.theory import DifferenceLogic
from repro.smt.warmstart import WarmStartState


class SmtResult:
    """Outcome of a :meth:`DlSmtSolver.check` call.

    ``stats`` is the flat JSON-able counter dict (formula size plus the
    search counters); ``solver_stats`` is the typed
    :class:`~repro.smt.sat.SolverStats` snapshot of the CDCL core.
    ``certificate`` is attached when the solver was built with
    ``proof=True``: the input CNF and atom map plus either the model
    (SAT) or the logged proof steps (UNSAT), ready for the independent
    checkers in :mod:`repro.check`.
    """

    def __init__(
        self,
        sat: bool,
        model: Optional[Dict[str, int]],
        stats: Dict[str, int],
        solver_stats: Optional[SolverStats] = None,
        certificate: Optional[Certificate] = None,
    ):
        self.sat = sat
        self._model = model
        self.stats = stats
        self.solver_stats = solver_stats or SolverStats()
        self.certificate = certificate

    def __bool__(self) -> bool:
        return self.sat

    @property
    def model(self) -> Dict[str, int]:
        if not self.sat or self._model is None:
            raise RuntimeError("no model: formula is unsatisfiable")
        return self._model


class _DlTheoryAdapter:
    """Bridges SAT literals to difference-logic assertions."""

    def __init__(self, dl: DifferenceLogic) -> None:
        self._dl = dl
        self._atom_of_var: Dict[int, Atom] = {}
        self._depths: List[int] = []  # DL stack depth before each assertion

    def register(self, var: int, atom: Atom) -> None:
        self._atom_of_var[var] = atom

    def relevant(self, var: int) -> bool:
        return var in self._atom_of_var

    def on_assign(self, lit: int) -> Optional[List[int]]:
        atom = self._atom_of_var[abs(lit)]
        if lit < 0:
            atom = atom.negate()
        depth_before = self._dl.num_asserted
        conflict = self._dl.assert_atom(atom, token=lit)
        if conflict is not None:
            return conflict
        self._depths.append(depth_before)
        return None

    def on_backtrack(self, num_assigned: int) -> None:
        if num_assigned < len(self._depths):
            depth = self._depths[num_assigned]
            del self._depths[num_assigned:]
            self._dl.backtrack_to(depth)

    @property
    def last_conflict_cycle(self):
        """Negative-cycle witness of the latest theory conflict (for
        proof logging); atoms in cycle order."""
        return self._dl.last_conflict_cycle


class DlSmtSolver:
    """Public SMT interface: assert atoms/clauses over integer variables.

    Usage::

        solver = DlSmtSolver()
        solver.require(var_ge("phi", 0))
        solver.add_clause([diff_ge("a", "b", 10), diff_ge("b", "a", 10)])
        result = solver.check()
        if result:
            print(result.model["phi"])
    """

    def __init__(self, proof: bool = False) -> None:
        self._dl = DifferenceLogic()
        self._adapter = _DlTheoryAdapter(self._dl)
        self._proof = ProofLog() if proof else None
        self._sat = SatSolver(theory=self._adapter, proof=self._proof)
        self._vars_of_atom: Dict[Atom, int] = {}
        self._int_vars: List[str] = []
        self._int_var_set = set()
        # With proof logging on, the input clauses are retained verbatim
        # so the certificate can carry the formula the checker replays.
        self._input_clauses: List[List[int]] = []
        self._num_clauses = 0
        self._warm_lemmas = 0
        self._checked: Optional[SmtResult] = None

    # ------------------------------------------------------------------
    def int_var(self, name: str) -> str:
        """Declare an integer variable (idempotent)."""
        if name not in self._int_var_set:
            self._int_var_set.add(name)
            self._int_vars.append(name)
        return name

    def _literal(self, atom: Atom) -> int:
        canonical, sign = atom.canonical()
        var = self._vars_of_atom.get(canonical)
        if var is None:
            var = self._sat.new_var()
            self._vars_of_atom[canonical] = var
            self._adapter.register(var, canonical)
        for name in (atom.x, atom.y):
            self.int_var(name)
        return sign * var

    def require(self, atom: Atom) -> None:
        """Assert ``atom`` unconditionally (a unit clause)."""
        self.add_clause([atom])

    def add_clause(self, atoms: Sequence[Atom]) -> None:
        """Assert the disjunction of ``atoms``."""
        if not atoms:
            raise ValueError("empty clause is trivially unsatisfiable")
        self._checked = None
        lits = [self._literal(a) for a in atoms]
        self._num_clauses += 1
        if self._proof is not None:
            self._input_clauses.append(list(lits))
        self._sat.add_clause(lits)

    # ------------------------------------------------------------------
    # warm start
    # ------------------------------------------------------------------
    def apply_warm_state(self, state: WarmStartState) -> int:
        """Inject formula-independent state from a previous solve.

        Must run after the formula is built (atoms are matched by
        canonical form against this solver's atom table) and before
        :meth:`check`.  Three pieces apply:

        * theory lemmas whose atoms all exist here are added as
          (redundant, theory-valid) clauses;
        * saved phases and VSIDS activities seed the branching order;
        * the previous feasible potential seeds the difference-logic
          core, provided nothing has been asserted yet.

        Skipped entirely under proof logging — injected lemmas are not
        input clauses and would corrupt the certificate's CNF.  Returns
        the number of lemmas injected.
        """
        if self._proof is not None:
            return 0
        if state.potentials and self._dl.num_asserted == 0:
            self._dl.seed_potential(state.potentials)
        phases: Dict[int, bool] = {}
        activities: Dict[int, float] = {}
        for atom, phase in state.phases.items():
            var = self._vars_of_atom.get(atom)
            if var is not None:
                phases[var] = phase
        for atom, activity in state.activities.items():
            var = self._vars_of_atom.get(atom)
            if var is not None:
                activities[var] = activity
        self._sat.seed_heuristics(phases, activities)
        injected = 0
        for clause in state.lemmas:
            lits: List[int] = []
            for atom in clause:
                canonical, sign = atom.canonical()
                var = self._vars_of_atom.get(canonical)
                if var is None:
                    break
                lits.append(sign * var)
            else:
                if lits:
                    self._checked = None
                    self._sat.add_clause(lits)
                    injected += 1
        self._warm_lemmas = injected
        return injected

    def export_warm_state(self) -> WarmStartState:
        """Snapshot the formula-independent state after a solve."""
        atom_of_var = {var: atom for atom, var in self._vars_of_atom.items()}
        lemmas: List[List[Atom]] = []
        for clause in self._sat.theory_lemmas:
            atoms: List[Atom] = []
            for lit in clause:
                atom = atom_of_var.get(abs(lit))
                if atom is None:
                    break
                atoms.append(atom if lit > 0 else atom.negate())
            else:
                if atoms:
                    lemmas.append(atoms)
        phases: Dict[Atom, bool] = {}
        activities: Dict[Atom, float] = {}
        for atom, var in self._vars_of_atom.items():
            phases[atom] = self._sat._phase[var]
            activity = self._sat._activity[var]
            if activity:
                activities[atom] = activity
        return WarmStartState(
            lemmas=lemmas,
            phases=phases,
            activities=activities,
            potentials=dict(self._dl._pi),
        )

    # ------------------------------------------------------------------
    def check(self) -> SmtResult:
        """Run the DPLL(T) search."""
        sat = self._sat.solve()
        model: Optional[Dict[str, int]] = None
        if sat:
            values = self._dl.model()
            from repro.smt.terms import ZERO

            model = {
                name: values.get(name, 0)
                for name in self._int_vars
                if name != ZERO
            }
        solver_stats = self._sat.stats()
        stats = {
            "atoms": len(self._vars_of_atom),
            "clauses": self._num_clauses,
            "warm_lemmas": self._warm_lemmas,
        }
        stats.update(solver_stats.to_dict())
        certificate = None
        if self._proof is not None:
            certificate = Certificate(
                status="sat" if sat else "unsat",
                cnf=[list(clause) for clause in self._input_clauses],
                atoms={var: atom for atom, var in self._vars_of_atom.items()},
                model=dict(model) if model is not None else None,
                proof=None if sat else list(self._proof.steps),
            )
        self._checked = SmtResult(sat, model, stats, solver_stats, certificate)
        return self._checked
