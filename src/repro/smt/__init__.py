"""A from-scratch SMT solver for integer difference logic (QF_IDL).

Replaces z3 in the paper's pipeline: a CDCL SAT core (:mod:`repro.smt.sat`)
drives an incremental negative-cycle theory solver
(:mod:`repro.smt.theory`) through the DPLL(T) loop in
:mod:`repro.smt.solver`.
"""

from repro.smt.sat import SatSolver, SolverStats
from repro.smt.solver import DlSmtSolver, SmtResult
from repro.smt.terms import ZERO, Atom, diff_ge, diff_le, var_ge, var_le
from repro.smt.theory import DifferenceLogic

__all__ = [
    "Atom",
    "DifferenceLogic",
    "DlSmtSolver",
    "SatSolver",
    "SmtResult",
    "SolverStats",
    "ZERO",
    "diff_ge",
    "diff_le",
    "var_ge",
    "var_le",
]
