"""Sharded vs single-store admission throughput on a 4-ring network.

The cluster claim (ISSUE: sharded multi-tenant admission): on a
shard-local workload — industrial cells mostly talk within themselves —
a 4-shard :class:`~repro.cluster.ClusterCoordinator` must admit at
least 2x faster than one :class:`~repro.service.AdmissionService` over
the whole network.  The multiple is algorithmic, not just threading:
each shard's incremental admit walks a schedule a quarter of the global
size, and the four shard batches run concurrently on the pool.

A cross-shard admit at the end exercises the two-phase publish inside
the measured flow, and the stitched global schedule must pass the GCL
audit afterwards — sharding must not cost correctness.
"""

import os
import time

from repro.analysis import format_table
from repro.cluster import ClusterCoordinator, partition_topology
from repro.core import validate
from repro.experiments import line_of_rings
from repro.model.stream import Priorities, TctRequirement
from repro.model.units import milliseconds
from repro.service import (
    AdmissionService,
    AdmitTct,
    ScheduleStore,
    empty_schedule,
)

RINGS = 4
RING_SIZE = 4
DEVICES_PER_SWITCH = 2
#: Large enough that per-admit cost is dominated by schedule size (the
#: advantage sharding buys), not by fixed per-batch overhead.
STREAMS_PER_RING = 96

#: The acceptance bar is >=2x on an otherwise idle machine (~2.7x
#: measured).  Shared CI runners cannot promise the cores a wall-clock
#: multiple needs, so CI lowers the floor through the environment while
#: 2x stays the local/soak target; the work-partitioning assertions
#: below stay deterministic either way.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_CLUSTER_SPEEDUP_FLOOR", "2.0"))


def _tct(name, src, dst, period_ms=8, length=800):
    return AdmitTct(TctRequirement(
        name=name, source=src, destination=dst,
        period_ns=milliseconds(period_ms), length_bytes=length,
        priority=Priorities.NSH_PH,
    ))


def _local_workload():
    """Shard-local streams: every ring's devices talk within the ring."""
    requests = []
    for ring in range(RINGS):
        for i in range(STREAMS_PER_RING):
            src = f"R{ring}S{i % RING_SIZE}D{i % DEVICES_PER_SWITCH}"
            dst = (f"R{ring}S{(i + 2) % RING_SIZE}"
                   f"D{(i + 1) % DEVICES_PER_SWITCH}")
            requests.append(_tct(
                f"r{ring}s{i}", src, dst, period_ms=8 + 2 * (i % 3)
            ))
    return requests


def _topology():
    return line_of_rings(rings=RINGS, ring_size=RING_SIZE,
                         devices_per_switch=DEVICES_PER_SWITCH)


def _run_single(requests):
    topo = _topology()
    service = AdmissionService(ScheduleStore(empty_schedule(topo)))
    started = time.perf_counter()
    decisions = service.submit_many(requests)
    elapsed = time.perf_counter() - started
    assert all(d.accepted for d in decisions)
    validate(service.store.schedule)
    return elapsed


def _run_cluster(requests):
    topo = _topology()
    partition = partition_topology(
        topo, RINGS, seeds=[f"R{r}S2" for r in range(RINGS)]
    )
    coordinator = ClusterCoordinator(partition=partition)
    started = time.perf_counter()
    decisions = coordinator.submit_many(requests)
    elapsed = time.perf_counter() - started
    assert all(d.accepted for d in decisions)
    return elapsed, coordinator


def test_cluster_throughput_multiple(benchmark, emit, bench_record):
    requests = _local_workload()

    # warm-up pass (imports, pools), then best-of-3 for both arms
    _run_single(requests[: 2 * STREAMS_PER_RING])
    single_s = min(_run_single(requests) for _ in range(3))
    trials = [_run_cluster(requests) for _ in range(3)]
    for _, coordinator in trials[:-1]:
        coordinator.shutdown()
    cluster_s = min(elapsed for elapsed, _ in trials)
    coordinator = trials[-1][1]

    # deterministic partitioning evidence, immune to runner load: every
    # admit of the local workload took the parallel shard-local path
    assert coordinator.metrics.counter(
        "cluster.requests_local"
    ).value == len(requests)
    assert coordinator.metrics.counter("cluster.requests_cross").value == 0

    # the two-phase path works inside the same cluster, and the
    # stitched global schedule still audits clean
    cross = coordinator.submit(_tct("crosser", "R0S1D0", "R3S1D1"))
    assert cross.accepted and cross.rung == "twophase"
    assert coordinator.audit() is not None

    speedup = single_s / cluster_s
    count = len(requests)
    emit("cluster_admission", format_table(
        ["arm", "streams", "wall_s", "admits_per_sec"],
        [
            ["single-store", count, f"{single_s:.3f}",
             f"{count / single_s:.0f}"],
            [f"{RINGS}-shard cluster", count, f"{cluster_s:.3f}",
             f"{count / cluster_s:.0f}"],
            ["speedup", "", f"{speedup:.2f}x", ""],
        ],
        title=(
            f"Shard-local admission storm on {RINGS} rings of "
            f"{RING_SIZE} switches ({count} streams)"
        ),
    ))

    bench_record("cluster", {
        "benchmark": "cluster_throughput_multiple",
        "network": f"{RINGS}-rings-of-{RING_SIZE}",
        "streams": count,
        "single_store": {
            "wall_s": round(single_s, 4),
            "admits_per_sec": round(count / single_s, 1),
        },
        "cluster": {
            "shards": RINGS,
            "wall_s": round(cluster_s, 4),
            "admits_per_sec": round(count / cluster_s, 1),
        },
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
    })

    # the acceptance bar: 2x on the shard-local workload by default,
    # relaxed via REPRO_CLUSTER_SPEEDUP_FLOOR on loaded shared runners
    assert speedup >= SPEEDUP_FLOOR, (
        f"4-shard cluster is only {speedup:.2f}x the single store "
        f"(floor {SPEEDUP_FLOOR}x)"
    )

    # steady-state hot path: one shard-local admit + its rollback
    from repro.service import Remove

    def admit_remove_cycle():
        coordinator.submit(_tct("bench", "R1S0D0", "R1S2D1"))
        coordinator.submit(Remove("bench"))

    benchmark(admit_remove_cycle)
    coordinator.shutdown()
