"""Paper Fig. 15: ECT's impact on TCT under E-TSN.

Regenerates: per-stream TCT latency with vs without random ECT, for
three non-shared and three shared streams.  Shape claims (Sec. VI-C2):

* non-shared streams are bit-for-bit unaffected by ECT;
* shared streams may see higher latency/jitter with ECT present, but
  their worst case stays below the allowed maximum.
"""

from repro.experiments import fig15, simulation_workload
from repro.core import schedule_etsn


def test_fig15_tct_impact(benchmark, bench_duration_ns, emit):
    config = fig15.Fig15Config(duration_ns=bench_duration_ns)
    result = fig15.run(config)
    emit("fig15_tct_impact", fig15.format_result(result))

    assert len(result.nonshared()) == config.num_reported
    assert len(result.shared()) == config.num_reported
    for impact in result.nonshared():
        assert impact.unaffected, f"{impact.stream} changed without sharing"
    for impact in result.impacts:
        assert impact.worst_within_budget, (
            f"{impact.stream} exceeded its allowed latency under ECT"
        )
    # the encroachment is visible: some shared stream's latency moved
    assert any(
        impact.with_ect.maximum_ns > impact.without_ect.maximum_ns
        for impact in result.shared()
    )

    workload = simulation_workload(
        config.load, seed=config.seed, num_nonshared=fig15.NUM_NONSHARED
    )
    benchmark(
        lambda: schedule_etsn(workload.topology, workload.tct_streams,
                              workload.ect_streams)
    )
