"""Paper Fig. 16: four concurrent ECT streams.

Regenerates: latency and jitter of four ECT streams (D1->D12 plus three
random-endpoint streams) at 50 % load, per method.  Shape claims
(Sec. VI-C3): E-TSN achieves the lowest latency and jitter for *every*
stream simultaneously, with aggregate reductions in the paper's regime.
"""

from repro.experiments import fig16, simulation_workload
from repro.core import schedule_etsn


def test_fig16_multi_ect(benchmark, bench_duration_ns, emit):
    config = fig16.Fig16Config(duration_ns=bench_duration_ns)
    result = fig16.run(config)
    reductions = fig16.average_reductions(result)
    text = fig16.format_result(result) + "\n\nAggregate reductions (%): " + \
        ", ".join(f"{k}={v:.1f}" for k, v in sorted(reductions.items()))
    emit("fig16_multi_ect", text)

    for name in result.ect_names:
        etsn = result.stats[("etsn", name)]
        for method in config.methods:
            if method == "etsn":
                continue
            other = result.stats[(method, name)]
            assert etsn.average_ns < other.average_ns, (name, method)
            assert etsn.stddev_ns < other.stddev_ns, (name, method)
    assert reductions["period_jitter"] > 70
    assert reductions["avb_jitter"] > 70
    assert reductions["period_latency"] > 30
    assert reductions["avb_latency"] > 30

    workload = simulation_workload(config.load, seed=config.seed,
                                   num_ect=fig16.NUM_ECT)
    benchmark(
        lambda: schedule_etsn(workload.topology, workload.tct_streams,
                              workload.ect_streams)
    )
