"""Network frontend throughput: ``repro loadgen`` against a sharded
cluster over localhost sockets, cache on vs cache off.

The frontend self-hosts a 2-shard :class:`ClusterCoordinator` over the
Fig. 13/14 simulation topology and is driven closed-loop with a
repeated-shape mix of deterministic rejections — the industrial
arrival pattern (few profiles, fresh names) the decision cache exists
for.  The headline run sustains 100k+ requests; a second, shorter run
with the cache disabled provides the baseline for the
``cache_speedup`` regression gate.

``REPRO_FRONTEND_REQUESTS`` scales the headline run (default 100000).
``REPRO_FRONTEND_CACHE_SPEEDUP_FLOOR`` tunes the speedup gate for
loaded shared runners (default 1.3; the local target is ~2x),
mirroring ``REPRO_FASTPATH_SPEEDUP_FLOOR``.
"""

import os

from repro.analysis import format_table
from repro.cluster import ClusterCoordinator, partition_topology
from repro.experiments import simulation_topology
from repro.frontend.loadgen import (
    LoadgenConfig,
    make_profiles,
    run_loadgen_sync,
)
from repro.frontend.server import (
    ClusterBackend,
    Frontend,
    FrontendConfig,
    FrontendThread,
)

TOTAL_REQUESTS = int(os.environ.get("REPRO_FRONTEND_REQUESTS", "100000"))
BASELINE_REQUESTS = max(2_000, TOTAL_REQUESTS // 10)
SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_FRONTEND_CACHE_SPEEDUP_FLOOR", "1.3")
)

#: device pairs in the simulation topology: one local to each of the
#: two shards, one crossing the border — the mix exercises all paths
ENDPOINTS = (("D1", "D4"), ("D10", "D12"), ("D1", "D12"))


def _run(cache: bool, total: int):
    coordinator = ClusterCoordinator(
        partition=partition_topology(
            simulation_topology(), 2, seeds=["SW1", "SW4"]
        ),
    )
    frontend = Frontend(
        ClusterBackend(coordinator),
        FrontendConfig(cache_size=4096 if cache else 0),
    )
    thread = FrontendThread(frontend)
    host, port = thread.start()
    try:
        report = run_loadgen_sync(
            LoadgenConfig(
                host=host, port=port, total_requests=total,
                connections=4, window=64,
            ),
            make_profiles(ENDPOINTS, distinct=8, infeasible_fraction=1.0),
        )
    finally:
        thread.stop()
        coordinator.shutdown()
    return report, frontend.metrics.to_dict()


def test_frontend_loadgen_throughput(benchmark, emit, bench_record):
    report_on, metrics_on = _run(cache=True, total=TOTAL_REQUESTS)
    report_off, _ = _run(cache=False, total=BASELINE_REQUESTS)

    speedup = (
        report_on.requests_per_sec / report_off.requests_per_sec
        if report_off.requests_per_sec else 0.0
    )

    emit("frontend_loadgen", format_table(
        ["cache", "requests", "req/s", "p50_ms", "p99_ms", "p999_ms",
         "hit_rate", "dropped"],
        [
            ["on", report_on.sent, f"{report_on.requests_per_sec:.0f}",
             f"{report_on.rtt_p50_ms:.2f}", f"{report_on.rtt_p99_ms:.2f}",
             f"{report_on.rtt_p999_ms:.2f}",
             f"{report_on.cache_hit_rate:.3f}", report_on.dropped],
            ["off", report_off.sent, f"{report_off.requests_per_sec:.0f}",
             f"{report_off.rtt_p50_ms:.2f}", f"{report_off.rtt_p99_ms:.2f}",
             f"{report_off.rtt_p999_ms:.2f}",
             f"{report_off.cache_hit_rate:.3f}", report_off.dropped],
            ["", "speedup", f"{speedup:.2f}x", "", "", "", "", ""],
        ],
        title=(
            "Frontend loadgen, 2-shard cluster over localhost "
            f"({TOTAL_REQUESTS} requests closed-loop)"
        ),
    ))

    counters = metrics_on["counters"]
    bench_record("frontend", {
        "benchmark": "frontend_loadgen_throughput",
        "network": "fig13-simulation/2-shards",
        "requests": report_on.sent,
        "requests_per_sec": round(report_on.requests_per_sec, 1),
        "rtt_p50_ms": round(report_on.rtt_p50_ms, 3),
        "rtt_p99_ms": round(report_on.rtt_p99_ms, 3),
        "rtt_p999_ms": round(report_on.rtt_p999_ms, 3),
        "cache_hit_rate": round(report_on.cache_hit_rate, 4),
        "cache_speedup": round(speedup, 2),
        "dropped": report_on.dropped,
        "batches": counters.get("frontend.batches", 0),
        "cache_off": {
            "requests": report_off.sent,
            "requests_per_sec": round(report_off.requests_per_sec, 1),
            "rtt_p99_ms": round(report_off.rtt_p99_ms, 3),
        },
    })

    # the acceptance gates: sustained volume, zero drops, an effective
    # cache, and the cache actually buying throughput
    assert report_on.sent >= TOTAL_REQUESTS
    assert report_on.ok == report_on.sent
    assert report_on.dropped == 0, (
        f"{report_on.dropped} requests dropped under closed-loop load"
    )
    assert report_off.dropped == 0
    assert report_on.cache_hit_rate >= 0.9, (
        f"repeated-shape mix only hit {report_on.cache_hit_rate:.1%}"
    )
    assert report_off.cached == 0
    assert speedup >= SPEEDUP_FLOOR, (
        f"decision cache is only {speedup:.2f}x the cache-off baseline "
        f"(floor {SPEEDUP_FLOOR}x)"
    )

    # hot-path timing for pytest-benchmark: one cached round trip
    coordinator = ClusterCoordinator(
        partition=partition_topology(
            simulation_topology(), 2, seeds=["SW1", "SW4"]
        ),
    )
    frontend = Frontend(ClusterBackend(coordinator), FrontendConfig())
    thread = FrontendThread(frontend)
    host, port = thread.start()
    profiles = make_profiles(ENDPOINTS[:1], distinct=1,
                             infeasible_fraction=1.0)
    try:
        # prime the cache, then time single-request round trips
        run_loadgen_sync(
            LoadgenConfig(host=host, port=port, total_requests=50,
                          connections=1, window=1),
            profiles,
        )

        def cached_roundtrip():
            run_loadgen_sync(
                LoadgenConfig(host=host, port=port, total_requests=10,
                              connections=1, window=1),
                profiles,
            )

        benchmark(cached_roundtrip)
    finally:
        thread.stop()
        coordinator.shutdown()
