"""Microbenchmarks of the from-scratch DPLL(T) solver and the paper's
Fig. 6 example through the faithful SMT backend."""

import itertools
import time

from repro.core import schedule_smt, validate
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.topology import Topology
from repro.model.units import MBPS_100, transmission_time_ns, wire_bytes
from repro.smt import DlSmtSolver, diff_ge, var_ge, var_le


def test_smt_packing_sat(benchmark):
    """30 unit jobs packed into a loose horizon: a pure-solver workload."""

    def solve():
        solver = DlSmtSolver()
        names = [f"j{i}" for i in range(30)]
        for name in names:
            solver.require(var_ge(name, 0))
            solver.require(var_le(name, 400))
        for a, b in itertools.combinations(names, 2):
            solver.add_clause([diff_ge(a, b, 10), diff_ge(b, a, 10)])
        result = solver.check()
        assert result.sat
        return result

    result = benchmark(solve)
    values = sorted(result.model[f"j{i}"] for i in range(30))
    assert all(b - a >= 10 for a, b in zip(values, values[1:]))


def test_smt_packing_unsat(benchmark):
    """Small over-constrained packing: conflict analysis exercised."""

    def solve():
        solver = DlSmtSolver()
        names = [f"j{i}" for i in range(5)]
        for name in names:
            solver.require(var_ge(name, 0))
            solver.require(var_le(name, 17))  # horizon 22 fits only 4 of 5
        for a, b in itertools.combinations(names, 2):
            solver.add_clause([diff_ge(a, b, 5), diff_ge(b, a, 5)])
        result = solver.check()
        assert not result.sat
        return result

    benchmark(solve)


def _packing_solve(proof: bool):
    solver = DlSmtSolver(proof=proof)
    names = [f"j{i}" for i in range(30)]
    for name in names:
        solver.require(var_ge(name, 0))
        solver.require(var_le(name, 400))
    for a, b in itertools.combinations(names, 2):
        solver.add_clause([diff_ge(a, b, 10), diff_ge(b, a, 10)])
    result = solver.check()
    assert result.sat
    return result


def _best_of(runs: int, fn) -> float:
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_proof_logging_overhead():
    """Certificate logging must stay cheap: the same budget discipline
    as the tracer (PR 2), with headroom for timer noise on the shared
    CI runners — proof=True may cost at most 2x the plain solve, and
    the plain path must not secretly pay for proof plumbing."""
    for _ in range(2):  # warm up allocators and caches
        _packing_solve(proof=False)
    plain = _best_of(5, lambda: _packing_solve(proof=False))
    logged = _best_of(5, lambda: _packing_solve(proof=True))
    assert logged <= plain * 2.0, (
        f"proof logging overhead too high: {plain * 1e3:.2f} ms plain "
        f"vs {logged * 1e3:.2f} ms with certificates"
    )
    # the certificate must actually have been produced (no lazy cheat)
    result = _packing_solve(proof=True)
    assert result.certificate is not None
    assert result.certificate.status == "sat"
    assert len(result.certificate.cnf) > 400
    # and the plain path must not carry one
    assert _packing_solve(proof=False).certificate is None


def test_smt_scheduler_speed(benchmark):
    """The full paper Fig. 6 example through expand -> Alg. 1 -> Eq. 1-7
    -> DPLL(T) -> validation."""
    topo = Topology()
    topo.add_switch("SW1")
    for device in ("D1", "D2", "D3"):
        topo.add_device(device)
        topo.add_link(device, "SW1", bandwidth_bps=MBPS_100)
    frame_time = transmission_time_ns(wire_bytes(1500), MBPS_100)
    period = 5 * frame_time
    s1 = Stream(
        name="s1", path=tuple(topo.shortest_path("D1", "D3")),
        e2e_ns=period, priority=Priorities.SH_PL, length_bytes=3 * 1500,
        period_ns=period, share=True,
    )
    s2 = EctStream(
        name="s2", source="D2", destination="D3",
        min_interevent_ns=period, length_bytes=1500, possibilities=5,
    )

    schedule = benchmark(lambda: schedule_smt(topo, [s1], [s2]))
    validate(schedule)
    assert len(schedule.probabilistic_streams()) == 5
