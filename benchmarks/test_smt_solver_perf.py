"""Microbenchmarks of the from-scratch DPLL(T) solver and the paper's
Fig. 6 example through the faithful SMT backend."""

import itertools

from repro.core import schedule_smt, validate
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.topology import Topology
from repro.model.units import MBPS_100, transmission_time_ns, wire_bytes
from repro.smt import DlSmtSolver, diff_ge, var_ge, var_le


def test_smt_packing_sat(benchmark):
    """30 unit jobs packed into a loose horizon: a pure-solver workload."""

    def solve():
        solver = DlSmtSolver()
        names = [f"j{i}" for i in range(30)]
        for name in names:
            solver.require(var_ge(name, 0))
            solver.require(var_le(name, 400))
        for a, b in itertools.combinations(names, 2):
            solver.add_clause([diff_ge(a, b, 10), diff_ge(b, a, 10)])
        result = solver.check()
        assert result.sat
        return result

    result = benchmark(solve)
    values = sorted(result.model[f"j{i}"] for i in range(30))
    assert all(b - a >= 10 for a, b in zip(values, values[1:]))


def test_smt_packing_unsat(benchmark):
    """Small over-constrained packing: conflict analysis exercised."""

    def solve():
        solver = DlSmtSolver()
        names = [f"j{i}" for i in range(5)]
        for name in names:
            solver.require(var_ge(name, 0))
            solver.require(var_le(name, 17))  # horizon 22 fits only 4 of 5
        for a, b in itertools.combinations(names, 2):
            solver.add_clause([diff_ge(a, b, 5), diff_ge(b, a, 5)])
        result = solver.check()
        assert not result.sat
        return result

    benchmark(solve)


def test_smt_scheduler_speed(benchmark):
    """The full paper Fig. 6 example through expand -> Alg. 1 -> Eq. 1-7
    -> DPLL(T) -> validation."""
    topo = Topology()
    topo.add_switch("SW1")
    for device in ("D1", "D2", "D3"):
        topo.add_device(device)
        topo.add_link(device, "SW1", bandwidth_bps=MBPS_100)
    frame_time = transmission_time_ns(wire_bytes(1500), MBPS_100)
    period = 5 * frame_time
    s1 = Stream(
        name="s1", path=tuple(topo.shortest_path("D1", "D3")),
        e2e_ns=period, priority=Priorities.SH_PL, length_bytes=3 * 1500,
        period_ns=period, share=True,
    )
    s2 = EctStream(
        name="s2", source="D2", destination="D3",
        min_interevent_ns=period, length_bytes=1500, possibilities=5,
    )

    schedule = benchmark(lambda: schedule_smt(topo, [s1], [s2]))
    validate(schedule)
    assert len(schedule.probabilistic_streams()) == 5
