"""Paper Fig. 11 + the Sec. VI-B headline numbers.

Regenerates: ECT latency CDFs on the 2-switch testbed under E-TSN,
PERIOD, and AVB at 25/50/75 % network load, and checks the shape claims:

* E-TSN's worst case and jitter are multiples better than both baselines;
* E-TSN and PERIOD are stable across load while AVB degrades;
* E-TSN's absolute numbers land in the paper's regime
  (avg ~423 us, worst ~515 us, jitter ~39 us over 3 hops at 75 %).
"""

from repro.analysis import cdf_percentiles, format_table
from repro.experiments import fig11
from repro.experiments import testbed_workload as make_testbed_workload
from repro.core import schedule_etsn
from repro.model.units import ns_to_us


def test_fig11_latency_cdf(benchmark, bench_duration_ns, emit):
    config = fig11.Fig11Config(duration_ns=bench_duration_ns)
    result = fig11.run(config)

    # ---- emit the figure's rows (stats + CDF percentiles) --------------
    lines = [fig11.format_result(result), ""]
    rows = []
    for (load, method), cdf in sorted(result.cdfs.items()):
        pct = cdf_percentiles(cdf, fractions=(0.5, 0.9, 0.99, 1.0))
        rows.append([
            f"{load:.0%}", method,
            ns_to_us(pct[0.5]), ns_to_us(pct[0.9]),
            ns_to_us(pct[0.99]), ns_to_us(pct[1.0]),
        ])
    lines.append(format_table(
        ["load", "method", "p50_us", "p90_us", "p99_us", "p100_us"],
        rows, title="Fig. 11 CDF percentiles",
    ))
    headline = fig11.headline_numbers(result)
    lines.append("")
    lines.append("Sec. VI-B headline (75% load): " + ", ".join(
        f"{k}={v:.1f}" for k, v in headline.items()))
    emit("fig11_latency_cdf", "\n".join(lines))

    # ---- shape assertions ----------------------------------------------
    for load in config.loads:
        etsn = result.stats[(load, "etsn")]
        period = result.stats[(load, "period")]
        avb = result.stats[(load, "avb")]
        assert period.maximum_ns > 3 * etsn.maximum_ns
        assert period.stddev_ns > 5 * etsn.stddev_ns
        assert avb.stddev_ns > 3 * etsn.stddev_ns
    # E-TSN and PERIOD stable across load; AVB degrades with load
    etsn_avgs = [result.stats[(l, "etsn")].average_ns for l in config.loads]
    assert max(etsn_avgs) < 1.25 * min(etsn_avgs)
    avb_avgs = [result.stats[(l, "avb")].average_ns for l in config.loads]
    assert avb_avgs[-1] > 1.4 * avb_avgs[0]
    # headline regime: hundreds of microseconds over 3 hops
    top = result.stats[(0.75, "etsn")]
    assert 250_000 < top.average_ns < 700_000
    assert top.maximum_ns < 1_000_000
    assert top.stddev_ns < 120_000

    # ---- timing: the E-TSN joint scheduling step at 75 % load ----------
    workload = make_testbed_workload(0.75, seed=config.seed)
    benchmark(
        lambda: schedule_etsn(workload.topology, workload.tct_streams,
                              workload.ect_streams)
    )
