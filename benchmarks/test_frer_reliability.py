"""Extension bench: ECT reliability under lossy links, with and without
802.1CB-style replication (FRER) on top of E-TSN.

The paper's goal is "reliable and timely delivery" of ECT; its related
work points at seamless redundancy for the reliability half.  This bench
sweeps a per-link frame-loss probability on the ECT path and reports the
event delivery ratio and latency for plain E-TSN vs E-TSN+FRER over a
dual-homed ring."""

from repro.analysis import format_table
from repro.core import build_gcl, schedule_etsn, schedule_etsn_frer
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.topology import Topology
from repro.model.units import MBPS_100, milliseconds, ns_to_us
from repro.sim import SimConfig, TsnSimulation


def _ring():
    topo = Topology()
    switches = ["SW1", "SW2", "SW3", "SW4"]
    for s in switches:
        topo.add_switch(s)
    for a, b in zip(switches, switches[1:] + switches[:1]):
        topo.add_link(a, b, bandwidth_bps=MBPS_100)
    topo.add_device("A")
    topo.add_link("A", "SW1")
    topo.add_link("A", "SW3")
    topo.add_device("B")
    topo.add_link("B", "SW2")
    topo.add_link("B", "SW4")
    return topo


def _workload(topo):
    tct = [Stream(
        name="loop", path=tuple(topo.shortest_path("A", "B")),
        e2e_ns=milliseconds(4), priority=Priorities.SH_PL,
        length_bytes=1500, period_ns=milliseconds(4), share=True,
    )]
    ect = EctStream("alarm", "A", "B", min_interevent_ns=milliseconds(16),
                    length_bytes=1500, possibilities=4)
    return tct, ect


def test_frer_reliability_sweep(benchmark, bench_duration_ns, emit):
    topo = _ring()
    tct, ect = _workload(topo)

    plain = schedule_etsn(topo, tct, [ect])
    plain_gcl = build_gcl(plain, mode="etsn")
    plain_lossy_links = [l.key for l in ect.route(topo)[1:]]

    frer = schedule_etsn_frer(topo, tct, [ect])
    frer_gcl = build_gcl(frer, mode="etsn")
    frer_lossy_links = [
        member.route(topo)[1].key for member in frer.ect_streams
    ]

    rows = []
    ratios = {}
    for loss in (0.0, 0.01, 0.05, 0.20):
        for label, schedule, gcl, links in (
            ("etsn", plain, plain_gcl, plain_lossy_links),
            ("etsn+frer", frer, frer_gcl, frer_lossy_links),
        ):
            config = SimConfig(
                duration_ns=bench_duration_ns, seed=6,
                link_loss={key: loss for key in links},
            )
            report = TsnSimulation(schedule, gcl, config).run()
            rec = report.recorder
            injected = rec.injected("alarm")
            delivered = rec.delivered("alarm")
            ratio = delivered / injected
            ratios[(label, loss)] = ratio
            worst = ns_to_us(rec.stats("alarm").maximum_ns) if delivered else "-"
            rows.append([f"{loss:.0%}", label, injected, delivered,
                         f"{ratio:.1%}", worst])
    emit("frer_reliability", format_table(
        ["link_loss", "method", "events", "delivered", "ratio", "worst_us"],
        rows,
        title="ECT delivery under lossy links (backbone hops lossy)",
    ))

    # lossless: both perfect
    assert ratios[("etsn", 0.0)] == 1.0
    assert ratios[("etsn+frer", 0.0)] == 1.0
    # replication masks loss: at every loss rate FRER is at least as
    # reliable, and at heavy loss it is strictly better
    for loss in (0.01, 0.05, 0.20):
        assert ratios[("etsn+frer", loss)] >= ratios[("etsn", loss)]
    assert ratios[("etsn+frer", 0.20)] > ratios[("etsn", 0.20)]
    # with two independent paths of per-frame loss p (2 lossy hops each),
    # the event-loss probability is ~(1-(1-p)^2)^2: tiny at 5%
    assert ratios[("etsn+frer", 0.05)] > 0.98

    benchmark(lambda: schedule_etsn_frer(topo, tct, [ect]))
