"""Paper Fig. 12: what PERIOD pays for more dedicated slots.

Regenerates: ECT latency for PERIOD with 1x/2x/4x/8x E-TSN's slot count
against E-TSN, plus the dedicated-bandwidth column.  Shape claims:

* more slots monotonically lower PERIOD's latency, but even at 8x its
  worst case stays above E-TSN's;
* dedicated bandwidth grows linearly with the multiplier, toward the
  paper's "impractical" verdict.
"""

from repro.experiments import fig12
from repro.experiments import testbed_workload as make_testbed_workload
from repro.core import schedule_period


def test_fig12_period_cost(benchmark, bench_duration_ns, emit):
    config = fig12.Fig12Config(duration_ns=bench_duration_ns)
    result = fig12.run(config)
    emit("fig12_period_cost", fig12.format_result(result))

    etsn = result.stats["etsn"]
    multipliers = ["period", "period_x2", "period_x4", "period_x8"]
    worsts = [result.stats[m].maximum_ns for m in multipliers]
    # monotone improvement with more slots...
    assert worsts == sorted(worsts, reverse=True)
    # ...but even 8x dedicated slots cannot reach E-TSN's worst case
    assert worsts[-1] > etsn.maximum_ns
    # and E-TSN wins on average everywhere
    for m in multipliers:
        assert result.stats[m].average_ns > etsn.average_ns
    # dedicated bandwidth scales linearly with the multiplier
    bw = [result.dedicated_bandwidth[m] for m in multipliers]
    assert abs(bw[1] - 2 * bw[0]) < 0.01
    assert abs(bw[3] - 8 * bw[0]) < 0.02
    assert result.dedicated_bandwidth["etsn"] == 0.0

    workload = make_testbed_workload(config.load, seed=config.seed)
    benchmark(
        lambda: schedule_period(workload.topology, workload.tct_streams,
                                workload.ect_streams, slot_multiplier=8)
    )
