"""Admission-service throughput on the Fig. 14 simulation network:
admissions/sec and p50/p99 decision latency, with and without the
analytic fast path.

The service is seeded with the 40-stream Fig. 13/14 workload, then driven
with a request mix that exercises every decision path: plain TCT admits
and removals, sharing TCT admits (the incremental primitive refuses them
while ECT is present, so without the fast path they force the full
re-solve), and a capacity hog that is conclusively rejected.

The mix runs twice — fast path on (the headline numbers) and off (ladder
continuity: the incremental and full rungs still work and their relative
order still holds).  The ratio of the two aggregate wall-clocks is the
``fastpath_speedup`` the regression gate tracks; the floor is tunable via
``REPRO_FASTPATH_SPEEDUP_FLOOR`` for loaded shared runners (the local
target is 5x)."""

import os
import time

import pytest

from repro.analysis import format_table
from repro.core import validate
from repro.experiments import simulation_workload
from repro.model.stream import Priorities, TctRequirement
from repro.model.units import milliseconds
from repro.service import (
    AdmissionService,
    AdmitTct,
    Remove,
    ScheduleStore,
    ServiceConfig,
)

SPEEDUP_FLOOR = float(os.environ.get("REPRO_FASTPATH_SPEEDUP_FLOOR", "5.0"))


def _tct(name, src, dst, period_ms=10, length=800, share=False):
    return AdmitTct(TctRequirement(
        name=name, source=src, destination=dst,
        period_ns=milliseconds(period_ms), length_bytes=length,
        priority=Priorities.SH_PL if share else Priorities.NSH_PH,
        share=share,
    ))


def _percentile(values, q):
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


def _request_mix(devices):
    requests = []
    # plain TCT admits + churn
    for i in range(24):
        src, dst = devices[i % len(devices)], devices[(i + 5) % len(devices)]
        requests.append(_tct(f"adm{i}", src, dst))
        if i % 3 == 2:
            requests.append(Remove(f"adm{i - 1}"))
    # sharing TCT admits: without the fast path these force the full
    # re-solve rung
    for i in range(3):
        src = devices[(2 * i) % len(devices)]
        dst = devices[(2 * i + 7) % len(devices)]
        requests.append(_tct(f"share{i}", src, dst, period_ms=20, share=True))
    # a capacity hog: conclusively rejected (fast path on) or rejected
    # after climbing every rung (fast path off)
    requests.append(_tct("hog", devices[0], devices[1], period_ms=5,
                         length=80 * 1500))
    return requests


def _drive(base, requests, config):
    """Run the mix against a fresh store; returns (by_rung, wall_s)."""
    store = ScheduleStore(base)
    service = AdmissionService(store, config=config)
    started = time.perf_counter()
    decisions = [service.submit(request) for request in requests]
    wall_s = time.perf_counter() - started
    validate(store.schedule)
    assert len(decisions) == len(requests)
    assert all(d.accepted or d.reason for d in decisions)
    by_rung = {}
    for decision in decisions:
        rung = decision.rung if decision.accepted else "rejected"
        by_rung.setdefault(rung, []).append(decision.latency_ms)
    return by_rung, wall_s, service


def _rungs_json(by_rung, order):
    rungs_json = {}
    for rung in order:
        latencies = by_rung.get(rung)
        if not latencies:
            continue
        mean_ms = sum(latencies) / len(latencies)
        entry = {
            "decisions": len(latencies),
            "p50_ms": round(_percentile(latencies, 50), 3),
            "p99_ms": round(_percentile(latencies, 99), 3),
        }
        if rung != "rejected":
            # a rejection is not throughput: its latency distribution is
            # tracked (satellite histogram latency.rejected_ms), but it
            # contributes no admissions/sec metric to the gate
            entry["admissions_per_sec"] = (
                round(1e3 / mean_ms, 1) if mean_ms else None
            )
        rungs_json[rung] = entry
    return rungs_json


def test_admission_service_throughput(benchmark, emit, bench_record):
    from repro.core import schedule_etsn

    workload = simulation_workload(0.25, seed=1)
    base = schedule_etsn(workload.topology, workload.tct_streams,
                         workload.ect_streams)
    devices = [d.name for d in workload.topology.devices]
    requests = _request_mix(devices)

    by_rung_off, wall_off, _ = _drive(
        base, requests,
        ServiceConfig(heuristic_min_restarts=16, fastpath=False),
    )
    by_rung_on, wall_on, service = _drive(
        base, requests, ServiceConfig(heuristic_min_restarts=16),
    )

    all_on = [l for ls in by_rung_on.values() for l in ls]
    all_off = [l for ls in by_rung_off.values() for l in ls]
    per_sec_on = len(requests) / wall_on
    per_sec_off = len(requests) / wall_off
    speedup = wall_off / wall_on

    order = ("fastpath", "incremental", "full", "heuristic", "rejected")
    rows = []
    for label, by_rung in (("on", by_rung_on), ("off", by_rung_off)):
        for rung in order:
            latencies = by_rung.get(rung)
            if not latencies:
                continue
            rows.append([
                label, rung, len(latencies),
                f"{_percentile(latencies, 50):.2f}",
                f"{_percentile(latencies, 99):.2f}",
            ])
    rows.append(["", "aggregate on", len(requests),
                 f"{per_sec_on:.0f}/s", f"{_percentile(all_on, 99):.2f}"])
    rows.append(["", "aggregate off", len(requests),
                 f"{per_sec_off:.0f}/s", f"{_percentile(all_off, 99):.2f}"])
    rows.append(["", "speedup", "", f"{speedup:.1f}x", ""])

    bench_record("admission", {
        "benchmark": "admission_service_throughput",
        "network": "fig13-simulation",
        "seed_streams": len(workload.tct_streams) + len(workload.ect_streams),
        "decisions": len(requests),
        "admissions_per_sec": round(per_sec_on, 1),
        "p99_ms": round(_percentile(all_on, 99), 3),
        "fastpath_speedup": round(speedup, 2),
        "rungs": _rungs_json(by_rung_on, order),
        "fastpath_off": {
            "admissions_per_sec": round(per_sec_off, 1),
            "p99_ms": round(_percentile(all_off, 99), 3),
            "rungs": _rungs_json(by_rung_off, order),
        },
    })
    emit("admission_service", format_table(
        ["fastpath", "rung", "decisions", "p50_ms", "p99_ms"],
        rows,
        title=(
            "Online admission on the 40-stream Fig. 13/14 network "
            f"({len(requests)} decisions per run)"
        ),
    ))

    # the fast path decided the accepts and the reject conclusively
    assert "fastpath" in by_rung_on and "rejected" in by_rung_on
    counters = service.metrics.to_dict()["counters"]
    assert counters.get("fastpath.accepts", 0) >= 30
    assert counters.get("fastpath.rejects", 0) >= 1
    # ladder continuity with the fast path off: the mix still exercises
    # the incremental and full rungs, and incremental stays the cheaper
    assert "incremental" in by_rung_off and "full" in by_rung_off
    assert "rejected" in by_rung_off
    assert (_percentile(by_rung_off["incremental"], 50)
            <= _percentile(by_rung_off["full"], 50))
    # the headline gate: aggregate speedup and a p99 cut
    assert speedup >= SPEEDUP_FLOOR, (
        f"fast path is only {speedup:.2f}x the ladder "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    assert _percentile(all_on, 99) < _percentile(all_off, 99), (
        "fast path did not cut the p99 decision latency"
    )

    # hot-path timing for pytest-benchmark: one admit/remove cycle
    store = ScheduleStore(base)
    service = AdmissionService(
        store, config=ServiceConfig(heuristic_min_restarts=16)
    )

    def admit_remove_cycle():
        service.submit(_tct("bench", devices[2], devices[9]))
        service.submit(Remove("bench"))

    benchmark(admit_remove_cycle)
