"""Admission-service throughput on the Fig. 14 simulation network:
admissions/sec and p50/p99 decision latency, reported per fallback rung.

The service is seeded with the 40-stream Fig. 13/14 workload, then driven
with a request mix that exercises every ladder rung: plain TCT admits and
removals land on the incremental rung, sharing TCT admits force the full
re-solve (the incremental primitive refuses them while ECT is present),
and capacity hogs are rejected after climbing the whole ladder."""

import pytest

from repro.analysis import format_table
from repro.core import validate
from repro.experiments import simulation_workload
from repro.model.stream import Priorities, TctRequirement
from repro.model.units import milliseconds
from repro.service import (
    AdmissionService,
    AdmitTct,
    Remove,
    ScheduleStore,
    ServiceConfig,
)


def _tct(name, src, dst, period_ms=10, length=800, share=False):
    return AdmitTct(TctRequirement(
        name=name, source=src, destination=dst,
        period_ns=milliseconds(period_ms), length_bytes=length,
        priority=Priorities.SH_PL if share else Priorities.NSH_PH,
        share=share,
    ))


def _percentile(values, q):
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


def test_admission_service_throughput(benchmark, emit, bench_record):
    from repro.core import schedule_etsn

    workload = simulation_workload(0.25, seed=1)
    base = schedule_etsn(workload.topology, workload.tct_streams,
                         workload.ect_streams)
    store = ScheduleStore(base)
    service = AdmissionService(
        store, config=ServiceConfig(heuristic_min_restarts=16)
    )
    devices = [d.name for d in workload.topology.devices]

    requests = []
    # plain TCT admits + churn: the incremental rung
    for i in range(24):
        src, dst = devices[i % len(devices)], devices[(i + 5) % len(devices)]
        requests.append(_tct(f"adm{i}", src, dst))
        if i % 3 == 2:
            requests.append(Remove(f"adm{i - 1}"))
    # sharing TCT admits: forces the full re-solve rung
    for i in range(3):
        src, dst = devices[(2 * i) % len(devices)], devices[(2 * i + 7) % len(devices)]
        requests.append(_tct(f"share{i}", src, dst, period_ms=20, share=True))
    # a capacity hog: climbs and fails every rung (structured rejection)
    requests.append(_tct("hog", devices[0], devices[1], period_ms=5,
                         length=80 * 1500))

    decisions = [service.submit(request) for request in requests]
    validate(store.schedule)

    by_rung = {}
    for decision in decisions:
        rung = decision.rung if decision.accepted else "rejected"
        by_rung.setdefault(rung, []).append(decision.latency_ms)

    rows = []
    rungs_json = {}
    for rung in ("incremental", "full", "heuristic", "rejected"):
        latencies = by_rung.get(rung)
        if not latencies:
            continue
        mean_ms = sum(latencies) / len(latencies)
        rows.append([
            rung,
            len(latencies),
            f"{1e3 / mean_ms:.1f}" if mean_ms else "inf",
            f"{_percentile(latencies, 50):.2f}",
            f"{_percentile(latencies, 99):.2f}",
        ])
        rungs_json[rung] = {
            "decisions": len(latencies),
            "admissions_per_sec": round(1e3 / mean_ms, 1) if mean_ms else None,
            "p50_ms": round(_percentile(latencies, 50), 3),
            "p99_ms": round(_percentile(latencies, 99), 3),
        }
    bench_record("admission", {
        "benchmark": "admission_service_throughput",
        "network": "fig13-simulation",
        "seed_streams": len(workload.tct_streams) + len(workload.ect_streams),
        "decisions": len(decisions),
        "rungs": rungs_json,
    })
    emit("admission_service", format_table(
        ["rung", "decisions", "admissions_per_sec", "p50_ms", "p99_ms"],
        rows,
        title=(
            "Online admission on the 40-stream Fig. 13/14 network "
            f"({len(decisions)} decisions, store v{store.version})"
        ),
    ))

    # every request got a structured decision
    assert len(decisions) == len(requests)
    assert all(d.accepted or d.reason for d in decisions)
    # the mix exercised the incremental and full rungs and a rejection
    assert "incremental" in by_rung and "full" in by_rung
    assert "rejected" in by_rung
    # the incremental rung must be the fast path
    assert (_percentile(by_rung["incremental"], 50)
            <= _percentile(by_rung["full"], 50))
    # rung counts in the metrics sum to the request total
    assert sum(
        service.metrics.counters_with_prefix("decisions").values()
    ) == len(requests)

    # steady-state hot path: one plain admission + its rollback
    def admit_remove_cycle():
        service.submit(_tct("bench", devices[2], devices[9]))
        service.submit(Remove("bench"))

    benchmark(admit_remove_cycle)
