"""Lock-order sanitizer overhead on the cluster admission path.

The sanitizer's contract (ISSUE: repro.check v2): with
``REPRO_SANITIZE_LOCKS`` unset, ``make_lock`` returns a bare
``threading.Lock`` — nothing to measure; with it set, the wrapped
cluster admission flow must stay within 2x of the plain run.  Both
arms run the same shard-local workload through a 2-shard coordinator,
which exercises every sanitized lock: shard runtime locks (ordered
group), the per-shard service write locks, and the store CAS locks.

Wall-clock multiples are hostage to runner load, so like the cluster
benchmark the floor is env-tunable (``REPRO_SANITIZER_OVERHEAD_MAX``,
default 2.0) and the functional assertions — sanitized run decides
everything, identical decisions — stay deterministic.
"""

import os
import time

from repro.analysis import format_table
from repro.check.sanitizer import ENV_VAR, reset_observed_edges
from repro.cluster import ClusterCoordinator, partition_topology
from repro.experiments import line_of_rings
from repro.model.stream import Priorities, TctRequirement
from repro.model.units import milliseconds
from repro.service import AdmitTct

RINGS = 2
RING_SIZE = 4
DEVICES_PER_SWITCH = 2
STREAMS_PER_RING = 48

OVERHEAD_MAX = float(os.environ.get("REPRO_SANITIZER_OVERHEAD_MAX", "2.0"))


def _workload():
    requests = []
    for ring in range(RINGS):
        for i in range(STREAMS_PER_RING):
            src = f"R{ring}S{i % RING_SIZE}D{i % DEVICES_PER_SWITCH}"
            dst = (f"R{ring}S{(i + 2) % RING_SIZE}"
                   f"D{(i + 1) % DEVICES_PER_SWITCH}")
            requests.append(AdmitTct(TctRequirement(
                name=f"r{ring}s{i}", source=src, destination=dst,
                period_ns=milliseconds(8 + 2 * (i % 3)), length_bytes=800,
                priority=Priorities.NSH_PH,
            )))
    return requests


def _run(requests, sanitize):
    """Build a fresh coordinator (locks are chosen at construction
    time, so the env var must be set before it) and admit everything."""
    if sanitize:
        os.environ[ENV_VAR] = "1"
        reset_observed_edges()
    else:
        os.environ.pop(ENV_VAR, None)
    try:
        topo = line_of_rings(rings=RINGS, ring_size=RING_SIZE,
                             devices_per_switch=DEVICES_PER_SWITCH)
        partition = partition_topology(
            topo, RINGS, seeds=[f"R{r}S2" for r in range(RINGS)]
        )
        coordinator = ClusterCoordinator(partition=partition)
        started = time.perf_counter()
        decisions = coordinator.submit_many(requests)
        elapsed = time.perf_counter() - started
        coordinator.shutdown()
    finally:
        os.environ.pop(ENV_VAR, None)
    return elapsed, decisions


def test_sanitizer_overhead_bounded(emit):
    requests = _workload()

    _run(requests[:STREAMS_PER_RING], sanitize=False)  # warm-up
    plain_s = min(_run(requests, sanitize=False)[0] for _ in range(3))

    sanitized = [_run(requests, sanitize=True) for _ in range(3)]
    sanitized_s = min(elapsed for elapsed, _ in sanitized)
    decisions = sanitized[-1][1]

    # the sanitized run must decide the full workload without tripping
    # (a LockOrderViolation would have raised out of submit_many)
    assert len(decisions) == len(requests)
    assert all(d.accepted for d in decisions)

    overhead = sanitized_s / plain_s
    emit("sanitizer_overhead", format_table(
        ["arm", "streams", "wall_s", "overhead"],
        [
            ["plain locks", len(requests), f"{plain_s:.3f}", ""],
            ["sanitized", len(requests), f"{sanitized_s:.3f}",
             f"{overhead:.2f}x"],
        ],
        title=(
            f"Cluster admission with REPRO_SANITIZE_LOCKS on a "
            f"{RINGS}-ring network ({len(requests)} streams)"
        ),
    ))
    assert overhead <= OVERHEAD_MAX, (
        f"sanitizer overhead {overhead:.2f}x exceeds {OVERHEAD_MAX}x"
    )
