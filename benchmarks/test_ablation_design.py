"""Ablation benches for the design choices DESIGN.md calls out.

* scheduler backend: faithful SMT vs incremental backtracking — same
  validated semantics, orders-of-magnitude different solve time;
* N (probabilistic possibilities): trades schedule size and the formal
  (strict-GCL) latency guarantee; run-time E-TSN latency is insensitive;
* reservation accounting: paper Alg. 1 vs the robust generalization —
  cost in reserved wire-time, protection under adversarial bursts when
  TCT frames are much shorter than the ECT message;
* GCL mode: etsn (EP in all shared+idle time) vs etsn-strict (EP only in
  the formally reserved slots) — run-time gain of slot sharing.
"""

import time

import pytest

from repro.analysis import format_table
from repro.core import build_gcl, schedule_etsn, schedule_heuristic, schedule_smt
from repro.core.probabilistic import expand_ect
from repro.core.reservation import prudent_reservation, total_extra_time_ns
from repro.experiments import testbed_workload as make_testbed_workload
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.topology import Topology
from repro.model.units import MBPS_100, milliseconds, ns_to_us
from repro.sim import SimConfig, TsnSimulation
from repro.traffic.events import burst_events


def test_ablation_backend_agreement_and_speed(benchmark, emit):
    """Both backends schedule the testbed workload; the heuristic is the
    one that scales.  (SMT timing on the small paper example is in
    test_smt_scheduler_speed.)"""
    workload = make_testbed_workload(0.25, seed=1)
    t0 = time.perf_counter()
    heuristic = schedule_heuristic(workload.topology, workload.tct_streams,
                                   workload.ect_streams)
    t_heuristic = time.perf_counter() - t0
    t0 = time.perf_counter()
    smt = schedule_smt(workload.topology, workload.tct_streams,
                       workload.ect_streams)
    t_smt = time.perf_counter() - t0
    emit("ablation_backends", format_table(
        ["backend", "streams", "solve_s"],
        [["heuristic", len(heuristic.streams), f"{t_heuristic:.3f}"],
         ["smt", len(smt.streams), f"{t_smt:.3f}"]],
        title="Scheduler backends on the 25% testbed workload",
    ))
    assert heuristic.meta["backend"] == "heuristic"
    assert smt.meta["backend"] == "smt"
    benchmark(
        lambda: schedule_heuristic(workload.topology, workload.tct_streams,
                                   workload.ect_streams)
    )


def test_ablation_possibilities_sweep(benchmark, bench_duration_ns, emit):
    """N controls the strict-mode (formal-reservation) latency: more
    possibilities -> denser reserved slots -> lower guaranteed latency.
    Run-time etsn latency barely moves."""
    rows = []
    strict_worst = {}
    loose_worst = {}
    for n in (2, 4, 8):
        workload = make_testbed_workload(0.50, seed=1, possibilities=n)
        schedule = schedule_etsn(workload.topology, workload.tct_streams,
                                 workload.ect_streams)
        for mode in ("etsn", "etsn-strict"):
            gcl = build_gcl(schedule, mode=mode)
            report = TsnSimulation(
                schedule, gcl, SimConfig(duration_ns=bench_duration_ns, seed=1),
            ).run()
            stats = report.recorder.stats("ect1")
            rows.append([n, mode, ns_to_us(stats.average_ns),
                         ns_to_us(stats.maximum_ns), ns_to_us(stats.stddev_ns)])
            if mode == "etsn-strict":
                strict_worst[n] = stats.maximum_ns
            else:
                loose_worst[n] = stats.maximum_ns
    emit("ablation_possibilities", format_table(
        ["N", "gcl_mode", "avg_us", "worst_us", "jitter_us"], rows,
        title="Probabilistic possibility count N (testbed, 50% load)",
    ))
    # more possibilities tighten the strict guarantee substantially
    assert strict_worst[8] < strict_worst[2] / 2
    # run-time etsn is insensitive to N
    assert max(loose_worst.values()) < 1.5 * min(loose_worst.values())

    workload = make_testbed_workload(0.50, seed=1, possibilities=8)
    benchmark(
        lambda: schedule_etsn(workload.topology, workload.tct_streams,
                              workload.ect_streams)
    )


def _small_frame_scenario():
    """Shared TCT with 400 B frames vs a 1-MTU ECT: the case where the
    paper's Alg. 1 under-reserves (one event straddles several windows)."""
    topo = Topology()
    topo.add_switch("SW1")
    topo.add_switch("SW2")
    for device, switch in (("D1", "SW1"), ("D2", "SW1"), ("D3", "SW2")):
        topo.add_device(device)
        topo.add_link(device, switch, bandwidth_bps=MBPS_100)
    topo.add_link("SW1", "SW2", bandwidth_bps=MBPS_100)
    tct = [Stream(
        name="ctrl", path=tuple(topo.shortest_path("D1", "D3")),
        e2e_ns=milliseconds(5), priority=Priorities.SH_PL,
        length_bytes=400, period_ns=milliseconds(5), share=True,
    )]
    ects = [EctStream(
        name="alarm", source="D2", destination="D3",
        min_interevent_ns=milliseconds(10), length_bytes=1500, possibilities=5,
    )]
    return topo, tct, ects


def test_ablation_reservation_modes(benchmark, bench_duration_ns, emit):
    topo, tct, ects = _small_frame_scenario()
    events = burst_events(bench_duration_ns, milliseconds(10),
                          burst_size=3, burst_gap_ns=milliseconds(40), seed=4)
    rows = []
    violations = {}
    for mode in ("paper", "robust"):
        schedule = schedule_etsn(topo, tct, ects, reservation_mode=mode)
        streams = schedule.streams
        plan = prudent_reservation(streams, mode=mode)
        reserved_us = ns_to_us(total_extra_time_ns(plan, streams))
        gcl = build_gcl(schedule, mode="etsn")
        report = TsnSimulation(
            schedule, gcl,
            SimConfig(duration_ns=bench_duration_ns, seed=4,
                      ect_event_times={"alarm": events}),
        ).run()
        stats = report.recorder.stats("ctrl")
        budget = schedule.stream("ctrl").e2e_ns
        violated = stats.maximum_ns > budget
        violations[mode] = violated
        rows.append([
            mode, f"{reserved_us:.0f}", ns_to_us(stats.maximum_ns),
            ns_to_us(budget), "MISS" if violated else "ok",
        ])
    emit("ablation_reservation", format_table(
        ["reservation", "reserved_us_per_period", "tct_worst_us",
         "budget_us", "deadline"],
        rows,
        title="Reservation accounting under adversarial bursts "
              "(400 B TCT vs 1 MTU ECT)",
    ))
    # the robust mode must protect the deadline; the paper mode is the
    # reproduction finding: it can miss in this frame-size regime
    assert not violations["robust"]

    benchmark(lambda: schedule_etsn(topo, tct, ects, reservation_mode="robust"))


def test_ablation_gcl_modes(benchmark, bench_duration_ns, emit):
    """Prioritized slot sharing is where the run-time latency win lives:
    the strict (reservation-only) GCL honors the same formal bound but
    is an order of magnitude slower on average."""
    workload = make_testbed_workload(0.50, seed=1)
    schedule = schedule_etsn(workload.topology, workload.tct_streams,
                             workload.ect_streams)
    rows = []
    stats = {}
    for mode in ("etsn", "etsn-strict"):
        gcl = build_gcl(schedule, mode=mode)
        report = TsnSimulation(
            schedule, gcl, SimConfig(duration_ns=bench_duration_ns, seed=1),
        ).run()
        stats[mode] = report.recorder.stats("ect1")
        rows.append([mode, ns_to_us(stats[mode].average_ns),
                     ns_to_us(stats[mode].maximum_ns),
                     ns_to_us(stats[mode].stddev_ns)])
    emit("ablation_gcl_modes", format_table(
        ["gcl_mode", "avg_us", "worst_us", "jitter_us"], rows,
        title="Run-time value of prioritized slot sharing (testbed, 50%)",
    ))
    assert stats["etsn"].average_ns < stats["etsn-strict"].average_ns / 2
    # both respect the ECT deadline
    deadline = workload.ect_streams[0].effective_e2e_ns
    assert stats["etsn-strict"].maximum_ns <= deadline
    assert stats["etsn"].maximum_ns <= deadline

    benchmark(lambda: build_gcl(schedule, mode="etsn"))


def test_ablation_clock_margin(benchmark, emit):
    """Guard margin vs clock quality: zero-margin schedules are exact
    only with perfect clocks; synced drifting clocks need a margin that
    covers residual + inter-sync drift, and then determinism returns."""
    from repro.model.stream import EctStream, Priorities, Stream
    from repro.model.topology import Topology
    from repro.model.units import MBPS_100
    from repro.sim import SyncConfig

    topo = Topology()
    topo.add_switch("SW1")
    topo.add_switch("SW2")
    for device, switch in (("D1", "SW1"), ("D2", "SW1"), ("D4", "SW2")):
        topo.add_device(device)
        topo.add_link(device, switch, bandwidth_bps=MBPS_100)
    topo.add_link("SW1", "SW2", bandwidth_bps=MBPS_100)
    tct = [Stream(
        name="loop", path=tuple(topo.shortest_path("D1", "D4")),
        e2e_ns=milliseconds(4), priority=Priorities.SH_PL,
        length_bytes=3000, period_ns=milliseconds(4), share=True,
    )]
    ects = [EctStream("alarm", "D2", "D4", min_interevent_ns=milliseconds(16),
                      length_bytes=1500, possibilities=4)]
    drift = {"SW1": 25_000, "SW2": -18_000, "D1": 8_000}
    sync = SyncConfig(sync_interval_ns=milliseconds(31.25), residual_error_ns=10)
    duration = milliseconds(800)

    rows = []
    outcomes = {}
    cases = [
        ("perfect clocks, margin 0", 0, {}, None),
        ("drift, sync, margin 0", 0, drift, sync),
        ("drift, sync, margin 2us", 2_000, drift, sync),
    ]
    for label, margin, drift_map, sync_cfg in cases:
        schedule = schedule_etsn(topo, tct, ects, guard_margin_ns=margin)
        gcl = build_gcl(schedule, mode="etsn")
        report = TsnSimulation(schedule, gcl, SimConfig(
            duration_ns=duration, seed=2,
            clock_drift_ppb=drift_map, sync=sync_cfg,
            ect_event_times={"alarm": []},
        )).run()
        stats = report.recorder.stats("loop")
        budget = schedule.stream("loop").e2e_ns + margin
        deterministic = stats.maximum_ns <= budget
        outcomes[label] = deterministic
        rows.append([label, ns_to_us(stats.maximum_ns),
                     ns_to_us(stats.stddev_ns),
                     "ok" if deterministic else "BROKEN"])
    emit("ablation_clock_margin", format_table(
        ["case", "tct_worst_us", "tct_jitter_us", "determinism"], rows,
        title="Guard margin vs clock error (25 ppm drift, 802.1AS sync)",
    ))
    assert outcomes["perfect clocks, margin 0"]
    assert not outcomes["drift, sync, margin 0"]
    assert outcomes["drift, sync, margin 2us"]

    benchmark(lambda: schedule_etsn(topo, tct, ects, guard_margin_ns=2_000))


def test_ablation_avb_idle_slope(benchmark, bench_duration_ns, emit):
    """How much does the Qav shaper setting matter for the AVB baseline?
    With a single sparse ECT stream the credit rarely binds: the
    baseline's weakness is *where* it may transmit (unallocated time),
    not the shaper rate — supporting the paper's explanation."""
    from repro.core import schedule_avb

    workload = make_testbed_workload(0.50, seed=1)
    schedule = schedule_avb(workload.topology, workload.tct_streams,
                            workload.ect_streams)
    gcl = build_gcl(schedule, mode="avb")
    rows = []
    stats_by_slope = {}
    for fraction in (0.25, 0.50, 0.75):
        report = TsnSimulation(schedule, gcl, SimConfig(
            duration_ns=bench_duration_ns, seed=1,
            cbs_on_ect=True, cbs_idle_slope_fraction=fraction,
        )).run()
        stats = report.recorder.stats("ect1")
        stats_by_slope[fraction] = stats
        blocks = sum(p.cbs_blocks for p in report.port_stats.values())
        rows.append([f"{fraction:.0%}", ns_to_us(stats.average_ns),
                     ns_to_us(stats.maximum_ns), ns_to_us(stats.stddev_ns),
                     blocks])
    emit("ablation_avb_idle_slope", format_table(
        ["idle_slope", "avg_us", "worst_us", "jitter_us", "cbs_blocks"],
        rows, title="AVB baseline vs Qav idle slope (testbed, 50% load)",
    ))
    # a sparse single stream barely touches the credit: latency moves
    # by far less than the E-TSN-vs-AVB gap
    avgs = [s.average_ns for s in stats_by_slope.values()]
    assert max(avgs) < 1.5 * min(avgs)

    benchmark(lambda: build_gcl(schedule, mode="avb"))
