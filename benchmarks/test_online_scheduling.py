"""Online admission vs full rescheduling (the paper's Sec. VII-C future
work): admitting one stream into a 40-stream network must be much cheaper
than recomputing the whole schedule, and must leave existing slots
untouched."""

import time

from repro.analysis import format_table
from repro.core import add_tct_stream, schedule_etsn, validate
from repro.experiments import simulation_workload
from repro.model.stream import Priorities, Stream
from repro.model.units import milliseconds


def test_online_admission_vs_reschedule(benchmark, emit):
    workload = simulation_workload(0.50, seed=1)
    base = schedule_etsn(workload.topology, workload.tct_streams,
                         workload.ect_streams)
    newcomer = Stream(
        name="late-arrival",
        path=tuple(workload.topology.shortest_path("D2", "D11")),
        e2e_ns=milliseconds(10), priority=Priorities.NSH_PH,
        length_bytes=1000, period_ns=milliseconds(10), share=False,
    )

    t0 = time.perf_counter()
    incremental = add_tct_stream(base, newcomer)
    t_incremental = time.perf_counter() - t0

    t0 = time.perf_counter()
    full = schedule_etsn(
        workload.topology, workload.tct_streams + [newcomer],
        workload.ect_streams,
    )
    t_full = time.perf_counter() - t0

    emit("online_scheduling", format_table(
        ["approach", "solve_ms", "slots_moved"],
        [["incremental admission", f"{t_incremental * 1e3:.2f}", 0],
         ["full reschedule", f"{t_full * 1e3:.2f}", "n/a"]],
        title="Admitting 1 stream into the 40-stream Fig. 13 network",
    ))

    validate(incremental)
    validate(full)
    # no pre-existing slot moved under incremental admission
    for key, slots in base.slots.items():
        assert incremental.slots[key] == slots
    # the admission is at least as fast as the full solve
    assert t_incremental <= t_full

    benchmark(lambda: add_tct_stream(base, newcomer))
