"""Shared benchmark scaffolding.

Each benchmark module regenerates one table/figure of the paper: it runs
the full experiment (schedule -> GCL -> simulation), prints the rows the
paper reports, saves them under ``benchmarks/results/``, asserts the
paper's *shape* claims (who wins, by roughly what factor), and feeds one
representative computation to pytest-benchmark for timing.

Environment knobs:

REPRO_BENCH_MS
    Simulated milliseconds per configuration (default 2000; the paper's
    shapes are stable from a few hundred events on).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.model.units import milliseconds

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


@pytest.fixture(scope="session")
def bench_duration_ns() -> int:
    return milliseconds(int(os.environ.get("REPRO_BENCH_MS", "2000")))


@pytest.fixture(scope="session")
def emit():
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def bench_record():
    """Persist machine-readable headline numbers as BENCH_<name>.json
    at the repo root.

    Deliberately timestamp-free: the files are meant to be diffable
    across runs, so they carry only the measured figures and the
    workload metadata that identifies what was measured.
    """

    def _record(name: str, data: dict) -> Path:
        path = REPO_ROOT / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )
        return path

    return _record
