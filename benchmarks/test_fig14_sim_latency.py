"""Paper Fig. 14(a)-(f): the simulation-network sweeps.

Regenerates: ECT latency and jitter on the 4-switch/12-device network
(paper Fig. 13) across network load {25,50,75}% and ECT message length
1..5 MTU.  Shape claims (Sec. VI-C1):

* E-TSN is lowest in every cell, on latency, worst case, and jitter;
* E-TSN and PERIOD are flat across load while AVB degrades;
* E-TSN and PERIOD grow only mildly with message length while AVB grows
  steeply (lengths 1..4 MTU at 25 % load: Alg. 1's own reservations make
  the paper's 5-MTU point unschedulable on this network — see
  EXPERIMENTS.md);
* the aggregate reductions land in the paper's regime (E-TSN tens of
  percent below PERIOD/AVB on latency, >90 % on jitter).
"""

from repro.experiments import fig14, simulation_workload
from repro.core import schedule_etsn


def test_fig14_sim_latency(benchmark, bench_duration_ns, emit):
    config = fig14.Fig14Config(duration_ns=bench_duration_ns)
    result = fig14.run(config)
    reductions = fig14.average_reductions(result)
    text = fig14.format_result(result) + "\n\nAggregate reductions (%): " + \
        ", ".join(f"{k}={v:.1f}" for k, v in sorted(reductions.items()))
    emit("fig14_sim_latency", text)

    # E-TSN lowest in every cell
    for (kind, value, method), stats in result.stats.items():
        if method == "etsn":
            continue
        etsn = result.stats[(kind, value, "etsn")]
        assert etsn.average_ns < stats.average_ns, (kind, value, method)
        assert etsn.maximum_ns < stats.maximum_ns, (kind, value, method)
        assert etsn.stddev_ns < stats.stddev_ns, (kind, value, method)
    # stability across load: E-TSN and PERIOD flat, AVB degrades
    for method, flat in (("etsn", True), ("period", True), ("avb", False)):
        avgs = [result.stats[("load", l, method)].average_ns for l in config.loads]
        if flat:
            assert max(avgs) < 1.35 * min(avgs), method
        else:
            assert avgs[-1] > 1.4 * avgs[0], method
    # message-length growth: AVB grows much faster than E-TSN
    longest = max(config.lengths_mtu)
    etsn_1 = result.stats[("length", 1, "etsn")].average_ns
    etsn_n = result.stats[("length", longest, "etsn")].average_ns
    avb_1 = result.stats[("length", 1, "avb")].average_ns
    avb_n = result.stats[("length", longest, "avb")].average_ns
    assert (avb_n / avb_1) > (etsn_n / etsn_1)
    # aggregate reductions: jitter beyond 80 % as in the paper; average
    # latency clearly positive for both baselines (our AVB is stronger
    # than the paper's — see EXPERIMENTS.md — so the margin is smaller)
    assert reductions["period_jitter"] > 80
    assert reductions["avb_jitter"] > 80
    assert reductions["period_avg"] > 40
    assert reductions["avb_avg"] > 25

    workload = simulation_workload(0.50, seed=config.seed)
    benchmark(
        lambda: schedule_etsn(workload.topology, workload.tct_streams,
                              workload.ect_streams)
    )
