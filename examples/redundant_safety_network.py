#!/usr/bin/env python3
"""Seamless redundancy for safety-critical events (E-TSN + 802.1CB).

A mining conveyor's emergency-stop must survive a cable cut.  The network
is a switch ring with dual-homed safety devices; the stop command is an
E-TSN ECT stream *replicated* over two link-disjoint paths (FRER).  The
listener eliminates duplicate copies; when one path dies entirely, the
other still delivers every event with E-TSN latency.

Run:  python examples/redundant_safety_network.py
"""

from repro import Priorities, SimConfig, Stream, Topology, TsnSimulation, build_gcl
from repro.core import frer_guarantee_ns, schedule_etsn_frer, validate
from repro.model import EctStream, disjoint_paths
from repro.model.units import MBPS_100, milliseconds, ns_to_us


def build_ring() -> Topology:
    topo = Topology()
    switches = ["SW1", "SW2", "SW3", "SW4"]
    for switch in switches:
        topo.add_switch(switch)
    for a, b in zip(switches, switches[1:] + switches[:1]):
        topo.add_link(a, b, bandwidth_bps=MBPS_100)
    # dual-homed safety endpoints
    topo.add_device("estop-panel")
    topo.add_link("estop-panel", "SW1")
    topo.add_link("estop-panel", "SW3")
    topo.add_device("conveyor-plc")
    topo.add_link("conveyor-plc", "SW2")
    topo.add_link("conveyor-plc", "SW4")
    # ordinary single-homed telemetry devices
    topo.add_device("belt-sensors")
    topo.add_link("belt-sensors", "SW2")
    topo.add_device("scada")
    topo.add_link("scada", "SW4")
    return topo


def main() -> None:
    topo = build_ring()
    telemetry = [Stream(
        name="belt-telemetry",
        path=tuple(topo.shortest_path("belt-sensors", "scada")),
        e2e_ns=milliseconds(8), priority=Priorities.SH_PL,
        length_bytes=3000, period_ns=milliseconds(8), share=True,
    )]
    estop = EctStream(
        name="estop", source="estop-panel", destination="conveyor-plc",
        min_interevent_ns=milliseconds(16), length_bytes=256, possibilities=4,
    )

    paths = disjoint_paths(topo, "estop-panel", "conveyor-plc")
    print("Disjoint routes for the emergency stop:")
    for path in paths:
        print("  " + " -> ".join([path[0].src] + [l.dst for l in path]))

    schedule = schedule_etsn_frer(topo, telemetry, [estop])
    validate(schedule)
    bound = frer_guarantee_ns(schedule, "estop")
    print(f"\nFormal per-event bound (any single path healthy): "
          f"{ns_to_us(bound):.0f} us")

    gcl = build_gcl(schedule, mode="etsn")
    duration = milliseconds(3_000)

    scenarios = [
        ("both paths healthy", {}),
        ("path 1 backbone cut", {schedule.ect_streams[0].route(topo)[1].key: 1.0}),
        ("path 2 backbone cut", {schedule.ect_streams[1].route(topo)[1].key: 1.0}),
    ]
    print(f"\n{'scenario':22s} {'events':>6s} {'delivered':>9s} "
          f"{'avg_us':>8s} {'worst_us':>9s} {'dups_dropped':>12s}")
    for label, loss in scenarios:
        report = TsnSimulation(schedule, gcl, SimConfig(
            duration_ns=duration, seed=3, link_loss=loss)).run()
        rec = report.recorder
        stats = rec.stats("estop")
        print(f"{label:22s} {rec.injected('estop'):6d} "
              f"{rec.delivered('estop'):9d} {ns_to_us(stats.average_ns):8.1f} "
              f"{ns_to_us(stats.maximum_ns):9.1f} "
              f"{rec.duplicates_eliminated:12d}")
        assert rec.delivered("estop") == rec.injected("estop")
        assert stats.maximum_ns <= bound
    print("\nEvery event delivered within the bound in every scenario.")


if __name__ == "__main__":
    main()
