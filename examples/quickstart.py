#!/usr/bin/env python3
"""Quickstart: schedule and simulate the paper's running example.

Reproduces the Sec. III-B scenario (paper Figs. 2, 4, 6): one switch,
three devices, a time-triggered stream s1 (three frames per period) and
an event-triggered stream s2 modeled by five probabilistic possibilities.

Run:  python examples/quickstart.py
"""

from repro import (
    EctStream,
    Priorities,
    SimConfig,
    Stream,
    Topology,
    TsnSimulation,
    build_gcl,
    schedule_etsn,
)
from repro.model.units import MBPS_100, ns_to_us, transmission_time_ns, wire_bytes


def main() -> None:
    # --- the network of paper Fig. 2 -----------------------------------
    topo = Topology()
    topo.add_switch("SW1")
    for device in ("D1", "D2", "D3"):
        topo.add_device(device)
        topo.add_link(device, "SW1", bandwidth_bps=MBPS_100)

    # T = the time to transmit one full frame; the example's period is 5T
    frame_time = transmission_time_ns(wire_bytes(1500), MBPS_100)
    period = 5 * frame_time

    # --- streams ---------------------------------------------------------
    s1 = Stream(
        name="s1",
        path=tuple(topo.shortest_path("D1", "D3")),
        e2e_ns=period,
        priority=Priorities.SH_PL,
        length_bytes=3 * 1500,  # three frames per period
        period_ns=period,
        share=True,  # lets ECT use s1's time-slots
    )
    s2 = EctStream(
        name="s2",
        source="D2",
        destination="D3",
        min_interevent_ns=period,
        length_bytes=1500,
        possibilities=5,  # N = 5 probabilistic streams, as in Fig. 6
    )

    # --- schedule (probabilistic streams + prudent reservation + SMT) ----
    schedule = schedule_etsn(topo, [s1], [s2], backend="smt")
    print("Schedule (compare with paper Fig. 6):")
    print(schedule.describe())
    print()
    print(f"Extra slots reserved by Alg. 1: {schedule.meta['extra_slots']}")
    print(f"SMT stats: {schedule.meta['solver_stats']}")
    print()

    # --- run it ----------------------------------------------------------
    gcl = build_gcl(schedule, mode="etsn")
    sim = TsnSimulation(schedule, gcl, SimConfig(duration_ns=500 * period, seed=42))
    report = sim.run()

    for stream in ("s1", "s2"):
        stats = report.recorder.stats(stream)
        print(
            f"{stream}: {stats.count} messages, "
            f"avg {ns_to_us(stats.average_ns):.1f} us, "
            f"worst {ns_to_us(stats.maximum_ns):.1f} us, "
            f"jitter {ns_to_us(stats.jitter_ns):.1f} us"
        )

    budget = schedule.stream("s1").e2e_ns
    worst = report.recorder.stats("s1").maximum_ns
    print(f"\ns1 worst case {ns_to_us(worst):.1f} us "
          f"<= budget {ns_to_us(budget):.1f} us: {worst <= budget}")


if __name__ == "__main__":
    main()
