#!/usr/bin/env python3
"""Online stream admission through the admission-control service.

A running network cannot stop for a full reschedule every time a machine
is added.  This example deploys an E-TSN schedule into a versioned
:class:`ScheduleStore` and then drives the :class:`AdmissionService`
"at run time":

1. admits two new TCT streams in one batch (validated once, placed
   earliest-fit around the frozen schedule);
2. admits a second ECT stream (the incremental rung re-places only the
   TCT streams that now share their slots with it);
3. admits a *sharing* TCT stream — the incremental rung refuses this
   case, so the service climbs the fallback ladder to a full re-solve;
4. rejects an overload admission with a structured decision, leaving
   the published schedule intact;
5. retires a stream and reuses its capacity;
6. prints the service metrics (per-rung counts, decision latency).

Readers holding an old store snapshot never see a half-applied change;
every published version passes the independent Eq. 1-7 validator.

Run:  python examples/online_admission.py
"""

from repro import EctStream, Priorities, TctRequirement, Topology, schedule_etsn
from repro.core import validate
from repro.model.units import MBPS_100, milliseconds, ns_to_us
from repro.service import (
    AdmissionService,
    AdmitEct,
    AdmitTct,
    Remove,
    ScheduleStore,
    ServiceConfig,
)


def build_network() -> Topology:
    topo = Topology()
    topo.add_switch("SW1")
    topo.add_switch("SW2")
    for device, switch in (("plc1", "SW1"), ("plc2", "SW1"),
                           ("io1", "SW2"), ("io2", "SW2")):
        topo.add_device(device)
        topo.add_link(device, switch, bandwidth_bps=MBPS_100)
    topo.add_link("SW1", "SW2", bandwidth_bps=MBPS_100)
    return topo


def tct(name, src, dst, period_ms, length, share=False):
    return AdmitTct(TctRequirement(
        name=name, source=src, destination=dst,
        period_ns=milliseconds(period_ms), length_bytes=length,
        priority=Priorities.SH_PL if share else Priorities.NSH_PH,
        share=share,
    ))


def show(decisions):
    for d in decisions:
        verdict = f"accepted via {d.rung}" if d.accepted else "REJECTED"
        extra = "" if d.accepted else f"  ({(d.reason or '')[:64]}...)"
        print(f"   {d.op:10s} {d.stream:12s} -> {verdict}{extra}")


def describe(store, label):
    schedule = store.schedule
    slots = sum(len(v) for v in schedule.slots.values())
    print(f"{label}: v{store.version}, {len(schedule.streams)} streams, "
          f"{slots} slots, {len(schedule.ect_streams)} ECT")


def main() -> None:
    topo = build_network()
    day0 = schedule_etsn(
        topo,
        [tct("loop-a", "plc1", "io1", 4, 1500, share=True).requirement.resolve(topo),
         tct("loop-b", "plc2", "io2", 8, 3000, share=True).requirement.resolve(topo)],
        [EctStream("estop", "plc1", "io2",
                   min_interevent_ns=milliseconds(16),
                   length_bytes=512, possibilities=4)],
    )
    store = ScheduleStore(day0)
    service = AdmissionService(store, config=ServiceConfig(emit_deployments=True))
    describe(store, "day 0  (offline schedule deployed)")

    # --- a new machine arrives: two more control loops, one batch -------
    show(service.submit_many([
        tct("loop-c", "plc2", "io1", 8, 800),
        tct("loop-d", "plc1", "io2", 16, 2000),
    ]))
    describe(store, "day 1  (+2 TCT, one batch, no slot moved)")

    # --- a new safety sensor: a second ECT stream -----------------------
    show([service.submit(AdmitEct(EctStream(
        "door-open", "plc2", "io1",
        min_interevent_ns=milliseconds(16),
        length_bytes=256, possibilities=4,
    )))])
    describe(store, "day 7  (+1 ECT, sharing streams re-placed)")
    from repro.core import quantization_delay_ns

    schedule = store.schedule
    for ect in schedule.ect_streams:
        step = quantization_delay_ns(ect)
        worst = max(
            schedule.scheduled_latency_ns(ps.name)
            for ps in schedule.probabilistic_streams()
            if ps.parent == ect.name
        )
        print(f"   {ect.name:12s} any event delivered within "
              f"{ns_to_us(step + worst):8.1f} us (formal bound)")

    # --- a sharing TCT stream: the ladder climbs to a full re-solve -----
    show([service.submit(tct("loop-s", "plc2", "io2", 16, 1000, share=True))])
    describe(store, "day 14 (+1 sharing TCT via full re-solve)")

    # --- admission control: an overload is rejected cleanly -------------
    # 30 MTU per 4 ms is ~3.7 ms of wire time per link: cannot fit
    show([service.submit(tct("hog", "plc1", "io1", 4, 30 * 1500))])
    validate(store.schedule)  # the published schedule is untouched

    # --- retire a loop and reuse the capacity ---------------------------
    show(service.submit_many([
        Remove("loop-b"),
        tct("loop-e", "plc2", "io2", 4, 3000),
    ]))
    describe(store, "day 30 (swap loop-b -> faster loop-e)")
    validate(store.schedule)
    print("all published versions validated against Eqs. 1-7")

    metrics = service.metrics.to_dict()
    decided = metrics["counters"]["requests.total"]
    latency = metrics["histograms"]["latency.decision_ms"]
    print(f"\nservice metrics: {decided} requests, "
          f"{metrics['counters']['requests.admitted']} admitted, "
          f"p50 {latency['p50']:.2f} ms, p99 {latency['p99']:.2f} ms, "
          f"{metrics['counters']['deployments.emitted']} deployments emitted")
    for rung, count in service.metrics.counters_with_prefix("decisions").items():
        print(f"   decisions via {rung:12s} {count}")


if __name__ == "__main__":
    main()
