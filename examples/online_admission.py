#!/usr/bin/env python3
"""Online stream admission — the paper's future-work direction (Sec. VII-C).

A running network cannot stop for a full reschedule every time a machine
is added.  This example starts from a deployed E-TSN schedule and then,
"at run time":

1. admits two new TCT streams without moving any existing slot;
2. admits a second ECT stream (re-placing only the TCT streams that now
   share their slots with it);
3. rejects an overload admission, leaving the schedule intact;
4. retires a stream and reuses its capacity.

Every intermediate schedule passes the independent Eq. 1-7 validator.

Run:  python examples/online_admission.py
"""

from repro import (
    EctStream,
    Priorities,
    Stream,
    Topology,
    schedule_etsn,
)
from repro.core import InfeasibleError, add_ect_stream, add_tct_stream, remove_stream, validate
from repro.model.units import MBPS_100, milliseconds, ns_to_us


def build_network() -> Topology:
    topo = Topology()
    topo.add_switch("SW1")
    topo.add_switch("SW2")
    for device, switch in (("plc1", "SW1"), ("plc2", "SW1"),
                           ("io1", "SW2"), ("io2", "SW2")):
        topo.add_device(device)
        topo.add_link(device, switch, bandwidth_bps=MBPS_100)
    topo.add_link("SW1", "SW2", bandwidth_bps=MBPS_100)
    return topo


def tct(topo, name, src, dst, period_ms, length, share=False):
    return Stream(
        name=name, path=tuple(topo.shortest_path(src, dst)),
        e2e_ns=milliseconds(period_ms),
        priority=Priorities.SH_PL if share else Priorities.NSH_PH,
        length_bytes=length, period_ns=milliseconds(period_ms), share=share,
    )


def describe(schedule, label):
    slots = sum(len(v) for v in schedule.slots.values())
    print(f"{label}: {len(schedule.streams)} streams, {slots} slots, "
          f"{len(schedule.ect_streams)} ECT")


def main() -> None:
    topo = build_network()
    schedule = schedule_etsn(
        topo,
        [tct(topo, "loop-a", "plc1", "io1", 4, 1500, share=True),
         tct(topo, "loop-b", "plc2", "io2", 8, 3000, share=True)],
        [EctStream("estop", "plc1", "io2",
                   min_interevent_ns=milliseconds(16),
                   length_bytes=512, possibilities=4)],
    )
    describe(schedule, "day 0  (offline schedule)")

    # --- a new machine arrives: two more control loops ------------------
    schedule = add_tct_stream(
        schedule, tct(topo, "loop-c", "plc2", "io1", 8, 800))
    schedule = add_tct_stream(
        schedule, tct(topo, "loop-d", "plc1", "io2", 16, 2000))
    describe(schedule, "day 1  (+2 TCT, no slot moved)")

    # --- a new safety sensor: a second ECT stream -----------------------
    schedule = add_ect_stream(
        schedule,
        EctStream("door-open", "plc2", "io1",
                  min_interevent_ns=milliseconds(16),
                  length_bytes=256, possibilities=4),
    )
    describe(schedule, "day 7  (+1 ECT, sharing streams re-placed)")
    # formal per-event bound: quantization delay (T/N) + the worst
    # possibility's scheduled latency
    from repro.core import quantization_delay_ns

    for ect in schedule.ect_streams:
        step = quantization_delay_ns(ect)
        worst = max(
            schedule.scheduled_latency_ns(ps.name)
            for ps in schedule.probabilistic_streams()
            if ps.parent == ect.name
        )
        print(f"   {ect.name:12s} any event delivered within "
              f"{ns_to_us(step + worst):8.1f} us (formal bound)")

    # --- admission control: an overload is rejected cleanly -------------
    # 30 MTU per 4 ms is ~3.7 ms of wire time per link: cannot fit
    hog = tct(topo, "hog", "plc1", "io1", 4, 30 * 1500)
    try:
        schedule = add_tct_stream(schedule, hog)
        print("BUG: overload admitted")
    except InfeasibleError as exc:
        print(f"admission rejected: {str(exc)[:72]}...")
    validate(schedule)  # the running schedule is untouched

    # --- retire a loop and reuse the capacity ---------------------------
    schedule = remove_stream(schedule, "loop-b")
    schedule = add_tct_stream(
        schedule, tct(topo, "loop-e", "plc2", "io2", 4, 3000))
    describe(schedule, "day 30 (swap loop-b -> faster loop-e)")
    validate(schedule)
    print("all intermediate schedules validated against Eqs. 1-7")


if __name__ == "__main__":
    main()
