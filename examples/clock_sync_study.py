#!/usr/bin/env python3
"""Clock error vs guard margin: why TSN needs 802.1AS.

Qbv gates only work if every node agrees what time it is.  This study
runs the same E-TSN deployment under increasingly bad clocks and shows:

1. with perfect clocks, zero-margin schedules are exact;
2. with drifting clocks and no sync, gating collapses (frames miss their
   windows and latency cascades);
3. with 802.1AS-style sync plus a CNC guard margin sized to the
   inter-sync error, determinism is restored.

Run:  python examples/clock_sync_study.py
"""

from repro import (
    EctStream,
    Priorities,
    SimConfig,
    Stream,
    SyncConfig,
    Topology,
    TsnSimulation,
    build_gcl,
    schedule_etsn,
)
from repro.model.units import MBPS_100, milliseconds, ns_to_us


def build_network() -> Topology:
    topo = Topology()
    topo.add_switch("SW1")
    topo.add_switch("SW2")
    for device, switch in (("D1", "SW1"), ("D2", "SW1"), ("D3", "SW2"), ("D4", "SW2")):
        topo.add_device(device)
        topo.add_link(device, switch, bandwidth_bps=MBPS_100)
    topo.add_link("SW1", "SW2", bandwidth_bps=MBPS_100)
    return topo


DRIFT = {"SW1": 25_000, "SW2": -18_000, "D1": 8_000, "D4": -5_000}  # ppb


def run_case(topo, label, margin_ns, drift, sync):
    tct = [Stream(
        name="loop", path=tuple(topo.shortest_path("D1", "D4")),
        e2e_ns=milliseconds(4), priority=Priorities.SH_PL,
        length_bytes=3000, period_ns=milliseconds(4), share=True,
    )]
    ects = [EctStream(
        name="alarm", source="D2", destination="D4",
        min_interevent_ns=milliseconds(16), length_bytes=1500, possibilities=4,
    )]
    schedule = schedule_etsn(topo, tct, ects, guard_margin_ns=margin_ns)
    gcl = build_gcl(schedule, mode="etsn")
    config = SimConfig(
        duration_ns=milliseconds(1_000), seed=3,
        clock_drift_ppb=drift, sync=sync,
    )
    report = TsnSimulation(schedule, gcl, config).run()
    stats = report.recorder.stats("loop")
    budget = schedule.stream("loop").e2e_ns
    verdict = "deterministic" if stats.maximum_ns <= budget + margin_ns else "BROKEN"
    print(f"{label:34s} worst {ns_to_us(stats.maximum_ns):10.1f} us  "
          f"jitter {ns_to_us(stats.jitter_ns):8.1f} us  "
          f"sync err {report.sync_error_ns:>8d} ns  {verdict}")
    return stats


def main() -> None:
    topo = build_network()
    sync = SyncConfig(sync_interval_ns=milliseconds(31.25), residual_error_ns=10)
    print(f"{'case':34s} {'':>16s}")
    run_case(topo, "perfect clocks, no margin", 0, {}, None)
    run_case(topo, "25 ppm drift, no sync, no margin", 0, DRIFT, None)
    run_case(topo, "25 ppm drift, sync, no margin", 0, DRIFT, sync)
    run_case(topo, "25 ppm drift, sync, 2 us margin", 2_000, DRIFT, sync)
    print()
    print("The guard margin must cover the worst inter-sync clock error:")
    print("  residual 10 ns + 31.25 ms x 25 ppm ~ 0.8 us  =>  2 us is safe.")


if __name__ == "__main__":
    main()
