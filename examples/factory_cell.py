#!/usr/bin/env python3
"""A factory cell configured through the 802.1Qcc plane (paper Fig. 5).

End stations register their stream requirements with the CUC; the CNC
routes them over the physical topology, runs the E-TSN scheduler, and
emits per-port Qbv gate control lists in hardware form (interval +
gate-state bitmask) plus talker send offsets.  The same deployment then
drives the simulator.

Run:  python examples/factory_cell.py
"""

import json

from repro import EctStream, Priorities, SimConfig, TctRequirement, TsnSimulation
from repro.cnc import CNC, CUC, gcl_to_entries
from repro.experiments import simulation_topology
from repro.model.units import milliseconds, ns_to_us


def main() -> None:
    # The paper Fig. 13 network: 4 switches, 12 devices.
    topo = simulation_topology()

    # --- user plane: end stations declare their needs to the CUC --------
    cuc = CUC()
    # control loops between cell controller (D1) and drives
    for i, drive in enumerate(("D4", "D7", "D10"), start=1):
        cuc.register_tct(TctRequirement(
            name=f"servo-cmd-{i}", source="D1", destination=drive,
            period_ns=milliseconds(5), length_bytes=400,
            share=True, priority=Priorities.SH_PL,
        ))
        cuc.register_tct(TctRequirement(
            name=f"servo-fb-{i}", source=drive, destination="D1",
            period_ns=milliseconds(5), length_bytes=600,
            share=True, priority=Priorities.SH_PL,
        ))
    # vision system ships frames to the quality station
    cuc.register_tct(TctRequirement(
        name="vision", source="D2", destination="D11",
        period_ns=milliseconds(20), length_bytes=6000,
        share=True, priority=Priorities.SH_PH,
    ))
    # the safety scanner's intrusion alert: event-triggered critical
    cuc.register_ect(EctStream(
        name="light-curtain", source="D3", destination="D12",
        min_interevent_ns=milliseconds(10), length_bytes=1500,
        possibilities=5,
    ))

    # --- network plane: the CNC computes and distributes ----------------
    # NOTE: the cell's control frames (400-600 B) are much shorter than
    # the safety alert (1 MTU), the case where the paper's Alg. 1
    # under-reserves; use the sound 'robust' reservation instead.
    cnc = CNC(topo, method="etsn", reservation_mode="robust")
    deployment = cnc.compute(cuc)

    print(f"Scheduled {len(deployment.schedule.streams)} streams "
          f"({len(deployment.schedule.probabilistic_streams())} probabilistic), "
          f"cycle {deployment.gcl.cycle_ns / 1e6:.0f} ms")
    print(f"Extra slots from prudent reservation: "
          f"{deployment.schedule.meta['extra_slots']}")
    print()

    # hardware GCL for one switch port, as a CNC would push via NETCONF
    port = deployment.gcl.port(("SW1", "SW2"))
    entries = gcl_to_entries(port)
    print(f"GCL of port SW1->SW2 ({len(entries)} entries):")
    for entry in entries[:8]:
        print(f"  hold {entry.interval_ns:>9d} ns  gates {entry.gate_states:08b}")
    if len(entries) > 8:
        print(f"  ... {len(entries) - 8} more")
    print()

    config = deployment.to_config_dict()
    print(f"Full YANG-style config: {len(json.dumps(config))} bytes of JSON, "
          f"{len(config['ports'])} ports, {len(config['talkers'])} talkers")
    print()

    # --- run the deployed configuration ----------------------------------
    sim = TsnSimulation(
        deployment.schedule, deployment.gcl,
        SimConfig(duration_ns=milliseconds(2_000), seed=11),
    )
    report = sim.run()
    print(f"{'stream':16s} {'n':>5s} {'avg_us':>9s} {'worst_us':>9s} {'budget_us':>9s}")
    for stream in sorted(report.recorder.streams()):
        stats = report.recorder.stats(stream)
        try:
            budget = deployment.schedule.stream(stream).e2e_ns
        except KeyError:  # the ECT stream: budget from its descriptor
            budget = milliseconds(10)
        print(f"{stream:16s} {stats.count:5d} {ns_to_us(stats.average_ns):9.1f} "
              f"{ns_to_us(stats.maximum_ns):9.1f} {ns_to_us(budget):9.1f}")


if __name__ == "__main__":
    main()
