#!/usr/bin/env python3
"""The paper's motivating scenario: a Tunnel Boring Machine (Fig. 1).

The operator cabin and the machine's controllers are joined by a TSN
network.  Sensors stream machine status periodically (TCT); the
operator's emergency commands and cutterhead-hazard alerts are
event-triggered critical traffic (ECT) that today must be hard-wired.

This example shows why E-TSN makes the network digitalization viable:
the emergency-stop command gets sub-millisecond worst-case delivery
*through the network*, while the PERIOD and AVB workarounds cannot.

Run:  python examples/tbm_emergency_stop.py
"""

from repro import (
    EctStream,
    Priorities,
    SimConfig,
    Stream,
    Topology,
    TsnSimulation,
    build_gcl,
    schedule_avb,
    schedule_etsn,
    schedule_period,
)
from repro.model.units import MBPS_100, milliseconds, ns_to_us


def build_tbm_network() -> Topology:
    """Operator cabin -- backbone switch -- machine segments."""
    topo = Topology()
    topo.add_switch("cabin-sw")
    topo.add_switch("machine-sw")
    topo.add_link("cabin-sw", "machine-sw", bandwidth_bps=MBPS_100)
    for device in ("operator-panel", "hmi-display"):
        topo.add_device(device)
        topo.add_link(device, "cabin-sw", bandwidth_bps=MBPS_100)
    for device in ("cutterhead-plc", "thrust-plc", "sensor-hub"):
        topo.add_device(device)
        topo.add_link(device, "machine-sw", bandwidth_bps=MBPS_100)
    return topo


def build_streams(topo: Topology):
    """Periodic telemetry (TCT) + the emergency command (ECT)."""
    telemetry = [
        # cutterhead vibration + torque: fast loop
        Stream(name="cutterhead-status",
               path=tuple(topo.shortest_path("sensor-hub", "hmi-display")),
               e2e_ns=milliseconds(4), priority=Priorities.SH_PL,
               length_bytes=3000, period_ns=milliseconds(4), share=True),
        # thrust cylinders pressure
        Stream(name="thrust-pressure",
               path=tuple(topo.shortest_path("thrust-plc", "hmi-display")),
               e2e_ns=milliseconds(8), priority=Priorities.SH_PL,
               length_bytes=1500, period_ns=milliseconds(8), share=True),
        # guidance/attitude, slower loop
        Stream(name="guidance",
               path=tuple(topo.shortest_path("sensor-hub", "operator-panel")),
               e2e_ns=milliseconds(16), priority=Priorities.SH_PH,
               length_bytes=6000, period_ns=milliseconds(16), share=True),
        # setpoint updates cabin -> machine
        Stream(name="setpoints",
               path=tuple(topo.shortest_path("hmi-display", "cutterhead-plc")),
               e2e_ns=milliseconds(8), priority=Priorities.SH_PL,
               length_bytes=800, period_ns=milliseconds(8), share=True),
    ]
    emergency = EctStream(
        name="emergency-stop",
        source="operator-panel",
        destination="cutterhead-plc",
        min_interevent_ns=milliseconds(16),
        length_bytes=256,  # a command frame
        e2e_ns=milliseconds(8),  # the E-TSN guarantee we require
        possibilities=8,
    )
    hazard = EctStream(
        name="cutterhead-hazard",
        source="sensor-hub",
        destination="operator-panel",
        min_interevent_ns=milliseconds(16),
        length_bytes=1500,
        e2e_ns=milliseconds(8),
        possibilities=8,
    )
    return telemetry, [emergency, hazard]


def main() -> None:
    topo = build_tbm_network()
    telemetry, alarms = build_streams(topo)
    duration = milliseconds(4_000)

    print("TBM network:")
    print(topo.describe())
    print()
    header = (f"{'method':8s} {'stream':18s} {'events':>6s} {'avg_us':>9s} "
              f"{'worst_us':>9s} {'jitter_us':>9s}")
    print(header)
    print("-" * len(header))

    results = {}
    for method in ("etsn", "period", "avb"):
        if method == "etsn":
            schedule = schedule_etsn(topo, telemetry, alarms)
            mode = "etsn"
        elif method == "period":
            schedule = schedule_period(topo, telemetry, alarms)
            mode = "period"
        else:
            schedule = schedule_avb(topo, telemetry, alarms)
            mode = "avb"
        gcl = build_gcl(schedule, mode=mode,
                        ect_proxies=schedule.meta.get("ect_proxies"))
        sim = TsnSimulation(
            schedule, gcl,
            SimConfig(duration_ns=duration, seed=7, cbs_on_ect=(mode == "avb")),
        )
        report = sim.run()
        for alarm in alarms:
            stats = report.recorder.stats(alarm.name)
            results[(method, alarm.name)] = stats
            print(f"{method:8s} {alarm.name:18s} {stats.count:6d} "
                  f"{ns_to_us(stats.average_ns):9.1f} "
                  f"{ns_to_us(stats.maximum_ns):9.1f} "
                  f"{ns_to_us(stats.jitter_ns):9.1f}")

    print()
    etsn_worst = results[("etsn", "emergency-stop")].maximum_ns
    budget = alarms[0].effective_e2e_ns
    print(f"E-TSN emergency-stop worst case: {ns_to_us(etsn_worst):.1f} us "
          f"(required: <= {ns_to_us(budget):.0f} us) -> "
          f"{'OK' if etsn_worst <= budget else 'VIOLATED'}")
    for other in ("period", "avb"):
        factor = results[(other, "emergency-stop")].maximum_ns / etsn_worst
        print(f"  {other} worst case is {factor:.1f}x E-TSN's")


if __name__ == "__main__":
    main()
