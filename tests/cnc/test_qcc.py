"""Qcc configuration-plane tests (CUC, CNC, hardware GCL export)."""

import json

import pytest

from repro.cnc import CNC, CUC, entries_total_ns, gcl_to_entries
from repro.model.stream import EctStream, Priorities, StreamError, TctRequirement
from repro.model.units import milliseconds
from repro.sim import SimConfig, TsnSimulation


def _cuc():
    cuc = CUC()
    cuc.register_tct(TctRequirement(
        "flow1", "D1", "D3", period_ns=milliseconds(4), length_bytes=800,
        share=True, priority=Priorities.SH_PL,
    ))
    cuc.register_tct(TctRequirement(
        "flow2", "D2", "D1", period_ns=milliseconds(8), length_bytes=200,
    ))
    cuc.register_ect(EctStream(
        "alarm", "D2", "D3", min_interevent_ns=milliseconds(16),
        length_bytes=1500, possibilities=4,
    ))
    return cuc


class TestCuc:
    def test_collects_requirements(self):
        cuc = _cuc()
        assert [r.name for r in cuc.tct_requirements] == ["flow1", "flow2"]
        assert [e.name for e in cuc.ect_streams] == ["alarm"]

    def test_rejects_duplicate_names(self):
        cuc = _cuc()
        with pytest.raises(StreamError):
            cuc.register_tct(TctRequirement(
                "flow1", "D1", "D2", period_ns=milliseconds(4), length_bytes=100,
            ))
        with pytest.raises(StreamError):
            cuc.register_ect(EctStream(
                "alarm", "D1", "D2", min_interevent_ns=milliseconds(16),
                length_bytes=100,
            ))


class TestCnc:
    def test_compute_produces_deployment(self, star_topology):
        deployment = CNC(star_topology).compute(_cuc())
        assert deployment.schedule.meta["backend"] == "heuristic"
        assert deployment.gcl.mode == "etsn"
        # one talker per real TCT stream (no proxies, no possibilities)
        assert sorted(t.stream for t in deployment.talkers) == ["flow1", "flow2"]

    def test_talker_offsets_match_schedule(self, star_topology):
        deployment = CNC(star_topology).compute(_cuc())
        for talker in deployment.talkers:
            stream = deployment.schedule.stream(talker.stream)
            slots = deployment.schedule.slots[(talker.stream, stream.path[0].key)]
            assert talker.offsets_ns == [
                s.offset_ns for s in slots[: stream.frames_per_period()]
            ]
            assert talker.device == stream.source

    def test_period_method(self, star_topology):
        deployment = CNC(star_topology, method="period").compute(_cuc())
        assert deployment.gcl.mode == "period"
        # proxies excluded from talkers
        assert sorted(t.stream for t in deployment.talkers) == ["flow1", "flow2"]

    def test_deployment_simulates(self, star_topology):
        deployment = CNC(star_topology).compute(_cuc())
        sim = TsnSimulation(
            deployment.schedule, deployment.gcl,
            SimConfig(duration_ns=milliseconds(100), seed=1),
        )
        report = sim.run()
        assert report.recorder.delivered("flow1") > 0
        assert report.recorder.delivered("alarm") > 0

    def test_config_dict_is_jsonable(self, star_topology):
        deployment = CNC(star_topology).compute(_cuc())
        config = deployment.to_config_dict()
        text = json.dumps(config)
        assert "D1->SW1" in text
        assert config["mode"] == "etsn"
        assert config["cycle_ns"] == deployment.gcl.cycle_ns


class TestGclEntries:
    def test_entries_cover_cycle(self, star_topology):
        deployment = CNC(star_topology).compute(_cuc())
        for port_gcl in deployment.gcl.ports.values():
            entries = gcl_to_entries(port_gcl)
            assert entries_total_ns(entries) == port_gcl.cycle_ns

    def test_consecutive_entries_differ(self, star_topology):
        deployment = CNC(star_topology).compute(_cuc())
        for port_gcl in deployment.gcl.ports.values():
            entries = gcl_to_entries(port_gcl)
            for a, b in zip(entries, entries[1:]):
                assert a.gate_states != b.gate_states

    def test_masks_reflect_windows(self, star_topology):
        deployment = CNC(star_topology).compute(_cuc())
        port_gcl = deployment.gcl.port(("SW1", "D3"))
        entries = gcl_to_entries(port_gcl)
        cursor = 0
        for entry in entries:
            probe = cursor + entry.interval_ns // 2
            for queue in range(8):
                is_open, _, _ = port_gcl.state_at(queue, probe)
                bit = bool(entry.gate_states & (1 << queue))
                assert bit == is_open, (queue, probe)
            cursor += entry.interval_ns


class TestRedundantEct:
    def _ring(self):
        from repro.model.topology import Topology

        topo = Topology()
        switches = ["SW1", "SW2", "SW3", "SW4"]
        for s in switches:
            topo.add_switch(s)
        for a, b in zip(switches, switches[1:] + switches[:1]):
            topo.add_link(a, b)
        topo.add_device("A")
        topo.add_link("A", "SW1")
        topo.add_link("A", "SW3")
        topo.add_device("B")
        topo.add_link("B", "SW2")
        topo.add_link("B", "SW4")
        return topo

    def test_cnc_deploys_frer_members(self):
        topo = self._ring()
        cuc = CUC()
        cuc.register_ect(EctStream(
            "estop", "A", "B", min_interevent_ns=milliseconds(16),
            length_bytes=256, possibilities=4), redundant=True)
        deployment = CNC(topo).compute(cuc)
        members = deployment.schedule.meta["frer_members"]
        assert set(members.values()) == {"estop"}
        assert len(members) == 2

    def test_redundant_requires_etsn_method(self):
        topo = self._ring()
        cuc = CUC()
        cuc.register_ect(EctStream(
            "estop", "A", "B", min_interevent_ns=milliseconds(16),
            length_bytes=256, possibilities=4), redundant=True)
        with pytest.raises(StreamError):
            CNC(topo, method="avb").compute(cuc)

    def test_redundant_deployment_simulates(self):
        topo = self._ring()
        cuc = CUC()
        cuc.register_ect(EctStream(
            "estop", "A", "B", min_interevent_ns=milliseconds(16),
            length_bytes=256, possibilities=4), redundant=True)
        deployment = CNC(topo).compute(cuc)
        report = TsnSimulation(
            deployment.schedule, deployment.gcl,
            SimConfig(duration_ns=milliseconds(200), seed=1),
        ).run()
        rec = report.recorder
        assert rec.delivered("estop") == rec.injected("estop") > 0
