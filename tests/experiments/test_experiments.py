"""Experiment scaffolding tests: topologies, workloads, runner, and quick
(short-duration) versions of every figure to prove the harness end-to-end."""

import pytest

from repro.experiments import fig11, fig12, fig14, fig15, fig16, run_method
from repro.experiments import simulation_topology, simulation_workload
from repro.experiments import testbed_topology as make_testbed_topology
from repro.experiments import testbed_workload as make_testbed_workload
from repro.model.units import milliseconds

QUICK = milliseconds(300)


class TestTopologies:
    def test_testbed_shape(self):
        topo = make_testbed_topology()
        assert len(topo.switches) == 2
        assert len(topo.devices) == 4
        assert len(topo.shortest_path("D2", "D4")) == 3

    def test_simulation_shape(self):
        topo = simulation_topology()
        assert len(topo.switches) == 4
        assert len(topo.devices) == 12
        assert len(topo.shortest_path("D1", "D12")) == 5

    def test_propagation_default(self):
        topo = make_testbed_topology(propagation_ns=700)
        assert topo.link("D1", "SW1").propagation_ns == 700


class TestWorkloads:
    def test_testbed_workload(self):
        w = make_testbed_workload(0.5, seed=1)
        assert len(w.tct_streams) == 10
        assert all(s.share for s in w.tct_streams)
        assert w.ect_streams[0].source == "D2"
        assert w.ect_streams[0].destination == "D4"
        assert 0.4 < w.achieved_load <= 0.5

    def test_simulation_workload(self):
        w = simulation_workload(0.5, seed=1)
        assert len(w.tct_streams) == 40
        assert w.ect_streams[0].name == "s1e"
        assert w.ect_streams[0].source == "D1"
        assert w.ect_streams[0].destination == "D12"

    def test_simulation_nonshared_marking(self):
        w = simulation_workload(0.5, seed=1, num_nonshared=10)
        assert sum(1 for s in w.tct_streams if not s.share) == 10

    def test_simulation_multiple_ect(self):
        w = simulation_workload(0.5, seed=1, num_ect=4)
        names = [e.name for e in w.ect_streams]
        assert names == ["s1e", "s2e", "s3e", "s4e"]
        for e in w.ect_streams[1:]:
            assert e.source != e.destination

    def test_num_ect_validation(self):
        with pytest.raises(ValueError):
            simulation_workload(0.5, num_ect=0)


class TestRunner:
    def test_unknown_method(self):
        w = make_testbed_workload(0.25, seed=1)
        with pytest.raises(ValueError):
            run_method(w.topology, w.tct_streams, w.ect_streams,
                       "mystery", duration_ns=QUICK)

    def test_run_produces_stats_and_cdf(self):
        w = make_testbed_workload(0.25, seed=1)
        result = run_method(w.topology, w.tct_streams, w.ect_streams,
                            "etsn", duration_ns=QUICK, seed=1)
        assert "ect1" in result.stats
        assert result.ect_stats().keys() == {"ect1"}
        cdf = result.cdf("ect1")
        assert cdf and cdf[-1][1] == pytest.approx(1.0)

    def test_period_multiplier_parsing(self):
        w = make_testbed_workload(0.25, seed=1)
        result = run_method(w.topology, w.tct_streams, w.ect_streams,
                            "period_x2", duration_ns=QUICK, seed=1)
        proxy = result.schedule.stream("ect1#period")
        n = w.ect_streams[0].possibilities
        assert proxy.period_ns == w.ect_streams[0].min_interevent_ns // (2 * n)


class TestFiguresQuick:
    """Tiny-duration runs of every figure harness: structure over numbers."""

    def test_fig11(self):
        result = fig11.run(fig11.Fig11Config(
            loads=(0.25,), methods=("etsn", "avb"), duration_ns=QUICK))
        assert (0.25, "etsn") in result.stats
        text = fig11.format_result(result)
        assert "etsn" in text and "avb" in text
        numbers = fig11.headline_numbers(result, load=0.25)
        # at this tiny scale (a dozen events, 25% load) AVB can tie
        # E-TSN exactly — only never beat it; the full comparison lives
        # in benchmarks/test_fig11_latency_cdf.py
        assert numbers["avb_avg_ratio"] >= 1.0
        assert numbers["avb_worst_ratio"] >= 1.0

    def test_fig12(self):
        result = fig12.run(fig12.Fig12Config(
            load=0.25, methods=("etsn", "period"), duration_ns=QUICK))
        assert result.dedicated_bandwidth["etsn"] == 0.0
        assert result.dedicated_bandwidth["period"] > 0.0
        assert "dedicated_bw" in fig12.format_result(result)

    def test_fig12_bandwidth_scales_with_multiplier(self):
        result = fig12.run(fig12.Fig12Config(
            load=0.25, methods=("period", "period_x2"), duration_ns=QUICK))
        assert result.dedicated_bandwidth["period_x2"] == pytest.approx(
            2 * result.dedicated_bandwidth["period"], rel=0.01)

    def test_fig14(self):
        result = fig14.run(fig14.Fig14Config(
            loads=(0.25,), lengths_mtu=(1,), methods=("etsn", "period"),
            duration_ns=QUICK))
        assert ("load", 0.25, "etsn") in result.stats
        assert ("length", 1, "period") in result.stats
        reductions = fig14.average_reductions(result)
        assert "period_avg" in reductions
        assert "Fig. 14" in fig14.format_result(result)

    def test_fig15(self):
        # the paper's 50% load setting: TCT frames are MTU-scale there,
        # the regime where Alg. 1's protection holds (see the reservation
        # ablation for the under-reservation regime)
        result = fig15.run(fig15.Fig15Config(load=0.50, duration_ns=QUICK))
        assert len(result.nonshared()) == 3
        assert len(result.shared()) == 3
        for impact in result.nonshared():
            assert impact.unaffected
        for impact in result.impacts:
            assert impact.worst_within_budget
        assert "Fig. 15" in fig15.format_result(result)

    def test_fig16(self):
        result = fig16.run(fig16.Fig16Config(
            load=0.25, methods=("etsn", "avb"), duration_ns=QUICK))
        assert len(result.ect_names) == 4
        for name in result.ect_names:
            assert ("etsn", name) in result.stats
        reductions = fig16.average_reductions(result)
        assert "avb_latency" in reductions
        assert "Fig. 16" in fig16.format_result(result)
