"""Topology partitioning: shard coverage, boundary links, route splits."""

import pytest

from repro.cluster import (
    NetworkPartition,
    PartitionError,
    Shard,
    partition_by_assignment,
    partition_topology,
)
from repro.experiments import line_of_rings, simulation_topology
from repro.model.topology import TopologyError


@pytest.fixture
def chain():
    """Fig. 13 chain, cut between SW2 and SW3 (seeds at the ends)."""
    topo = simulation_topology()
    return topo, partition_topology(topo, 2, seeds=["SW1", "SW4"])


class TestPartitioning:
    def test_two_way_chain_cut(self, chain):
        topo, partition = chain
        assert [s.name for s in partition.shards] == ["shard0", "shard1"]
        assert partition.shard("shard0").switches == ("SW1", "SW2")
        assert partition.shard("shard1").switches == ("SW3", "SW4")
        # devices follow their attached switch
        assert partition.owner_of("D1") == "shard0"
        assert partition.owner_of("D12") == "shard1"
        # the single trunk is the cut, both directions
        assert partition.boundary_links == (("SW2", "SW3"), ("SW3", "SW2"))

    def test_every_node_owned_exactly_once(self, chain):
        topo, partition = chain
        owners = [partition.owner_of(n.name) for n in topo.nodes]
        assert len(owners) == len(topo.nodes)

    def test_directed_link_owned_by_source_shard(self, chain):
        _, partition = chain
        assert partition.owner_of_link(("SW2", "SW3")) == "shard0"
        assert partition.owner_of_link(("SW3", "SW2")) == "shard1"

    def test_line_of_rings_cuts_on_trunks(self):
        topo = line_of_rings(rings=4, ring_size=3, devices_per_switch=1)
        seeds = [f"R{r}S1" for r in range(4)]
        partition = partition_topology(topo, 4, seeds=seeds)
        assert len(partition.shards) == 4
        for shard in partition.shards:
            # each shard is exactly one ring
            rings = {name[:2] for name in shard.switches}
            assert len(rings) == 1
        # 3 trunks x 2 directions
        assert len(partition.boundary_links) == 6
        for src, dst in partition.boundary_links:
            assert src.endswith("S0") and dst.endswith("S0")

    def test_ghosts_are_dead_ends(self, chain):
        _, partition = chain
        shard0 = partition.shard("shard0")
        assert shard0.border_nodes == ("SW3",)
        # shard-local routing cannot tunnel through the neighbour shard
        with pytest.raises((TopologyError, ValueError, KeyError)):
            shard0.topology.shortest_path("D1", "D12")
        # but a segment may legally terminate on the ghost
        path = shard0.topology.shortest_path("D1", "SW3")
        assert path[-1].dst == "SW3"

    def test_describe_mentions_every_shard(self, chain):
        _, partition = chain
        text = partition.describe()
        assert "2 shards" in text
        assert "shard0" in text and "shard1" in text


class TestRouteSplitting:
    def test_local_route_is_one_segment(self, chain):
        topo, partition = chain
        path = topo.shortest_path("D1", "D4")
        segments = partition.split_route(path)
        assert len(segments) == 1
        assert segments[0].shard == "shard0"
        assert partition.shards_for_route(path) == ["shard0"]

    def test_cross_route_cut_after_boundary_link(self, chain):
        topo, partition = chain
        path = topo.shortest_path("D1", "D12")
        segments = partition.split_route(path)
        assert [s.shard for s in segments] == ["shard0", "shard1"]
        # the cut is after the boundary link: shard0's segment ends on
        # shard1's border switch, where shard1's segment starts
        assert segments[0].destination == "SW3"
        assert segments[1].source == "SW3"
        # the concatenation is the original route
        rejoined = [link for s in segments for link in s.links]
        assert rejoined == list(path)

    def test_empty_route_rejected(self, chain):
        _, partition = chain
        with pytest.raises(PartitionError):
            partition.split_route([])


class TestValidation:
    def test_shard_count_bounds(self):
        topo = simulation_topology()
        with pytest.raises(PartitionError):
            partition_topology(topo, 0)
        with pytest.raises(PartitionError):
            partition_topology(topo, 5)  # only 4 switches

    def test_seed_list_validated(self):
        topo = simulation_topology()
        with pytest.raises(PartitionError):
            partition_topology(topo, 2, seeds=["SW1"])
        with pytest.raises(PartitionError):
            partition_topology(topo, 2, seeds=["SW1", "D1"])

    def test_assignment_must_cover_switches(self):
        topo = simulation_topology()
        with pytest.raises(PartitionError):
            partition_by_assignment(topo, {"SW1": 0, "SW2": 0})

    def test_double_assignment_rejected(self):
        topo = simulation_topology()
        good = partition_by_assignment(
            topo, {"SW1": 0, "SW2": 0, "SW3": 1, "SW4": 1}
        )
        shard = good.shards[0]
        clone = Shard(
            name="clone",
            switches=shard.switches,
            devices=shard.devices,
            border_nodes=shard.border_nodes,
            topology=shard.topology,
        )
        with pytest.raises(PartitionError):
            NetworkPartition(topo, list(good.shards) + [clone])

    def test_partition_needs_full_coverage(self):
        topo = simulation_topology()
        good = partition_by_assignment(
            topo, {"SW1": 0, "SW2": 0, "SW3": 1, "SW4": 1}
        )
        with pytest.raises(PartitionError):
            NetworkPartition(topo, good.shards[:1])

    def test_default_seeds_are_deterministic(self):
        topo = simulation_topology()
        a = partition_topology(topo, 2)
        b = partition_topology(topo, 2)
        assert [s.switches for s in a.shards] == [s.switches for s in b.shards]
