"""`repro cluster` CLI (in-process, via main())."""

import json

import pytest

from repro.cli import main
from repro.experiments import simulation_topology
from repro.serialization import topology_to_dict


@pytest.fixture
def topology_file(tmp_path):
    path = tmp_path / "topology.json"
    path.write_text(json.dumps(topology_to_dict(simulation_topology())))
    return path


def _cluster_args(topology_file, *extra):
    return ["--topology", str(topology_file), "--shards", "2",
            "--seeds", "SW1,SW4", *extra]


class TestClusterCli:
    def test_status_prints_partition_and_shards(self, topology_file, capsys):
        assert main(["cluster", "status",
                     *_cluster_args(topology_file)]) == 0
        out = capsys.readouterr().out
        assert "Partition: 2 shards" in out
        assert '"shard0"' in out and '"shard1"' in out

    def test_admit_cross_shard_stream(self, topology_file, capsys):
        assert main(["cluster", "admit", *_cluster_args(topology_file),
                     "--name", "x", "--source", "D1", "--dest", "D12",
                     "--period-us", "8000"]) == 0
        decision = json.loads(capsys.readouterr().out)
        assert decision["accepted"]
        assert decision["rung"] == "twophase"

    def test_admit_rejection_exits_nonzero(self, topology_file, capsys):
        # a cross-shard ECT is a structured rejection -> exit 1
        assert main(["cluster", "admit", *_cluster_args(topology_file),
                     "--ect", "--name", "alarm", "--source", "D1",
                     "--dest", "D12", "--period-us", "16000"]) == 1
        decision = json.loads(capsys.readouterr().out)
        assert decision["reason"] == "cross_shard_ect_unsupported"

    def test_serve_storm_with_audit_and_metrics(
        self, topology_file, tmp_path, capsys
    ):
        requests = tmp_path / "requests.jsonl"
        requests.write_text("\n".join(json.dumps(r) for r in [
            {"op": "admit-tct", "name": "a0", "source": "D1",
             "destination": "D4", "period_ns": 8_000_000,
             "length_bytes": 1000},
            {"op": "admit-tct", "name": "a1", "source": "D10",
             "destination": "D12", "period_ns": 8_000_000,
             "length_bytes": 1000},
            {"op": "admit-tct", "name": "x", "source": "D1",
             "destination": "D12", "period_ns": 8_000_000,
             "length_bytes": 500},
            {"op": "remove", "name": "a0"},
        ]))
        metrics_out = tmp_path / "metrics.json"
        assert main(["cluster", "serve", *_cluster_args(topology_file),
                     "--requests", str(requests),
                     "--metrics-out", str(metrics_out),
                     "--audit", "--fail-on-reject"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        decisions = [json.loads(line) for line in lines[:4]]
        assert all(d["accepted"] for d in decisions)
        assert json.loads(lines[-1]) == {"audit": "ok"}
        metrics = json.loads(metrics_out.read_text())
        counters = metrics["metrics"]["counters"]
        assert counters["cluster.requests_total"] == 4
        assert counters["cluster.requests_cross"] == 1

    def test_serve_fail_on_reject(self, topology_file, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(json.dumps(
            {"op": "admit-ect", "name": "alarm", "source": "D1",
             "destination": "D12", "min_interevent_ns": 16_000_000,
             "length_bytes": 512}
        ))
        assert main(["cluster", "serve", *_cluster_args(topology_file),
                     "--requests", str(requests),
                     "--fail-on-reject"]) == 1

    def test_serve_malformed_request_is_error(
        self, topology_file, tmp_path, capsys
    ):
        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"op": "admit-tct"}')
        assert main(["cluster", "serve", *_cluster_args(topology_file),
                     "--requests", str(requests)]) == 2
        assert "requests line 1" in capsys.readouterr().err
