"""Two-phase cross-shard publish: commit, abort, rollback, starvation.

Unit tests drive :class:`CrossShardPublish` with fabricated participants
over toy stores; the integration tests force an abort on a real
:class:`ClusterCoordinator` and prove the no-half-commit invariant with
a GCL audit of the stitched global schedule.
"""

import threading

import pytest

from repro.cluster import (
    REASON_CAS_EXHAUSTED,
    RUNG_TWOPHASE,
    STATE_ABORTED,
    STATE_COMMITTED,
    STATE_PREPARED,
    ClusterCoordinator,
    CrossShardPublish,
    Participant,
    PrepareFailure,
    TwoPhaseStateError,
    partition_topology,
)
from repro.core.schedule import NetworkSchedule
from repro.experiments import simulation_topology
from repro.model.stream import Priorities, TctRequirement
from repro.model.units import milliseconds
from repro.service import AdmitTct, ScheduleStore, empty_schedule
from repro.service.metrics import MetricsRegistry


def _marked(pinned: NetworkSchedule, marker: str) -> NetworkSchedule:
    """A fresh schedule distinguishable from its pinned base."""
    return NetworkSchedule(
        topology=pinned.topology,
        streams=list(pinned.streams),
        slots=dict(pinned.slots),
        ect_streams=list(pinned.ect_streams),
        meta={"marker": marker},
    )


def _participant(name, topology, solve=None):
    store = ScheduleStore(empty_schedule(topology))
    return Participant(
        name=name,
        store=store,
        solve=solve or (lambda pinned: _marked(pinned, name)),
        lock=threading.Lock(),
    )


def _tct(name, src, dst, period_ms=8, length=1000):
    return AdmitTct(TctRequirement(
        name=name, source=src, destination=dst,
        period_ns=milliseconds(period_ms), length_bytes=length,
        priority=Priorities.NSH_PH,
    ))


class TestCrossShardPublish:
    def test_clean_commit_publishes_every_shard(self, star_topology):
        a = _participant("a", star_topology)
        b = _participant("b", star_topology)
        metrics = MetricsRegistry()
        publish = CrossShardPublish([b, a], metrics=metrics)
        assert publish.shards == ["a", "b"]  # sorted = global lock order
        outcome = publish.execute()
        assert outcome.committed
        assert outcome.attempts == 1
        assert outcome.versions == {"a": 1, "b": 1}
        assert publish.state == STATE_COMMITTED
        assert a.store.schedule.meta["marker"] == "a"
        assert b.store.schedule.meta["marker"] == "b"
        assert metrics.counter("cluster.twophase.prepares").value == 1
        assert metrics.counter("cluster.twophase.commits").value == 1

    def test_stale_shard_aborts_and_rolls_back_published(self, star_topology):
        a = _participant("a", star_topology)
        b = _participant("b", star_topology)
        pinned_a = a.store.schedule
        metrics = MetricsRegistry()
        publish = CrossShardPublish([a, b], metrics=metrics)
        publish.prepare()
        assert publish.state == STATE_PREPARED
        # a local admission lands on b between prepare and commit; the
        # commit publishes a first (sorted order), then hits the stale
        # version on b and must roll a back
        b.store.publish(_marked(b.store.schedule, "local-admit"))
        assert publish.commit() is False
        assert publish.state == STATE_ABORTED
        # a was published then rolled back to the exact pinned schedule
        assert a.store.schedule is pinned_a
        assert a.store.version == 2  # publish + rollback both version
        # b kept the conflicting local admission, never saw the marker
        assert b.store.schedule.meta["marker"] == "local-admit"
        assert metrics.counter("cluster.twophase.commit_conflicts").value == 1
        assert metrics.counter("cluster.twophase.rollbacks").value == 1
        assert metrics.counter("cluster.twophase.aborts").value == 1

    def test_execute_retries_then_reports_cas_exhaustion(self, star_topology):
        a = _participant("a", star_topology)

        def hostile_solve(pinned):
            # every prepare triggers a fresh conflicting publish on a,
            # so every commit attempt goes stale
            a.store.publish(_marked(a.store.schedule, "hostile"))
            return _marked(pinned, "b")

        b = _participant("b", star_topology, solve=hostile_solve)
        metrics = MetricsRegistry()
        publish = CrossShardPublish([a, b], metrics=metrics)
        outcome = publish.execute(max_attempts=3)
        assert not outcome.committed
        assert outcome.reason == REASON_CAS_EXHAUSTED
        assert outcome.attempts == 3
        assert outcome.versions == {}
        assert metrics.counter("cluster.twophase.retries").value == 3
        assert metrics.counter("cluster.twophase.cas_exhausted").value == 1
        # b never kept anything: every attempt aborted before b published
        assert b.store.version == 0

    def test_prepare_failure_aborts_without_publishing(self, star_topology):
        def refusing_solve(pinned):
            raise PrepareFailure("no capacity")

        a = _participant("a", star_topology, solve=refusing_solve)
        b = _participant("b", star_topology)
        metrics = MetricsRegistry()
        publish = CrossShardPublish([a, b], metrics=metrics)
        outcome = publish.execute()
        assert not outcome.committed
        assert "a" in outcome.reason and "no capacity" in outcome.reason
        assert a.store.version == 0 and b.store.version == 0
        assert publish.state == STATE_ABORTED
        assert metrics.counter("cluster.twophase.aborts").value == 1

    def test_lifecycle_enforced(self, star_topology):
        a = _participant("a", star_topology)
        publish = CrossShardPublish([a])
        with pytest.raises(TwoPhaseStateError):
            publish.commit()
        publish.prepare()
        with pytest.raises(TwoPhaseStateError):
            publish.prepare()
        with pytest.raises(ValueError):
            CrossShardPublish([])
        with pytest.raises(ValueError):
            CrossShardPublish([a, _participant("a", star_topology)])
        with pytest.raises(ValueError):
            CrossShardPublish([a]).execute(max_attempts=0)


class TestCoordinatorAbort:
    """The acceptance invariant: an aborted cross-shard publish leaves
    no half-committed schedule, proven by auditing the stitched GCL."""

    @pytest.fixture
    def coordinator(self):
        topo = simulation_topology()
        partition = partition_topology(topo, 2, seeds=["SW1", "SW4"])
        coordinator = ClusterCoordinator(partition=partition)
        yield coordinator
        coordinator.shutdown()

    def test_abort_leaves_no_half_commit(self, coordinator):
        # seed both shards so the audit has gates to check either way
        assert coordinator.submit(_tct("loc0", "D1", "D4")).accepted
        assert coordinator.submit(_tct("loc1", "D10", "D12")).accepted

        request = _tct("crosser", "D1", "D12")
        attempts = {}
        participants = coordinator._participants_for(request, attempts)
        publish = CrossShardPublish(
            participants, metrics=coordinator.metrics
        )
        publish.prepare()
        # a shard-local admission lands on shard1 — the shard the commit
        # publishes *second* — so shard0 publishes and must roll back
        assert coordinator.submit(_tct("conflict", "D7", "D12")).accepted
        assert publish.commit() is False

        # no shard holds any trace of the aborted stream
        for name in coordinator.shard_names():
            schedule = coordinator.shard_store(name).schedule
            assert all(s.name != "crosser" for s in schedule.streams)
        stitched = coordinator.global_schedule()
        assert {s.name for s in stitched.streams} == {
            "loc0", "loc1", "conflict"
        }
        # the stitched GCL still audits clean after the abort
        assert coordinator.audit() is not None

        metrics = coordinator.metrics
        assert metrics.counter("cluster.twophase.rollbacks").value >= 1
        assert metrics.counter("cluster.twophase.aborts").value >= 1

    def test_retry_after_abort_commits_clean(self, coordinator):
        assert coordinator.submit(_tct("loc0", "D1", "D4")).accepted
        request = _tct("crosser", "D1", "D12")
        participants = coordinator._participants_for(request, {})
        publish = CrossShardPublish(
            participants, metrics=coordinator.metrics
        )
        publish.prepare()
        assert coordinator.submit(_tct("conflict", "D7", "D12")).accepted
        assert publish.commit() is False

        # the coordinator's own retry path re-prepares and lands it
        decision = coordinator.submit(request)
        assert decision.accepted
        assert decision.rung == RUNG_TWOPHASE
        stitched = coordinator.global_schedule()
        crosser = next(s for s in stitched.streams if s.name == "crosser")
        assert crosser.path[0].src == "D1"
        assert crosser.path[-1].dst == "D12"
        assert coordinator.audit() is not None
