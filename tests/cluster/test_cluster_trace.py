"""Distributed trace propagation across the cluster coordinator.

The acceptance property of the observability layer: ONE cluster
admission batch — including its thread-pool shard fan-out and the
two-phase cross-shard publish — yields ONE trace tree under a single
``trace_id``, and ``repro trace cluster`` renders it byte-stably
(pinned by a golden file).  Regenerate the golden with::

    PYTHONPATH=src python -m repro trace cluster \
        > tests/cluster/golden_cluster_trace.txt
"""

import pathlib

import pytest

from repro.cli import main
from repro.cluster import ClusterCoordinator, partition_topology
from repro.experiments import simulation_topology
from repro.model.stream import Priorities, TctRequirement
from repro.model.units import milliseconds
from repro.obs import Tracer, render_trace_tree
from repro.service import AdmitTct

GOLDEN = pathlib.Path(__file__).parent / "golden_cluster_trace.txt"


def _tct(name, src, dst):
    return AdmitTct(TctRequirement(
        name=name, source=src, destination=dst,
        period_ns=milliseconds(8), length_bytes=1000,
        priority=Priorities.NSH_PH,
    ))


@pytest.fixture
def traced_coordinator():
    tracer = Tracer()
    partition = partition_topology(
        simulation_topology(), 2, seeds=["SW1", "SW4"]
    )
    # fast path off: these tests pin the *solver* span chains (rung ->
    # solve); the analytic fast path would decide them without a solve
    from repro.service import ServiceConfig

    coordinator = ClusterCoordinator(
        partition=partition, tracer=tracer,
        config=ServiceConfig(fastpath=False),
    )
    yield coordinator, tracer
    coordinator.shutdown()


class TestSingleTraceTree:
    def test_batch_fanout_shares_one_trace_id(self, traced_coordinator):
        """Shard batches run on pool threads, yet every span — batch,
        shard batch, rung, solve — carries the coordinator's trace."""
        coordinator, tracer = traced_coordinator
        decisions = coordinator.submit_many([
            _tct("a", "D1", "D4"),        # shard0-local
            _tct("b", "D10", "D12"),      # shard1-local
        ])
        assert all(d.accepted for d in decisions)
        spans = tracer.spans()
        assert {s.trace_id for s in spans} == {spans[0].trace_id}
        names = {s.name for s in spans}
        assert "cluster.batch" in names
        assert "cluster.shard_batch" in names
        assert "admission.rung" in names

    def test_cross_shard_two_phase_joins_the_same_trace(
        self, traced_coordinator
    ):
        """The two-phase publish (prepare, per-shard segment solves,
        commit) continues the batch's trace rather than starting new
        ones — the tentpole acceptance criterion."""
        coordinator, tracer = traced_coordinator
        decision = coordinator.submit(_tct("x", "D1", "D12"))
        assert decision.accepted
        spans = tracer.spans()
        assert len({s.trace_id for s in spans}) == 1
        names = {s.name for s in spans}
        for required in ("cluster.batch", "cluster.prepare",
                        "cluster.segment", "cluster.commit",
                        "admission.rung", "solve"):
            assert required in names, f"missing span {required!r}"

    def test_every_span_parents_inside_the_trace(self, traced_coordinator):
        """No orphans: each span's parent_id is another recorded span
        (except the single root)."""
        coordinator, tracer = traced_coordinator
        assert coordinator.submit(_tct("x", "D1", "D12")).accepted
        spans = tracer.spans()
        ids = {s.span_id for s in spans}
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1
        assert roots[0].name == "cluster.batch"
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in ids

    def test_segment_spans_attribute_their_shard(self, traced_coordinator):
        coordinator, tracer = traced_coordinator
        assert coordinator.submit(_tct("x", "D1", "D12")).accepted
        segments = [s for s in tracer.spans()
                    if s.name == "cluster.segment"]
        assert sorted(s.attributes["shard"] for s in segments) == \
            ["shard0", "shard1"]


class TestDeterministicRendering:
    def _render(self, capsys):
        assert main(["trace", "cluster"]) == 0
        return capsys.readouterr().out

    def test_matches_golden(self, capsys):
        assert self._render(capsys) == GOLDEN.read_text(), (
            "cluster trace tree drifted from the golden file; if the "
            "change is intentional, regenerate it (see module docstring)"
        )

    def test_rendering_is_reproducible(self, capsys):
        assert self._render(capsys) == self._render(capsys)

    def test_golden_is_one_trace(self):
        text = GOLDEN.read_text()
        assert text.count("trace ") == 1
        assert "(orphaned)" not in text

    def test_out_flag_writes_replayable_spans(self, tmp_path, capsys):
        out = tmp_path / "spans.jsonl"
        assert main(["trace", "cluster", "--out", str(out)]) == 0
        rendered = capsys.readouterr().out
        from repro.serialization import load_trace

        spans = load_trace(str(out))
        assert render_trace_tree(spans) + "\n" == rendered


class TestDisabledTracerStaysFree:
    def test_null_tracer_cluster_records_nothing(self):
        partition = partition_topology(
            simulation_topology(), 2, seeds=["SW1", "SW4"]
        )
        coordinator = ClusterCoordinator(partition=partition)
        try:
            assert coordinator.submit(_tct("x", "D1", "D12")).accepted
            assert coordinator.tracer.spans() == []
        finally:
            coordinator.shutdown()
