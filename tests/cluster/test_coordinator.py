"""ClusterCoordinator: routing, parallel shard admission, stitching."""

import pytest

from repro.cluster import (
    REASON_CROSS_ECT,
    REASON_NAME_IN_USE,
    REASON_REENTRANT,
    REASON_UNKNOWN_STREAM,
    REASON_UNROUTABLE,
    RUNG_TWOPHASE,
    ClusterCoordinator,
    partition_by_assignment,
    partition_topology,
)
from repro.experiments import simulation_topology
from repro.model.stream import EctStream, Priorities, TctRequirement
from repro.model.topology import Topology
from repro.model.units import milliseconds
from repro.service import (
    RUNG_FASTPATH,
    AdmitEct,
    AdmitTct,
    Remove,
)


def _tct(name, src, dst, period_ms=8, length=1000):
    return AdmitTct(TctRequirement(
        name=name, source=src, destination=dst,
        period_ns=milliseconds(period_ms), length_bytes=length,
        priority=Priorities.NSH_PH,
    ))


def _ect(name, src, dst, period_ms=16, length=512):
    return AdmitEct(EctStream(
        name=name, source=src, destination=dst,
        min_interevent_ns=milliseconds(period_ms),
        length_bytes=length, possibilities=4,
    ))


@pytest.fixture
def coordinator():
    topo = simulation_topology()
    partition = partition_topology(topo, 2, seeds=["SW1", "SW4"])
    coordinator = ClusterCoordinator(partition=partition)
    yield coordinator
    coordinator.shutdown()


class TestLocalPath:
    def test_local_admit_touches_only_its_shard(self, coordinator):
        decision = coordinator.submit(_tct("a", "D1", "D4"))
        assert decision.accepted
        assert decision.rung == RUNG_FASTPATH
        assert coordinator.shard_store("shard0").version == 1
        assert coordinator.shard_store("shard1").version == 0
        assert coordinator.metrics.counter(
            "cluster.requests_local"
        ).value == 1

    def test_batch_fans_out_across_shards(self, coordinator):
        decisions = coordinator.submit_many([
            _tct("a0", "D1", "D4"),
            _tct("a1", "D10", "D12"),
            _tct("a2", "D2", "D5"),
        ])
        assert all(d.accepted for d in decisions)
        # decisions come back in submission order
        assert [d.stream for d in decisions] == ["a0", "a1", "a2"]
        assert coordinator.shard_store("shard0").version == 1  # one batch
        assert coordinator.shard_store("shard1").version == 1

    def test_local_ect_admits_normally(self, coordinator):
        decision = coordinator.submit(_ect("alarm", "D2", "D4"))
        assert decision.accepted
        schedule = coordinator.shard_store("shard0").schedule
        assert any(e.name == "alarm" for e in schedule.ect_streams)


class TestCrossShardPath:
    def test_cross_admit_lands_in_every_involved_shard(self, coordinator):
        decision = coordinator.submit(_tct("x", "D1", "D12"))
        assert decision.accepted
        assert decision.rung == RUNG_TWOPHASE
        assert decision.batch_size == 2  # two shards published
        for name in ("shard0", "shard1"):
            schedule = coordinator.shard_store(name).schedule
            assert any(s.name == "x" for s in schedule.streams)
        assert coordinator.metrics.counter(
            "cluster.admitted_cross"
        ).value == 1

    def test_stitched_stream_is_contiguous(self, coordinator):
        assert coordinator.submit(_tct("x", "D1", "D12")).accepted
        stitched = coordinator.global_schedule()
        stream = next(s for s in stitched.streams if s.name == "x")
        assert stream.path[0].src == "D1"
        assert stream.path[-1].dst == "D12"
        for left, right in zip(stream.path, stream.path[1:]):
            assert left.dst == right.src
        versions = stitched.meta["cluster"]["shard_versions"]
        assert versions == {"shard0": 1, "shard1": 1}

    def test_cross_admit_passes_global_audit(self, coordinator):
        assert coordinator.submit(_tct("x", "D1", "D12")).accepted
        assert coordinator.submit(_tct("y", "D2", "D5")).accepted
        assert coordinator.audit() is not None
        assert coordinator.metrics.counter("cluster.audits").value == 1

    def test_cross_remove_retires_every_segment(self, coordinator):
        assert coordinator.submit(_tct("x", "D1", "D12")).accepted
        decision = coordinator.submit(Remove("x"))
        assert decision.accepted
        assert decision.rung == RUNG_TWOPHASE
        for name in ("shard0", "shard1"):
            schedule = coordinator.shard_store(name).schedule
            assert all(s.name != "x" for s in schedule.streams)
        # retirements and admissions are separate counters
        assert coordinator.metrics.counter("cluster.removed_cross").value == 1
        assert coordinator.metrics.counter(
            "cluster.admitted_cross"
        ).value == 1

    def test_cross_admit_splits_e2e_budget(self, coordinator):
        e2e = milliseconds(6)
        decision = coordinator.submit(AdmitTct(TctRequirement(
            name="x", source="D1", destination="D12",
            period_ns=milliseconds(8), length_bytes=1000,
            e2e_ns=e2e, priority=Priorities.NSH_PH,
        )))
        assert decision.accepted
        assert "e2e_split" in decision.attempts
        segments = [
            next(s for s in coordinator.shard_store(name).schedule.streams
                 if s.name == "x")
            for name in ("shard0", "shard1")
        ]
        # each shard validated its segment against a share of the
        # deadline, not the whole of it, and the shares sum exactly
        assert all(s.e2e_ns < e2e for s in segments)
        assert sum(s.e2e_ns for s in segments) == e2e
        stitched = coordinator.global_schedule()
        stream = next(s for s in stitched.streams if s.name == "x")
        assert stream.e2e_ns == e2e

    def test_cross_ect_is_structured_rejection(self, coordinator):
        decision = coordinator.submit(_ect("alarm", "D1", "D12"))
        assert not decision.accepted
        assert decision.reason == REASON_CROSS_ECT
        assert coordinator.metrics.counter(
            "cluster.rejected_cross_ect"
        ).value == 1
        # nothing published anywhere
        assert coordinator.shard_store("shard0").version == 0
        assert coordinator.shard_store("shard1").version == 0


class TestNameUniqueness:
    def test_same_name_on_two_shards_is_rejected(self, coordinator):
        assert coordinator.submit(_tct("dup", "D1", "D4")).accepted
        decision = coordinator.submit(_tct("dup", "D10", "D12"))
        assert not decision.accepted
        assert decision.reason.startswith(REASON_NAME_IN_USE)
        assert "shard0" in decision.reason
        assert coordinator.shard_store("shard1").version == 0
        assert coordinator.metrics.counter(
            "cluster.rejected_name_in_use"
        ).value == 1
        # the stitched view never sees two streams under one name
        stitched = coordinator.global_schedule()
        assert [s.name for s in stitched.streams] == ["dup"]

    def test_duplicate_name_in_one_batch_is_rejected(self, coordinator):
        first, second = coordinator.submit_many([
            _tct("dup", "D1", "D4"),
            _tct("dup", "D10", "D12"),
        ])
        assert first.accepted
        assert not second.accepted
        assert second.reason.startswith(REASON_NAME_IN_USE)

    def test_remove_frees_the_name_cluster_wide(self, coordinator):
        assert coordinator.submit(_tct("dup", "D1", "D4")).accepted
        assert coordinator.submit(Remove("dup")).accepted
        assert coordinator.submit(_tct("dup", "D10", "D12")).accepted


class TestReentrantRoutes:
    def test_reentrant_route_is_structured_rejection(self):
        # a 3-switch line whose middle switch belongs to another shard:
        # the only DA -> DB route is shard0 -> shard1 -> shard0
        topo = Topology()
        for switch in ("SW1", "SW2", "SW3"):
            topo.add_switch(switch)
        topo.add_device("DA")
        topo.add_device("DB")
        topo.add_link("DA", "SW1")
        topo.add_link("SW1", "SW2")
        topo.add_link("SW2", "SW3")
        topo.add_link("SW3", "DB")
        partition = partition_by_assignment(
            topo, {"SW1": 0, "SW3": 0, "SW2": 1}
        )
        coordinator = ClusterCoordinator(partition=partition)
        try:
            decision = coordinator.submit(_tct("re", "DA", "DB"))
            assert not decision.accepted
            assert decision.reason == REASON_REENTRANT
            assert coordinator.metrics.counter(
                "cluster.rejected_reentrant"
            ).value == 1
            for name in coordinator.shard_names():
                assert coordinator.shard_store(name).version == 0
        finally:
            coordinator.shutdown()


class TestRejections:
    def test_unroutable_request(self, coordinator):
        decision = coordinator.submit(_tct("ghost", "D1", "D99"))
        assert not decision.accepted
        assert decision.reason.startswith(REASON_UNROUTABLE)

    def test_remove_unknown_stream(self, coordinator):
        decision = coordinator.submit(Remove("never-admitted"))
        assert not decision.accepted
        assert decision.reason == REASON_UNKNOWN_STREAM

    def test_empty_cluster_audit_is_none(self, coordinator):
        assert coordinator.audit() is None


class TestStatus:
    def test_status_reports_shards_and_versions(self, coordinator):
        assert coordinator.submit(_tct("a", "D1", "D4")).accepted
        status = coordinator.status()
        assert set(status["shards"]) == {"shard0", "shard1"}
        assert status["shards"]["shard0"]["version"] == 1
        assert status["shards"]["shard0"]["streams"] == 1
        assert status["shards"]["shard1"]["version"] == 0
        assert ["SW2", "SW3"] in status["boundary_links"]
        assert status["metrics"]["counters"]["cluster.requests_total"] == 1

    def test_shard_accessors_validate_names(self, coordinator):
        with pytest.raises(ValueError):
            coordinator.shard_store("nope")
        assert coordinator.shard_names() == ["shard0", "shard1"]

    def test_needs_topology_or_partition(self):
        with pytest.raises(ValueError):
            ClusterCoordinator()
