"""CLI tests (in-process, via main())."""

import json

import pytest

from repro.cli import main
from repro.model.units import milliseconds
from repro.serialization import schedule_to_dict, topology_to_dict


@pytest.fixture
def state_file(tmp_path, star_topology):
    """A persisted schedule with one stream already admitted."""
    from repro.core.baselines import schedule_etsn
    from repro.model.stream import Priorities, Stream

    period = milliseconds(8)
    schedule = schedule_etsn(star_topology, [Stream(
        name="base", path=tuple(star_topology.shortest_path("D1", "D3")),
        e2e_ns=period, priority=Priorities.NSH_PL,
        length_bytes=1500, period_ns=period,
    )], [])
    path = tmp_path / "state.json"
    path.write_text(json.dumps(schedule_to_dict(schedule)))
    return path


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo", "--width", "50"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out
        assert "legend" in out
        assert "s2#ps5" in out

    def test_fig12_short(self, capsys):
        assert main(["fig12", "--duration-ms", "200"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 12" in out
        assert "period_x8" in out

    def test_fig15_short(self, capsys):
        assert main(["fig15", "--duration-ms", "200"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 15" in out
        assert "non-shared" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestAdmitCommand:
    def test_accept_prints_decision_json(self, capsys, tmp_path, state_file):
        out_path = tmp_path / "updated.json"
        code = main([
            "admit", "--state", str(state_file), "--out", str(out_path),
            "--name", "newcomer", "--source", "D2", "--dest", "D3",
            "--period-us", "8000",
        ])
        assert code == 0
        decision = json.loads(capsys.readouterr().out)
        assert decision["accepted"] is True
        assert decision["stream"] == "newcomer"
        assert decision["rung"] == "fastpath"
        # the updated state round-trips and contains the newcomer
        from repro.serialization import schedule_from_dict
        updated = schedule_from_dict(json.loads(out_path.read_text()))
        assert any(s.name == "newcomer" for s in updated.streams)

    def test_reject_exits_nonzero(self, capsys, state_file):
        code = main([
            "admit", "--state", str(state_file),
            "--name", "hog", "--source", "D2", "--dest", "D3",
            "--period-us", "4000", "--length", str(40 * 1500),
        ])
        assert code == 1
        decision = json.loads(capsys.readouterr().out)
        assert decision["accepted"] is False
        assert decision["reason"]

    def test_remove(self, capsys, state_file):
        code = main(["admit", "--state", str(state_file), "--remove", "base"])
        assert code == 0
        decision = json.loads(capsys.readouterr().out)
        assert decision["op"] == "remove"
        assert decision["accepted"] is True

    def test_missing_flags_rejected(self, state_file):
        with pytest.raises(SystemExit):
            main(["admit", "--state", str(state_file), "--name", "x"])


class TestServeCommand:
    def _requests_file(self, tmp_path, lines):
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
        return path

    def _topology_file(self, tmp_path, topology):
        path = tmp_path / "topo.json"
        path.write_text(json.dumps(topology_to_dict(topology)))
        return path

    def test_serves_request_stream(self, capsys, tmp_path, star_topology):
        topo_path = self._topology_file(tmp_path, star_topology)
        requests = self._requests_file(tmp_path, [
            {"op": "admit-tct", "name": "a", "source": "D1",
             "destination": "D3", "period_ns": milliseconds(8),
             "length_bytes": 1500},
            {"op": "admit-ect", "name": "e", "source": "D2",
             "destination": "D3", "min_interevent_ns": milliseconds(16),
             "length_bytes": 512, "possibilities": 2},
            {"op": "remove", "name": "a"},
        ])
        metrics_path = tmp_path / "metrics.json"
        state_path = tmp_path / "final.json"
        code = main([
            "serve", "--topology", str(topo_path),
            "--requests", str(requests),
            "--metrics-out", str(metrics_path),
            "--save-state", str(state_path),
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        decisions = [json.loads(line) for line in lines]
        assert [d["op"] for d in decisions] == [
            "admit-tct", "admit-ect", "remove"]
        assert all(d["accepted"] for d in decisions)
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["requests.total"] == 3
        # the saved final state reloads and revalidates
        from repro.serialization import schedule_from_dict
        final = schedule_from_dict(json.loads(state_path.read_text()))
        assert [e.name for e in final.ect_streams] == ["e"]

    def test_fail_on_reject(self, capsys, tmp_path, star_topology):
        topo_path = self._topology_file(tmp_path, star_topology)
        requests = self._requests_file(tmp_path, [
            {"op": "remove", "name": "ghost"},
        ])
        code = main([
            "serve", "--topology", str(topo_path),
            "--requests", str(requests), "--fail-on-reject",
        ])
        assert code == 1
        lines = capsys.readouterr().out.strip().splitlines()
        decision = json.loads(lines[0])
        assert decision["accepted"] is False
        # metrics land on stdout when no --metrics-out is given
        assert "metrics" in json.loads(lines[-1])

    def test_malformed_request_line_is_a_clean_error(
        self, capsys, tmp_path, star_topology
    ):
        topo_path = self._topology_file(tmp_path, star_topology)
        requests = self._requests_file(tmp_path, [
            {"op": "admit-tct", "name": "x", "source": "D1"},
        ])
        code = main([
            "serve", "--topology", str(topo_path), "--requests", str(requests),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "requests line 1" in err
        assert "destination" in err

    def test_serve_from_state(self, capsys, tmp_path, state_file):
        requests = self._requests_file(tmp_path, [
            {"op": "admit-tct", "name": "b", "source": "D2",
             "destination": "D3", "period_ns": milliseconds(16),
             "length_bytes": 800},
        ])
        code = main([
            "serve", "--state", str(state_file), "--requests", str(requests),
        ])
        assert code == 0
        decisions = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert decisions[0]["accepted"] is True
        assert decisions[0]["store_version"] == 1


class TestTraceFlag:
    def _serve_traced(self, capsys, tmp_path, star_topology):
        topo_path = tmp_path / "topo.json"
        topo_path.write_text(json.dumps(topology_to_dict(star_topology)))
        requests = tmp_path / "requests.jsonl"
        requests.write_text("\n".join(json.dumps(line) for line in [
            {"op": "admit-tct", "name": "a", "source": "D1",
             "destination": "D3", "period_ns": milliseconds(8),
             "length_bytes": 1500},
            {"op": "admit-ect", "name": "e", "source": "D2",
             "destination": "D3", "min_interevent_ns": milliseconds(16),
             "length_bytes": 512, "possibilities": 2},
        ]) + "\n")
        trace_path = tmp_path / "out.jsonl"
        # --no-fastpath: these tests pin the ladder's rung/solve spans
        assert main([
            "serve", "--topology", str(topo_path),
            "--requests", str(requests), "--trace", str(trace_path),
            "--no-fastpath",
        ]) == 0
        capsys.readouterr()
        return trace_path

    def test_serve_trace_emits_request_rung_solve_spans(
        self, capsys, tmp_path, star_topology
    ):
        trace_path = self._serve_traced(capsys, tmp_path, star_topology)
        from repro.serialization import load_trace

        spans = load_trace(trace_path)
        names = {span.name for span in spans}
        assert {"admission.batch", "admission.request",
                "admission.rung", "solve"} <= names
        requests = [s for s in spans if s.name == "admission.request"]
        assert sorted(s.attributes["stream"] for s in requests) == ["a", "e"]
        assert all(s.attributes["accepted"] for s in requests)
        # rung spans parent the solves
        rung_ids = {s.span_id for s in spans if s.name == "admission.rung"}
        assert all(s.parent_id in rung_ids
                   for s in spans if s.name == "solve")

    def test_trace_summarize_reports_per_rung_latency(
        self, capsys, tmp_path, star_topology
    ):
        trace_path = self._serve_traced(capsys, tmp_path, star_topology)
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "admission.request" in out
        assert "per-rung solve latency:" in out
        assert "incremental" in out

    def test_trace_summarize_json(self, capsys, tmp_path, star_topology):
        trace_path = self._serve_traced(capsys, tmp_path, star_topology)
        assert main(["trace", "summarize", str(trace_path),
                     "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["rungs"]["incremental"]["count"] >= 1
        assert "p99_ms" in summary["rungs"]["incremental"]

    def test_admit_trace_flag(self, capsys, tmp_path, state_file):
        trace_path = tmp_path / "admit.jsonl"
        code = main([
            "admit", "--state", str(state_file),
            "--name", "b", "--source", "D2", "--dest", "D3",
            "--period-us", "16000", "--length", "800",
            "--trace", str(trace_path),
        ])
        assert code == 0
        from repro.serialization import load_trace

        spans = load_trace(trace_path)
        assert any(span.name == "admission.request" for span in spans)

    def test_corrupt_trace_file_is_a_clean_error(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        with pytest.raises(ValueError, match="trace line 1"):
            from repro.serialization import load_trace

            load_trace(bad)


class TestMetricsCommand:
    def test_json_format(self, capsys):
        assert main(["metrics", "--format", "json",
                     "--deterministic"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counters"]["requests.total"] == 3
        assert data["counters"]["requests.admitted"] == 2
        assert data["gauges"]["store.version"] == 2

    def test_prometheus_format(self, capsys):
        assert main(["metrics", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_requests_total_total counter" in out
        assert "repro_latency_decision_ms_count" in out

    def test_rerenders_saved_metrics_json(self, capsys, tmp_path):
        assert main(["metrics", "--format", "json",
                     "--deterministic"]) == 0
        saved = tmp_path / "metrics.json"
        saved.write_text(capsys.readouterr().out)
        assert main(["metrics", "--input", str(saved),
                     "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "repro_requests_total_total 3" in out
        assert "repro_store_version 2" in out
