"""CLI tests (in-process, via main())."""

import json

import pytest

from repro.cli import main
from repro.model.units import milliseconds
from repro.serialization import schedule_to_dict, topology_to_dict


@pytest.fixture
def state_file(tmp_path, star_topology):
    """A persisted schedule with one stream already admitted."""
    from repro.core.baselines import schedule_etsn
    from repro.model.stream import Priorities, Stream

    period = milliseconds(8)
    schedule = schedule_etsn(star_topology, [Stream(
        name="base", path=tuple(star_topology.shortest_path("D1", "D3")),
        e2e_ns=period, priority=Priorities.NSH_PL,
        length_bytes=1500, period_ns=period,
    )], [])
    path = tmp_path / "state.json"
    path.write_text(json.dumps(schedule_to_dict(schedule)))
    return path


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo", "--width", "50"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out
        assert "legend" in out
        assert "s2#ps5" in out

    def test_fig12_short(self, capsys):
        assert main(["fig12", "--duration-ms", "200"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 12" in out
        assert "period_x8" in out

    def test_fig15_short(self, capsys):
        assert main(["fig15", "--duration-ms", "200"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 15" in out
        assert "non-shared" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestAdmitCommand:
    def test_accept_prints_decision_json(self, capsys, tmp_path, state_file):
        out_path = tmp_path / "updated.json"
        code = main([
            "admit", "--state", str(state_file), "--out", str(out_path),
            "--name", "newcomer", "--source", "D2", "--dest", "D3",
            "--period-us", "8000",
        ])
        assert code == 0
        decision = json.loads(capsys.readouterr().out)
        assert decision["accepted"] is True
        assert decision["stream"] == "newcomer"
        assert decision["rung"] == "incremental"
        # the updated state round-trips and contains the newcomer
        from repro.serialization import schedule_from_dict
        updated = schedule_from_dict(json.loads(out_path.read_text()))
        assert any(s.name == "newcomer" for s in updated.streams)

    def test_reject_exits_nonzero(self, capsys, state_file):
        code = main([
            "admit", "--state", str(state_file),
            "--name", "hog", "--source", "D2", "--dest", "D3",
            "--period-us", "4000", "--length", str(40 * 1500),
        ])
        assert code == 1
        decision = json.loads(capsys.readouterr().out)
        assert decision["accepted"] is False
        assert decision["reason"]

    def test_remove(self, capsys, state_file):
        code = main(["admit", "--state", str(state_file), "--remove", "base"])
        assert code == 0
        decision = json.loads(capsys.readouterr().out)
        assert decision["op"] == "remove"
        assert decision["accepted"] is True

    def test_missing_flags_rejected(self, state_file):
        with pytest.raises(SystemExit):
            main(["admit", "--state", str(state_file), "--name", "x"])


class TestServeCommand:
    def _requests_file(self, tmp_path, lines):
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
        return path

    def _topology_file(self, tmp_path, topology):
        path = tmp_path / "topo.json"
        path.write_text(json.dumps(topology_to_dict(topology)))
        return path

    def test_serves_request_stream(self, capsys, tmp_path, star_topology):
        topo_path = self._topology_file(tmp_path, star_topology)
        requests = self._requests_file(tmp_path, [
            {"op": "admit-tct", "name": "a", "source": "D1",
             "destination": "D3", "period_ns": milliseconds(8),
             "length_bytes": 1500},
            {"op": "admit-ect", "name": "e", "source": "D2",
             "destination": "D3", "min_interevent_ns": milliseconds(16),
             "length_bytes": 512, "possibilities": 2},
            {"op": "remove", "name": "a"},
        ])
        metrics_path = tmp_path / "metrics.json"
        state_path = tmp_path / "final.json"
        code = main([
            "serve", "--topology", str(topo_path),
            "--requests", str(requests),
            "--metrics-out", str(metrics_path),
            "--save-state", str(state_path),
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        decisions = [json.loads(line) for line in lines]
        assert [d["op"] for d in decisions] == [
            "admit-tct", "admit-ect", "remove"]
        assert all(d["accepted"] for d in decisions)
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["requests.total"] == 3
        # the saved final state reloads and revalidates
        from repro.serialization import schedule_from_dict
        final = schedule_from_dict(json.loads(state_path.read_text()))
        assert [e.name for e in final.ect_streams] == ["e"]

    def test_fail_on_reject(self, capsys, tmp_path, star_topology):
        topo_path = self._topology_file(tmp_path, star_topology)
        requests = self._requests_file(tmp_path, [
            {"op": "remove", "name": "ghost"},
        ])
        code = main([
            "serve", "--topology", str(topo_path),
            "--requests", str(requests), "--fail-on-reject",
        ])
        assert code == 1
        lines = capsys.readouterr().out.strip().splitlines()
        decision = json.loads(lines[0])
        assert decision["accepted"] is False
        # metrics land on stdout when no --metrics-out is given
        assert "metrics" in json.loads(lines[-1])

    def test_malformed_request_line_is_a_clean_error(
        self, capsys, tmp_path, star_topology
    ):
        topo_path = self._topology_file(tmp_path, star_topology)
        requests = self._requests_file(tmp_path, [
            {"op": "admit-tct", "name": "x", "source": "D1"},
        ])
        code = main([
            "serve", "--topology", str(topo_path), "--requests", str(requests),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "requests line 1" in err
        assert "destination" in err

    def test_serve_from_state(self, capsys, tmp_path, state_file):
        requests = self._requests_file(tmp_path, [
            {"op": "admit-tct", "name": "b", "source": "D2",
             "destination": "D3", "period_ns": milliseconds(16),
             "length_bytes": 800},
        ])
        code = main([
            "serve", "--state", str(state_file), "--requests", str(requests),
        ])
        assert code == 0
        decisions = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert decisions[0]["accepted"] is True
        assert decisions[0]["store_version"] == 1
