"""CLI tests (in-process, via main())."""

import pytest

from repro.cli import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo", "--width", "50"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out
        assert "legend" in out
        assert "s2#ps5" in out

    def test_fig12_short(self, capsys):
        assert main(["fig12", "--duration-ms", "200"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 12" in out
        assert "period_x8" in out

    def test_fig15_short(self, capsys):
        assert main(["fig15", "--duration-ms", "200"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 15" in out
        assert "non-shared" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
