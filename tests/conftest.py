"""Shared fixtures: small canonical networks and streams."""

from __future__ import annotations

import pytest

from repro.model.stream import EctStream, Priorities, Stream
from repro.model.topology import Topology
from repro.model.units import MBPS_100, milliseconds, transmission_time_ns, wire_bytes

#: Wire time of one max-size frame on a 100 Mb/s link (~123 us).
MTU_WIRE_NS = transmission_time_ns(wire_bytes(1500), MBPS_100)


@pytest.fixture
def star_topology() -> Topology:
    """Paper Fig. 2: three devices around one switch."""
    topo = Topology()
    topo.add_switch("SW1")
    for device in ("D1", "D2", "D3"):
        topo.add_device(device)
        topo.add_link(device, "SW1", bandwidth_bps=MBPS_100)
    return topo


@pytest.fixture
def two_switch_topology() -> Topology:
    """Paper Fig. 10: the 2-switch, 4-device testbed."""
    topo = Topology()
    topo.add_switch("SW1")
    topo.add_switch("SW2")
    for device in ("D1", "D2"):
        topo.add_device(device)
        topo.add_link(device, "SW1", bandwidth_bps=MBPS_100)
    for device in ("D3", "D4"):
        topo.add_device(device)
        topo.add_link(device, "SW2", bandwidth_bps=MBPS_100)
    topo.add_link("SW1", "SW2", bandwidth_bps=MBPS_100)
    return topo


@pytest.fixture
def paper_example(star_topology):
    """The Sec. III-B example: TCT s1 (3 frames / 5T) + ECT s2 (N=5)."""
    period = 5 * MTU_WIRE_NS
    s1 = Stream(
        name="s1",
        path=tuple(star_topology.shortest_path("D1", "D3")),
        e2e_ns=period,
        priority=Priorities.SH_PL,
        length_bytes=3 * 1500,
        period_ns=period,
        share=True,
    )
    s2 = EctStream(
        name="s2",
        source="D2",
        destination="D3",
        min_interevent_ns=period,
        length_bytes=1500,
        possibilities=5,
    )
    return star_topology, s1, s2


@pytest.fixture
def simple_tct(star_topology) -> Stream:
    return Stream(
        name="tct-a",
        path=tuple(star_topology.shortest_path("D1", "D3")),
        e2e_ns=milliseconds(4),
        priority=Priorities.NSH_PH,
        length_bytes=400,
        period_ns=milliseconds(4),
    )
